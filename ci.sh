#!/usr/bin/env bash
# Offline CI for the spider-repro workspace.
#
# The workspace's contract is hermeticity: a clean checkout must build and
# test with an EMPTY registry and no network. Every step below therefore
# runs with --offline; if any crate ever grows a registry dependency, the
# build steps and the dependency-freeze check both fail.
#
# Usage: ./ci.sh            (from the repo root)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "simlint (determinism, panic-path & panic-reach policy)"
# The first gate, before anything else builds: unordered-map state,
# wall-clock reads, float partial_cmp orderings, env reads, ambient
# randomness, unwaived panic paths, transitive panic reachability, and
# unclassified crate dirs all fail CI here. Run twice — cold (cache
# deleted) then warm — timing both: the warm run must be served 100%
# from the fact cache, which is what keeps this gate sub-second for
# every CI run after this one. The JSON artifact is archived next to
# the bench artifacts.
cargo build -q --release --offline -p simlint
rm -f target/simlint-cache.json
t0=$(date +%s%N)
./target/release/simlint --quiet --json target/SIMLINT.json
t1=$(date +%s%N)
./target/release/simlint --json target/SIMLINT.json | tee target/simlint-warm.out
t2=$(date +%s%N)
if ! grep -q 'files warm (100%)' target/simlint-warm.out; then
    echo "error: warm simlint run did not hit the cache for 100% of files" >&2
    exit 1
fi
echo "ok: simlint clean — cold $(( (t1 - t0) / 1000000 ))ms, warm $(( (t2 - t1) / 1000000 ))ms, warm run 100% cached (archived target/SIMLINT.json)"

step "dependency freeze (no registry sources)"
# Path-only dependencies serialize as "source": null in cargo metadata; any
# quoted source string means a registry/git dependency sneaked in.
metadata=$(cargo metadata --offline --format-version 1)
if printf '%s' "$metadata" | grep -Eo '"source":"[^"]+"' | sort -u | grep .; then
    echo "error: non-path dependency sources found (listed above)." >&2
    echo "This workspace must stay registry-free; see Cargo.toml." >&2
    exit 1
fi
echo "ok: every package source is null (path-only workspace)"

step "cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

step "cargo test --offline"
cargo test -q --offline --workspace

step "campaign cache smoke test (fig5 twice, second run must be all hits)"
smoke_dir=$(mktemp -d target/campaign-smoke.XXXXXX)
trap 'rm -rf "$smoke_dir"' EXIT
# Two separate OS processes with deliberately different irrelevant
# environments: cache hits require byte-identical records, so this also
# proves results don't depend on per-process state (hash-map iteration
# order, env contents, ASLR).
SPIDER_ORDER_PROBE=first-process-aaaa \
    ./target/release/experiments fig5 --scale 1 --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/first.out" 2>"$smoke_dir/first.err"
SPIDER_ORDER_PROBE=second-process-zzzz-different-length \
    ./target/release/experiments fig5 --scale 1 --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/second.out" 2>"$smoke_dir/second.err"
if ! cmp -s "$smoke_dir/first.out" "$smoke_dir/second.out"; then
    echo "error: cached second fig5 run is not byte-identical to the first" >&2
    diff "$smoke_dir/first.out" "$smoke_dir/second.out" >&2 || true
    exit 1
fi
if ! grep -q 'campaign: [0-9]* shards — [0-9]* hits, 0 misses, 0 cancelled' \
    "$smoke_dir/second.err"; then
    echo "error: second fig5 run was not served 100% from cache:" >&2
    cat "$smoke_dir/second.err" >&2
    exit 1
fi
echo "ok: second run 100% cache hits, stdout byte-identical"

step "fleet smoke test (fig5 --exec process: identical output, then all hits)"
# The same fig5 campaign executed on worker OS processes over the framed
# stdin/stdout protocol must be byte-identical to the threaded run above,
# and a second process-mode pass must be served 100% from its own cache.
./target/release/experiments fig5 --scale 1 --workers 4 --exec process \
    --cache-dir "$smoke_dir/fleet-cache" \
    >"$smoke_dir/fleet.out" 2>"$smoke_dir/fleet.err"
if ! cmp -s "$smoke_dir/first.out" "$smoke_dir/fleet.out"; then
    echo "error: --exec process fig5 output differs from the threaded run" >&2
    diff "$smoke_dir/first.out" "$smoke_dir/fleet.out" >&2 || true
    exit 1
fi
./target/release/experiments fig5 --scale 1 --workers 4 --exec process \
    --cache-dir "$smoke_dir/fleet-cache" \
    >"$smoke_dir/fleet2.out" 2>"$smoke_dir/fleet2.err"
if ! grep -q 'campaign: [0-9]* shards — [0-9]* hits, 0 misses, 0 cancelled' \
    "$smoke_dir/fleet2.err"; then
    echo "error: second --exec process fig5 run was not served 100% from cache:" >&2
    cat "$smoke_dir/fleet2.err" >&2
    exit 1
fi
echo "ok: process-exec output byte-identical to threads, second pass all hits"

step "metro smoke test (channel-assignment twice, byte-identical + all hits)"
# The 1024-AP metro worlds behind the channel-assignment experiment must
# hold the same determinism contract as fig5: two OS processes sharing a
# cache directory produce byte-identical stdout, and the second is served
# entirely from cache (the spatial grid is a query accelerator, not a
# semantics change).
./target/release/experiments channel-assignment --scale 1 \
    --cache-dir "$smoke_dir/metro-cache" \
    >"$smoke_dir/metro1.out" 2>"$smoke_dir/metro1.err"
./target/release/experiments channel-assignment --scale 1 \
    --cache-dir "$smoke_dir/metro-cache" \
    >"$smoke_dir/metro2.out" 2>"$smoke_dir/metro2.err"
if ! cmp -s "$smoke_dir/metro1.out" "$smoke_dir/metro2.out"; then
    echo "error: cached second channel-assignment run is not byte-identical" >&2
    diff "$smoke_dir/metro1.out" "$smoke_dir/metro2.out" >&2 || true
    exit 1
fi
if ! grep -q 'campaign: [0-9]* shards — [0-9]* hits, 0 misses, 0 cancelled' \
    "$smoke_dir/metro2.err"; then
    echo "error: second channel-assignment run was not served 100% from cache:" >&2
    cat "$smoke_dir/metro2.err" >&2
    exit 1
fi
echo "ok: 1024-AP metro campaign byte-identical across processes, second pass all hits"

step "client-fleet smoke test (N=1 identity + 8-client world across exec modes)"
# Two latches on the fleet subsystem. First: a world built with an
# explicitly empty fleet must replay the historical single-client world
# byte-for-byte at RunRecord fidelity — the fleet-identity target exits
# nonzero on any divergence, and two separate processes must print the
# same record. Second: the fleet-contention campaign (convoys up to 8
# clients over the 1024-AP metro grid) must be byte-identical between
# in-process threads and worker OS processes, each on a fresh cache —
# this drives fleet WorldConfigs through the codec-v2 worker protocol.
./target/release/experiments fleet-identity \
    >"$smoke_dir/ident1.out" 2>/dev/null
./target/release/experiments fleet-identity \
    >"$smoke_dir/ident2.out" 2>/dev/null
if ! cmp -s "$smoke_dir/ident1.out" "$smoke_dir/ident2.out"; then
    echo "error: fleet-identity output differs between processes" >&2
    diff "$smoke_dir/ident1.out" "$smoke_dir/ident2.out" >&2 || true
    exit 1
fi
./target/release/experiments fleet-contention --scale 1 \
    --cache-dir "$smoke_dir/convoy-threads" \
    >"$smoke_dir/convoy1.out" 2>"$smoke_dir/convoy1.err"
./target/release/experiments fleet-contention --scale 1 --workers 4 --exec process \
    --cache-dir "$smoke_dir/convoy-procs" \
    >"$smoke_dir/convoy2.out" 2>"$smoke_dir/convoy2.err"
if ! cmp -s "$smoke_dir/convoy1.out" "$smoke_dir/convoy2.out"; then
    echo "error: fleet-contention differs between threads and worker processes" >&2
    diff "$smoke_dir/convoy1.out" "$smoke_dir/convoy2.out" >&2 || true
    exit 1
fi
echo "ok: empty fleet replays the single-client world; 8-client convoy byte-identical across exec modes"

step "bench regression check (gating)"
# The gate runs through ./target/release/bench (built above): cargo bench
# swallows bench-target exit codes, a first-class binary does not. Exit
# contract: 0 ok / no regression, 2 regression (fails CI when the machine
# has proven itself), 3 measurement inconclusive (reported, never gates),
# anything else = the harness itself broke (always fails CI).
#
# The ladder, in order:
#   1. selftest            — interleaved A/A must read no-difference and
#                            an injected +10% workload must read
#                            regression, inside one process.
#   2. capture → A/A       — a fresh capture compared against a fresh
#                            re-measurement of the identical closure:
#                            proves back-to-back *cross-run* comparisons
#                            hold still on this machine right now.
#   3. capture → +10%      — the same committed-baseline machinery must
#                            flag a deliberately injected slowdown.
#   4. committed baseline  — des_core vs benches/baselines/des_core.json.
# A regression verdict from step 4 fails CI only when steps 1–3 all
# passed; on a machine that cannot hold still, the verdict is reported
# loudly as inconclusive instead of silently passing or flaking.
BENCH=./target/release/bench
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
trajectory="$PWD/target/BENCH_trajectory.jsonl"
machine_quiet=1

rc=0
"$BENCH" selftest --budget-ms 500 || rc=$?
case $rc in
    0) echo "ok: selftest (A/A quiet, injected slowdown detected)" ;;
    3) echo "report: selftest inconclusive — machine too noisy to gate benches this run"
       machine_quiet=0 ;;
    *) echo "error: bench selftest failed to run (exit $rc)" >&2; exit 1 ;;
esac

rc=0
"$BENCH" gate_selfcheck --budget-ms 500 \
    --capture target/BENCH_gate_baseline.json >/dev/null || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "error: bench gate_selfcheck capture failed (exit $rc)" >&2; exit 1
fi
rc=0
"$BENCH" gate_selfcheck --budget-ms 500 --min-effect 5 \
    --compare target/BENCH_gate_baseline.json >/dev/null || rc=$?
case $rc in
    0) echo "ok: cross-run A/A of the identical closure reads no-difference" ;;
    2|3) echo "report: cross-run A/A unstable (exit $rc) — committed-baseline verdicts demoted to reports"
         machine_quiet=0 ;;
    *) echo "error: bench gate_selfcheck A/A compare failed to run (exit $rc)" >&2; exit 1 ;;
esac
rc=0
SPIDER_GATE_INJECT_PCT=10 "$BENCH" gate_selfcheck --budget-ms 500 --min-effect 5 \
    --compare target/BENCH_gate_baseline.json >/dev/null || rc=$?
case $rc in
    2) echo "ok: injected +10% slowdown flagged as a regression" ;;
    0|3) echo "report: injected slowdown not resolved (exit $rc) — committed-baseline verdicts demoted to reports"
         machine_quiet=0 ;;
    *) echo "error: bench gate_selfcheck injected compare failed to run (exit $rc)" >&2; exit 1 ;;
esac

rc=0
"$BENCH" des_core --min-effect 10 \
    --compare crates/bench/benches/baselines/des_core.json \
    --json "$PWD/target/BENCH_des.json" \
    --trajectory "$trajectory" --commit "$commit" || rc=$?
case $rc in
    0) echo "ok: des_core within baseline (target/BENCH_des.json, trajectory appended)" ;;
    2) if [ "$machine_quiet" -eq 1 ]; then
           echo "error: des_core regressed against the committed baseline" >&2
           exit 1
       fi
       echo "report: des_core regression verdict on a machine that failed its self-check — not gating" ;;
    3) echo "report: des_core measurement inconclusive (machine not stationary) — not gating" ;;
    *) echo "error: bench des_core failed to run (exit $rc)" >&2; exit 1 ;;
esac

step "bench des_metro (grid vs linear scan, verdict greped)"
# The spatial grid must beat the linear scan it replaced on the 1024-AP
# downtown at the contention query radius. bench_pair verdicts never feed
# the exit code (that channel belongs to committed-baseline compares), so
# the gate greps the printed interleaved-A/B verdict instead — demoted to
# a report when the machine failed its own self-check above.
rc=0
"$BENCH" des_metro --budget-ms 1000 \
    --json "$PWD/target/BENCH_metro.json" \
    --trajectory "$trajectory" --commit "$commit" \
    >target/BENCH_metro.out 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
    cat target/BENCH_metro.out >&2
    echo "error: bench des_metro failed to run (exit $rc)" >&2; exit 1
fi
if grep -q 'inrange_1024aps_linear_scan_vs_grid_x256.* — improvement ' \
    target/BENCH_metro.out; then
    echo "ok: grid beats linear scan on des_metro (target/BENCH_metro.json)"
elif [ "$machine_quiet" -eq 1 ]; then
    cat target/BENCH_metro.out >&2
    echo "error: grid did not beat the linear scan on a machine that passed its self-check" >&2
    exit 1
else
    echo "report: grid-vs-scan verdict not 'improvement' on a machine that failed its self-check — not gating"
fi

step "bench des_fleet (one fleet world vs N-times replication, verdict greped)"
# One 8-client fleet world must beat running the whole world 8 times —
# the shared deployment, AP timers, and event queue are the point of the
# subsystem. Same grep-the-verdict contract as des_metro: bench_pair
# verdicts never feed the exit code, and the gate demotes to a report
# when the machine failed its self-check. The 1→64 scaling sweep lands
# per-client wall-clock in the trajectory artifact either way.
rc=0
"$BENCH" des_fleet --budget-ms 1000 \
    --json "$PWD/target/BENCH_fleet.json" \
    --trajectory "$trajectory" --commit "$commit" \
    >target/BENCH_fleet.out 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
    cat target/BENCH_fleet.out >&2
    echo "error: bench des_fleet failed to run (exit $rc)" >&2; exit 1
fi
if grep -q 'fleet8_one_world_vs_8x_replication.* — improvement ' \
    target/BENCH_fleet.out; then
    echo "ok: one 8-client world beats 8x replication (target/BENCH_fleet.json)"
elif [ "$machine_quiet" -eq 1 ]; then
    cat target/BENCH_fleet.out >&2
    echo "error: fleet world did not beat replication on a machine that passed its self-check" >&2
    exit 1
else
    echo "report: fleet-vs-replication verdict not 'improvement' on a machine that failed its self-check — not gating"
fi

step "bench artifact (campaign substrates)"
# Machine-readable artifact for the campaign hot paths; a bench that
# fails to *run* fails CI — only measurement verdicts are non-gating.
rc=0
"$BENCH" substrates campaign --budget-ms 100 \
    --json "$PWD/target/BENCH_campaign.json" \
    --trajectory "$trajectory" --commit "$commit" >/dev/null || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "error: substrates bench failed to run (exit $rc)" >&2; exit 1
fi
[ -s target/BENCH_campaign.json ] || {
    echo "error: substrates bench wrote no artifact" >&2; exit 1; }
echo "ok: wrote target/BENCH_campaign.json"

step "bench trajectory (cross-commit drift report, non-gating)"
# Joins the append-only per-commit log the gated steps above wrote into
# per-bench tables and flags monotone drifts no single-commit gate can
# see. A reader, not a gate: drift findings are reported, only a broken
# log fails CI.
"$BENCH" trajectory "$trajectory" || {
    echo "error: bench trajectory could not read $trajectory" >&2; exit 1; }

step "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "skip: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "skip: clippy not installed"
fi

printf '\nCI passed.\n'
