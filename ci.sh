#!/usr/bin/env bash
# Offline CI for the spider-repro workspace.
#
# The workspace's contract is hermeticity: a clean checkout must build and
# test with an EMPTY registry and no network. Every step below therefore
# runs with --offline; if any crate ever grows a registry dependency, the
# build steps and the dependency-freeze check both fail.
#
# Usage: ./ci.sh            (from the repo root)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "dependency freeze (no registry sources)"
# Path-only dependencies serialize as "source": null in cargo metadata; any
# quoted source string means a registry/git dependency sneaked in.
metadata=$(cargo metadata --offline --format-version 1)
if printf '%s' "$metadata" | grep -Eo '"source":"[^"]+"' | sort -u | grep .; then
    echo "error: non-path dependency sources found (listed above)." >&2
    echo "This workspace must stay registry-free; see Cargo.toml." >&2
    exit 1
fi
echo "ok: every package source is null (path-only workspace)"

step "cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

step "cargo test --offline"
cargo test -q --offline --workspace

step "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "skip: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "skip: clippy not installed"
fi

printf '\nCI passed.\n'
