#!/usr/bin/env bash
# Offline CI for the spider-repro workspace.
#
# The workspace's contract is hermeticity: a clean checkout must build and
# test with an EMPTY registry and no network. Every step below therefore
# runs with --offline; if any crate ever grows a registry dependency, the
# build steps and the dependency-freeze check both fail.
#
# Usage: ./ci.sh            (from the repo root)

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "dependency freeze (no registry sources)"
# Path-only dependencies serialize as "source": null in cargo metadata; any
# quoted source string means a registry/git dependency sneaked in.
metadata=$(cargo metadata --offline --format-version 1)
if printf '%s' "$metadata" | grep -Eo '"source":"[^"]+"' | sort -u | grep .; then
    echo "error: non-path dependency sources found (listed above)." >&2
    echo "This workspace must stay registry-free; see Cargo.toml." >&2
    exit 1
fi
echo "ok: every package source is null (path-only workspace)"

step "simlint (determinism & panic-path policy)"
# Gating: unordered-map state, wall-clock reads, and unwaived panic paths
# in the simulation core fail CI before anything else builds. The JSON
# summary is archived next to the bench artifact.
cargo run -q --release --offline -p simlint -- --json target/simlint.json
echo "ok: simlint clean (archived target/simlint.json)"

step "cargo build --release --offline"
cargo build --release --offline --workspace --all-targets

step "cargo test --offline"
cargo test -q --offline --workspace

step "campaign cache smoke test (fig5 twice, second run must be all hits)"
smoke_dir=$(mktemp -d target/campaign-smoke.XXXXXX)
trap 'rm -rf "$smoke_dir"' EXIT
# Two separate OS processes with deliberately different irrelevant
# environments: cache hits require byte-identical records, so this also
# proves results don't depend on per-process state (hash-map iteration
# order, env contents, ASLR).
SPIDER_ORDER_PROBE=first-process-aaaa \
    ./target/release/experiments fig5 --scale 1 --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/first.out" 2>"$smoke_dir/first.err"
SPIDER_ORDER_PROBE=second-process-zzzz-different-length \
    ./target/release/experiments fig5 --scale 1 --cache-dir "$smoke_dir/cache" \
    >"$smoke_dir/second.out" 2>"$smoke_dir/second.err"
if ! cmp -s "$smoke_dir/first.out" "$smoke_dir/second.out"; then
    echo "error: cached second fig5 run is not byte-identical to the first" >&2
    diff "$smoke_dir/first.out" "$smoke_dir/second.out" >&2 || true
    exit 1
fi
if ! grep -q 'campaign: [0-9]* shards — [0-9]* hits, 0 misses, 0 cancelled' \
    "$smoke_dir/second.err"; then
    echo "error: second fig5 run was not served 100% from cache:" >&2
    cat "$smoke_dir/second.err" >&2
    exit 1
fi
echo "ok: second run 100% cache hits, stdout byte-identical"

step "fleet smoke test (fig5 --exec process: identical output, then all hits)"
# The same fig5 campaign executed on worker OS processes over the framed
# stdin/stdout protocol must be byte-identical to the threaded run above,
# and a second process-mode pass must be served 100% from its own cache.
./target/release/experiments fig5 --scale 1 --workers 4 --exec process \
    --cache-dir "$smoke_dir/fleet-cache" \
    >"$smoke_dir/fleet.out" 2>"$smoke_dir/fleet.err"
if ! cmp -s "$smoke_dir/first.out" "$smoke_dir/fleet.out"; then
    echo "error: --exec process fig5 output differs from the threaded run" >&2
    diff "$smoke_dir/first.out" "$smoke_dir/fleet.out" >&2 || true
    exit 1
fi
./target/release/experiments fig5 --scale 1 --workers 4 --exec process \
    --cache-dir "$smoke_dir/fleet-cache" \
    >"$smoke_dir/fleet2.out" 2>"$smoke_dir/fleet2.err"
if ! grep -q 'campaign: [0-9]* shards — [0-9]* hits, 0 misses, 0 cancelled' \
    "$smoke_dir/fleet2.err"; then
    echo "error: second --exec process fig5 run was not served 100% from cache:" >&2
    cat "$smoke_dir/fleet2.err" >&2
    exit 1
fi
echo "ok: process-exec output byte-identical to threads, second pass all hits"

step "bench artifact (non-gating)"
# Archive a quick machine-readable bench summary; never fails the build.
# cargo bench runs the binary with CWD set to the bench package dir, so
# the artifact path must be absolute to land in the workspace target/.
if SPIDER_BENCH_BUDGET_MS=50 SPIDER_BENCH_JSON="$PWD/target/BENCH_campaign.json" \
    cargo bench --offline -p bench --bench substrates -- campaign \
    >/dev/null 2>&1 && [ -s target/BENCH_campaign.json ]; then
    echo "ok: wrote target/BENCH_campaign.json"
else
    echo "skip: bench artifact step failed (non-gating)"
fi

step "DES hot-path bench artifact (non-gating)"
# Headline engine throughput: events/sec on the fig5-scale world, plus
# queue/intern microbenches, archived next to the recorded pre-rework
# baseline so the speedup is auditable from one JSON file.
if des_out=$(SPIDER_BENCH_BUDGET_MS=200 SPIDER_BENCH_JSON="$PWD/target/BENCH_des.json" \
    cargo bench --offline -p bench --bench des_core 2>/dev/null) \
    && [ -s target/BENCH_des.json ]; then
    echo "ok: wrote target/BENCH_des.json"
    printf '%s\n' "$des_out" | grep "events/sec" || true
else
    echo "skip: DES bench artifact step failed (non-gating)"
fi

step "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "skip: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "skip: clippy not installed"
fi

printf '\nCI passed.\n'
