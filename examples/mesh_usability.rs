//! The §4.7 usability question: can open Wi-Fi, as delivered by Spider,
//! cover what real wireless users actually do?
//!
//! Compares the synthetic mesh-user workload (standing in for the paper's
//! 161-user downtown capture) against Spider's delivered connection and
//! disruption distributions from a vehicular run — Figs. 13 and 14.
//!
//! ```text
//! cargo run --release --example mesh_usability
//! ```

use spider_repro::engine::{Duration, Instant, Rng, Samples};
use spider_repro::mobility::{deploy_along, DeploymentConfig, Route, Vehicle};
use spider_repro::spider::{run, ClientMotion, SpiderConfig, WorldConfig};
use spider_repro::traffic::mesh::{self, MeshWorkloadParams};
use spider_repro::wifi::Channel;

fn cdf_row(label: &str, samples: &Samples, points: &[f64]) {
    let mut s = samples.clone();
    print!("  {label:<40}");
    for &p in points {
        print!(" {:>6.0}%@{p:<4}", 100.0 * s.cdf_at(p));
    }
    println!(" (n={})", s.count());
}

fn main() {
    let seed = 4711;
    println!(
        "Mesh capture (paper §4.7): {} users, {} TCP connections, {}% HTTP —",
        mesh::capture::USERS,
        mesh::capture::TCP_CONNECTIONS,
        100 * mesh::capture::HTTP_CONNECTIONS / mesh::capture::TCP_CONNECTIONS
    );
    println!("synthesized here from calibrated heavy-tailed distributions.\n");

    // The user side.
    let mut rng = Rng::new(seed);
    let params = MeshWorkloadParams::default();
    let user_conn = mesh::duration_samples(&params, 30_000, &mut rng);
    let user_gaps = mesh::gap_samples(&params, 30_000, &mut rng);

    // The Spider side: the two extreme configurations, 20-minute drive.
    let route = Route::rectangle(1_000.0, 500.0);
    let mut site_rng = Rng::new(seed ^ 0xA);
    let sites = deploy_along(&route, &DeploymentConfig::amherst(), &mut site_rng);
    let mut results = Vec::new();
    for (name, spider) in [
        (
            "Spider multi-AP (ch1)",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        (
            "Spider multi-AP (3 channels)",
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        ),
    ] {
        let vehicle = Vehicle::new(route.clone(), 10.0, Instant::ZERO);
        let world = WorldConfig::new(
            seed,
            sites.clone(),
            ClientMotion::Route(vehicle),
            spider,
            Duration::from_secs(1200),
        );
        results.push((name, run(world)));
    }

    println!("Figure 13 — connection durations (CDF at 10/30/60 s):");
    cdf_row("users need (flow lengths)", &user_conn, &[10.0, 30.0, 60.0]);
    for (name, r) in &results {
        cdf_row(
            &format!("{name} provides"),
            &r.connection_durations,
            &[10.0, 30.0, 60.0],
        );
    }

    println!("\nFigure 14 — disruptions vs inter-connection gaps (CDF at 30/120/300 s):");
    cdf_row("users tolerate (gaps)", &user_gaps, &[30.0, 120.0, 300.0]);
    for (name, r) in &results {
        cdf_row(
            &format!("{name} imposes"),
            &r.disruption_durations,
            &[30.0, 120.0, 300.0],
        );
    }

    println!("\nReading: Spider covers a user flow if its connections last at least as");
    println!("long as the flow; its disruptions are tolerable if no longer than the");
    println!("gaps users already exhibit. The multi-channel configuration trades");
    println!("throughput for shorter disruptions — the paper's §4.7 conclusion.");
}
