//! Explore the paper's **dividing speed** with the analytical framework
//! (§2.1): at what speed does chasing APs on a second channel stop paying?
//!
//! Sweeps vehicle speed and AP responsiveness (βmax) through the Eq. 8–10
//! optimizer and prints where the second channel's recoverable bandwidth
//! collapses.
//!
//! ```text
//! cargo run --release --example dividing_speed
//! ```

use spider_repro::model::{dividing_speed, figure4_inputs, solve, JoinModelParams};

fn main() {
    println!("The dividing speed (CoNEXT 2011, §2.1.3)\n");
    println!("Setting: channel 1 already joined with 75% of Bw; channel 2 offers the");
    println!("remaining 25% behind a join whose response time is β ~ U[0.5s, βmax].\n");

    // How much of channel 2's bandwidth can each speed recover?
    println!(
        "{:>10} {:>16} {:>16}",
        "speed m/s", "ch2 recovered", "of available"
    );
    for speed in [2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0, 30.0] {
        let inputs = figure4_inputs(0.75, speed, 10.0);
        let available = inputs.channels[1].available_bps;
        let sched = solve(&inputs);
        println!(
            "{:>10.1} {:>13.0} kb/s {:>15.0}%",
            speed,
            sched.per_channel_bps[1] / 1000.0,
            100.0 * sched.per_channel_bps[1] / available
        );
    }

    // The dividing speed as a function of AP responsiveness.
    println!("\nDividing speed (second channel recovers < 50% of its offer):");
    println!("{:>10} {:>16}", "βmax (s)", "divide (m/s)");
    for beta_max in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let v = dividing_speed(0.75, beta_max, 0.5, 60.0, 0.5);
        println!("{beta_max:>10.1} {v:>16.1}");
    }

    // And the underlying join probabilities driving it.
    println!("\nWhy: p(join within t) collapses with the schedule fraction —");
    let t = 4.0;
    for f in [0.1, 0.3, 0.5, 1.0] {
        let p = JoinModelParams::figure2(f, 10.0).p_join(t);
        println!("  f = {f:>4}: p(join in {t} s) = {p:.2}");
    }
    println!("\nPaper: \"users traveling at an average speed of 10 m/s (~22 mph) or faster");
    println!("should form concurrent Wi-Fi connections only within a single channel.\"");
}
