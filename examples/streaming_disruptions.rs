//! Can a vehicular Spider client keep a media stream fed? (§1's Pandora /
//! Netflix motivation, §4.3's disruption analysis.)
//!
//! Simulates a commuter streaming: the player needs a sustained average
//! rate and survives gaps up to its buffer depth. We measure, per driver
//! configuration, how much playback time a given buffer actually covers.
//!
//! ```text
//! cargo run --release --example streaming_disruptions
//! ```

use spider_repro::engine::{Duration, Instant, Rng};
use spider_repro::mobility::{deploy_along, DeploymentConfig, Route, Vehicle};
use spider_repro::spider::{run, ClientMotion, RunResult, SpiderConfig, WorldConfig};
use spider_repro::wifi::Channel;

/// A music-grade stream: 192 kb/s = 24 kB/s.
const STREAM_KBPS: f64 = 24.0;

/// Fraction of drive time the stream can play, given `buffer_secs` of
/// client-side buffering: playback survives a disruption iff it is shorter
/// than the buffer that throughput surpluses managed to fill.
fn playable_fraction(result: &RunResult, buffer_secs: f64) -> f64 {
    // Conservative model: every disruption longer than the buffer stalls
    // playback for (disruption − buffer); shorter ones are absorbed.
    let total = result.duration.as_secs_f64();
    let stalled: f64 = result
        .disruption_durations
        .values()
        .iter()
        .map(|&d| (d - buffer_secs).max(0.0))
        .sum();
    // And the stream needs enough average bandwidth overall.
    if result.avg_throughput_kbps() < STREAM_KBPS {
        // Scale by the bandwidth deficit too.
        let supply = result.avg_throughput_kbps() / STREAM_KBPS;
        return ((total - stalled) / total * supply).clamp(0.0, 1.0);
    }
    ((total - stalled) / total).clamp(0.0, 1.0)
}

fn main() {
    let seed = 99;
    let route = Route::rectangle(1_200.0, 600.0);
    let mut rng = Rng::new(seed);
    let sites = deploy_along(&route, &DeploymentConfig::amherst(), &mut rng);
    println!(
        "Streaming a {STREAM_KBPS:.0} kB/s stream around a {:.1} km loop ({} APs), 20 min.\n",
        route.length() / 1000.0,
        sites.len()
    );

    let slice = Duration::from_millis(200);
    let configs: Vec<(&str, SpiderConfig)> = vec![
        (
            "ch1 multi-AP (throughput cfg)",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        (
            "3-chan multi-AP (connectivity cfg)",
            SpiderConfig::multi_channel_multi_ap(slice),
        ),
        ("stock MadWiFi", SpiderConfig::stock_madwifi()),
    ];

    println!(
        "{:<36} {:>10} {:>9} {:>12} {:>12} {:>12}",
        "driver", "KB/s", "conn %", "play @30s", "play @120s", "play @300s"
    );
    for (name, spider) in configs {
        let vehicle = Vehicle::new(route.clone(), 10.0, Instant::ZERO);
        let world = WorldConfig::new(
            seed,
            sites.clone(),
            ClientMotion::Route(vehicle),
            spider,
            Duration::from_secs(1200),
        );
        let r = run(world);
        println!(
            "{:<36} {:>10.1} {:>8.1}% {:>11.0}% {:>11.0}% {:>11.0}%",
            name,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            100.0 * playable_fraction(&r, 30.0),
            100.0 * playable_fraction(&r, 120.0),
            100.0 * playable_fraction(&r, 300.0),
        );
    }
    println!("\nReading: \"play @B\" = fraction of the drive a player with B seconds of");
    println!("buffer keeps playing. Deep buffers turn Spider's bursty open-Wi-Fi");
    println!("service into continuous playback — the paper's §4.7 conclusion.");

    // Second view: run the player's actual traffic shape (segmented
    // fetches with think time) through the simulator instead of assuming
    // a saturating download.
    println!("\nSegmented-fetch run (3 MB segments, 4 s think — a prefetching player):");
    let vehicle = Vehicle::new(route.clone(), 10.0, Instant::ZERO);
    let mut world = WorldConfig::new(
        seed,
        sites.clone(),
        ClientMotion::Route(vehicle),
        SpiderConfig::single_channel_multi_ap(Channel::CH1),
        Duration::from_secs(1200),
    );
    world.plan = spider_repro::traffic::DownloadPlan::Segmented {
        object_bytes: 3_000_000,
        think: Duration::from_secs(4),
    };
    let r = run(world);
    let segments = r.total_bytes / 3_000_000;
    println!(
        "  fetched ≈ {segments} segments ({:.1} MB) in 20 min — {:.0} s of {STREAM_KBPS:.0} kB/s playback",
        r.total_bytes as f64 / 1e6,
        r.total_bytes as f64 / 1000.0 / STREAM_KBPS
    );
}
