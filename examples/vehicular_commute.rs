//! A commuter's loop through an Amherst-like downtown: compare the four
//! Spider configurations of the paper's §4 plus the stock-driver baseline
//! on one identical drive.
//!
//! This is the Table 2 experiment in miniature: it shows the paper's two
//! headline trade-offs — single-channel multi-AP wins throughput,
//! multi-channel multi-AP wins connectivity — emerge from the simulation.
//!
//! ```text
//! cargo run --release --example vehicular_commute
//! ```

use spider_repro::engine::{Duration, Instant, Rng};
use spider_repro::mobility::{deploy_along, DeploymentConfig, Route, Vehicle};
use spider_repro::spider::{run, ClientMotion, SpiderConfig, WorldConfig};
use spider_repro::wifi::Channel;

fn main() {
    let seed = 2011;
    // A downtown block loop (1 km × 0.5 km) with the paper's measured
    // Amherst channel mix (28 % / 33 % / 34 % on 1 / 6 / 11).
    let loop_route = Route::rectangle(1_000.0, 500.0);
    let mut rng = Rng::new(seed);
    let sites = deploy_along(&loop_route, &DeploymentConfig::amherst(), &mut rng);
    println!(
        "Commute loop: {:.1} km, {} open APs (Amherst channel mix), 10 m/s, 15 min.\n",
        loop_route.length() / 1000.0,
        sites.len()
    );

    let slice = Duration::from_millis(200);
    let configs: Vec<(&str, SpiderConfig)> = vec![
        (
            "(1) ch1, multi-AP  ",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        (
            "(2) ch1, single-AP ",
            SpiderConfig::single_channel_single_ap(Channel::CH1),
        ),
        (
            "(3) 3 ch, multi-AP ",
            SpiderConfig::multi_channel_multi_ap(slice),
        ),
        (
            "(4) 3 ch, single-AP",
            SpiderConfig::multi_channel_single_ap(slice),
        ),
        ("stock MadWiFi      ", SpiderConfig::stock_madwifi()),
    ];

    println!(
        "{:<22} {:>12} {:>13} {:>8} {:>9} {:>10}",
        "configuration", "tput KB/s", "connectivity", "joins", "failures", "switches"
    );
    let mut best_tput = ("", 0.0f64);
    let mut best_conn = ("", 0.0f64);
    for (name, spider) in configs {
        let vehicle = Vehicle::new(loop_route.clone(), 10.0, Instant::ZERO);
        let world = WorldConfig::new(
            seed,
            sites.clone(),
            ClientMotion::Route(vehicle),
            spider,
            Duration::from_secs(900),
        );
        let r = run(world);
        println!(
            "{:<22} {:>12.1} {:>12.1}% {:>8} {:>9} {:>10}",
            name,
            r.avg_throughput_kbps(),
            100.0 * r.connectivity,
            r.join_times.count(),
            r.assoc_failures + r.dhcp_failures,
            r.switch_count
        );
        if r.avg_throughput_kbps() > best_tput.1 {
            best_tput = (name, r.avg_throughput_kbps());
        }
        if r.connectivity > best_conn.1 {
            best_conn = (name, r.connectivity);
        }
    }
    println!(
        "\nThroughput winner  : {} ({:.1} KB/s)",
        best_tput.0.trim(),
        best_tput.1
    );
    println!(
        "Connectivity winner: {} ({:.1} %)",
        best_conn.0.trim(),
        100.0 * best_conn.1
    );
    println!("\nPaper's result: configuration (1) wins throughput ≈ 4×; (3) wins connectivity.");
}
