//! Quickstart: drive one vehicle past a handful of open APs with Spider's
//! best configuration (single channel, multiple APs) and print what the
//! paper's §4.3 metrics look like for the run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spider_repro::engine::{Duration, Instant, Rng};
use spider_repro::mobility::{deploy_evenly, ChannelMix, DeploymentConfig, Point, Route, Vehicle};
use spider_repro::spider::{run, ClientMotion, SpiderConfig, WorldConfig};
use spider_repro::wifi::Channel;

fn main() {
    // A 3 km straight road with ten open APs, everything on channel 1.
    let road = Route::straight(Point::new(0.0, 0.0), Point::new(3_000.0, 0.0));
    let mut rng = Rng::new(7);
    let mut deployment = DeploymentConfig::amherst();
    deployment.channel_mix = ChannelMix::single(Channel::CH1);
    let sites = deploy_evenly(&road, 10, &deployment, &mut rng);
    println!(
        "Deployed {} open APs along a 3 km road (channel 1).",
        sites.len()
    );

    // Drive it once at 10 m/s (≈ 22 mph — the paper's dividing speed).
    let vehicle = Vehicle::new(road, 10.0, Instant::ZERO);
    let world = WorldConfig::new(
        42,
        sites,
        ClientMotion::Route(vehicle),
        SpiderConfig::single_channel_multi_ap(Channel::CH1),
        Duration::from_secs(300),
    );
    println!("Driving for 300 s at 10 m/s with Spider (single-channel, multi-AP)...\n");
    let result = run(world);

    println!("bytes delivered        : {}", result.total_bytes);
    println!(
        "average throughput     : {:.1} KB/s",
        result.avg_throughput_kbps()
    );
    println!(
        "connectivity           : {:.1} %",
        100.0 * result.connectivity
    );
    println!("successful joins       : {}", result.join_times.count());
    println!(
        "median join time       : {:.2} s",
        result.join_times.clone().median()
    );
    println!("association failures   : {}", result.assoc_failures);
    println!("dhcp failures          : {}", result.dhcp_failures);
    println!("peak concurrent APs    : {}", result.max_concurrent_aps);
    let mut disruptions = result.disruption_durations.clone();
    if !disruptions.is_empty() {
        println!("median disruption      : {:.0} s", disruptions.median());
    }
    println!("\nTry examples/vehicular_commute.rs for the four-configuration comparison.");
}
