//! The 802.11b rate ladder and ARF, beyond the paper's fixed-11 Mb/s
//! assumption: what a vehicular link looks like when the driver adapts
//! its rate as the AP approaches and recedes.
//!
//! ```text
//! cargo run --release --example rate_adaptation
//! ```

use spider_repro::engine::Rng;
use spider_repro::wifi::rates::{Arf, Rate, RatedPhy};
use spider_repro::wifi::PhyConfig;

fn main() {
    let phy = PhyConfig::default();
    println!("Per-rate behaviour of the default PHY (1500-byte frames):\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>14}",
        "dist m", "best rate", "PER @11Mb/s", "PER @1Mb/s", "goodput kb/s"
    );
    for d in [20.0, 60.0, 90.0, 110.0, 130.0, 150.0] {
        let best = phy.best_rate(d, 1500);
        println!(
            "{:>8.0} {:>12?} {:>14.3} {:>14.3} {:>14.0}",
            d,
            best,
            phy.frame_error_prob_at(d, 1500, Rate::R11),
            phy.frame_error_prob_at(d, 1500, Rate::R1),
            phy.goodput_at(d, 1500, best) / 1000.0,
        );
    }

    // A drive-by: distance sweeps 150 → 10 → 150 m while ARF adapts.
    println!("\nARF through a drive-by encounter (approach, pass, recede):\n");
    println!(
        "{:>8} {:>10} {:>12} {:>16}",
        "t (s)", "dist m", "ARF rate", "frames ok/sent"
    );
    let mut arf = Arf::new(Rate::R11);
    let mut rng = Rng::new(7);
    for step in 0..=14 {
        let t = step as f64 * 2.0;
        // 10 m/s drive past an AP 10 m off the road, closest at t = 14 s.
        let along = -140.0 + 10.0 * t;
        let dist = (along * along + 100.0).sqrt();
        let mut ok = 0;
        let sent = 50;
        for _ in 0..sent {
            let e = phy.frame_error_prob_at(dist, 1500, arf.rate());
            if rng.chance(e) {
                arf.on_failure();
            } else {
                arf.on_success();
                ok += 1;
            }
        }
        println!("{t:>8.0} {dist:>10.0} {:>12?} {ok:>13}/{sent}", arf.rate());
    }
    println!("\nReading: ARF rides the ladder down on approach-edge losses and back up");
    println!("near the AP — the behaviour real MadWiFi had and the paper's fixed-rate");
    println!("model abstracts away. Enabling it in the full world is future work here");
    println!("too; the module and controller are tested and ready (wifi_mac::rates).");
}
