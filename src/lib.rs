//! # spider-repro
//!
//! A full reproduction of **"Concurrent Wi-Fi for Mobile Users: Analysis
//! and Measurements"** (Soroush, Gilbert, Banerjee, Levine, Corner, Cox —
//! ACM CoNEXT 2011): the Spider virtualized multi-AP Wi-Fi driver, the
//! paper's analytical join/throughput models, and every substrate needed
//! to evaluate them — rebuilt as a deterministic discrete-event simulation
//! in pure Rust.
//!
//! This facade crate re-exports the workspace's public APIs:
//!
//! * [`engine`] — deterministic simulation kernel (virtual time, event
//!   queue, RNG, statistics).
//! * [`wifi`] — the 802.11 substrate: frames, PHY, client/AP MACs, radio.
//! * [`dhcp`] — DHCP wire format, client timers, per-AP servers with the
//!   paper's `β` response-delay model.
//! * [`tcp`] — NewReno + SACK + timestamps TCP, the workload's transport.
//! * [`mobility`] — routes, vehicular motion, AP deployments, encounters.
//! * [`geo`] — spatial indexing for metro-scale worlds: grid/bucket range
//!   queries over deployments, incremental mover membership, per-cell
//!   channel contention.
//! * [`model`] — the paper's Eqs. 1–10: join probability and the
//!   throughput optimizer with its dividing speed.
//! * [`traffic`] — backhaul shapers, download plans, mesh-user traces.
//! * [`spider`] — the driver itself and the full-world simulation.
//! * [`campaign`] — the resumable, content-addressed experiment-campaign
//!   orchestrator (cached run records + replayable manifest).
//! * [`fleet`] — multi-process campaign execution: a framed worker
//!   protocol over stdin/stdout with crash-retry scheduling.
//!
//! ## Quickstart
//!
//! ```
//! use spider_repro::spider::{run, ClientMotion, SpiderConfig, WorldConfig};
//! use spider_repro::mobility::{deploy_evenly, DeploymentConfig, Route, Vehicle};
//! use spider_repro::engine::{Duration, Instant, Rng};
//! use spider_repro::wifi::Channel;
//!
//! // A 2 km road with APs every 200 m, all on channel 1.
//! let route = Route::straight(
//!     spider_repro::mobility::Point::new(0.0, 0.0),
//!     spider_repro::mobility::Point::new(2_000.0, 0.0),
//! );
//! let mut rng = Rng::new(7);
//! let mut cfg = DeploymentConfig::amherst();
//! cfg.channel_mix = spider_repro::mobility::ChannelMix::single(Channel::CH1);
//! let sites = deploy_evenly(&route, 10, &cfg, &mut rng);
//!
//! // Drive it at 10 m/s with Spider's best configuration.
//! let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
//! let world = WorldConfig::new(
//!     42,
//!     sites,
//!     ClientMotion::Route(vehicle),
//!     SpiderConfig::single_channel_multi_ap(Channel::CH1),
//!     Duration::from_secs(120),
//! );
//! let result = run(world);
//! assert!(result.join_times.count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic simulation kernel.
pub mod engine {
    pub use sim_engine::*;
}

/// 802.11 substrate.
pub mod wifi {
    pub use wifi_mac::*;
}

/// DHCP substrate.
pub mod dhcp {
    pub use dhcp::*;
}

/// TCP substrate.
pub mod tcp {
    pub use tcp_lite::*;
}

/// Mobility and deployment.
pub mod mobility {
    pub use mobility::*;
}

/// Spatial indexing for metro-scale worlds.
pub mod geo {
    pub use geo::*;
}

/// The paper's analytical framework.
pub mod model {
    pub use analytical::*;
}

/// Traffic workloads.
pub mod traffic {
    pub use workload::*;
}

/// Spider and the full-system simulation.
pub mod spider {
    pub use spider_core::world::{run, ClientMotion, RunResult, WorldConfig};
    pub use spider_core::*;
}

/// Campaign orchestration: content-addressed caching and resumable sweeps.
pub mod campaign {
    pub use campaign::*;
}

/// Multi-process campaign execution: framed worker protocol, crash-retry
/// scheduler, deterministic fault injection.
pub mod fleet {
    pub use fleet::*;
}
