//! Property-based tests (proptest) on the workspace's core invariants:
//! wire-format round-trips, sequence arithmetic, statistics estimators,
//! geometry, and protocol state machines under arbitrary inputs.

use proptest::prelude::*;

use spider_repro::dhcp::{DhcpMessage, MessageType};
use spider_repro::engine::{Duration, Instant, Rng, Samples, Summary};
use spider_repro::mobility::{Point, Route};
use spider_repro::model::JoinModelParams;
use spider_repro::tcp::{segment::Segment, seq::SeqNum};
use spider_repro::wifi::frame::{Frame, FrameBody, Ssid};
use spider_repro::wifi::{Channel, MacAddr, PhyConfig};

// ---------------------------------------------------------------- frames

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ssid() -> impl Strategy<Value = Ssid> {
    proptest::collection::vec(any::<u8>(), 0..=32)
        .prop_map(|b| Ssid::from_bytes(&b).expect("≤32 bytes"))
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    (1u8..=14).prop_map(Channel::from_number)
}

proptest! {
    #[test]
    fn beacon_frames_roundtrip(
        bssid in arb_mac(),
        ssid in arb_ssid(),
        channel in arb_channel(),
        ts in any::<u64>(),
        seq in 0u16..0x0FFF,
    ) {
        let mut f = Frame::beacon(bssid, ssid, channel, ts);
        f.seq = seq;
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn data_frames_roundtrip(
        sta in arb_mac(),
        bssid in arb_mac(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        pm in any::<bool>(),
        md in any::<bool>(),
    ) {
        let mut f = Frame::data_to_ap(sta, bssid, payload.into());
        f.power_mgmt = pm;
        f.more_data = md;
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn frame_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes); // may Err, must not panic
    }

    #[test]
    fn psm_control_frames_roundtrip(sta in arb_mac(), bssid in arb_mac(), aid in 0u16..0x3FFF) {
        let enter = Frame::psm_enter(sta, bssid);
        prop_assert_eq!(Frame::decode(&enter.encode()).unwrap(), enter);
        let poll = Frame::ps_poll(sta, bssid, aid);
        let decoded = Frame::decode(&poll.encode()).unwrap();
        prop_assert_eq!(decoded.body, FrameBody::PsPoll { aid });
    }
}

// ---------------------------------------------------------------- dhcp

proptest! {
    #[test]
    fn dhcp_messages_roundtrip(
        xid in any::<u32>(),
        chaddr in any::<[u8; 6]>(),
        ip in any::<[u8; 4]>(),
        server in any::<[u8; 4]>(),
        lease in 1u32..86_400,
        kind in 0usize..4,
    ) {
        let ip = std::net::Ipv4Addr::from(ip);
        let server = std::net::Ipv4Addr::from(server);
        let msg = match kind {
            0 => DhcpMessage::discover(xid, chaddr),
            1 => DhcpMessage::offer(xid, chaddr, ip, server, lease),
            2 => DhcpMessage::request(xid, chaddr, ip, server),
            _ => DhcpMessage::ack(xid, chaddr, ip, server, lease),
        };
        let decoded = DhcpMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn dhcp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = DhcpMessage::decode(&bytes);
    }

    #[test]
    fn dhcp_type_is_preserved(xid in any::<u32>(), chaddr in any::<[u8; 6]>()) {
        let d = DhcpMessage::discover(xid, chaddr);
        prop_assert_eq!(DhcpMessage::decode(&d.encode()).unwrap().msg_type, MessageType::Discover);
    }
}

// ---------------------------------------------------------------- tcp

proptest! {
    #[test]
    fn seqnum_ordering_is_antisymmetric(a in any::<u32>(), delta in 1u32..(1 << 30)) {
        let x = SeqNum::new(a);
        let y = x + delta;
        prop_assert!(x < y);
        prop_assert!(y > x);
        prop_assert_eq!(y - x, delta);
    }

    #[test]
    fn seqnum_within_respects_bounds(start in any::<u32>(), len in 1u32..(1 << 20), off in 0u32..(1 << 20)) {
        let s = SeqNum::new(start);
        let p = s + off;
        prop_assert_eq!(p.within(s, len), off < len);
    }

    #[test]
    fn segments_roundtrip(
        conn in any::<u64>(),
        seq in any::<u32>(),
        len in 0u32..65_536,
        ts in any::<u64>(),
    ) {
        let mut seg = Segment::data(conn, SeqNum::new(seq), len);
        seg.ts_us = ts;
        prop_assert_eq!(Segment::decode(&seg.encode()), Some(seg));
    }

    #[test]
    fn segments_with_sack_roundtrip(
        conn in any::<u64>(),
        ack in any::<u32>(),
        blocks in proptest::collection::vec((any::<u32>(), 1u32..100_000), 0..=3),
        echo in proptest::option::of(any::<u64>()),
    ) {
        let mut seg = Segment::ack_only(conn, SeqNum::new(1), SeqNum::new(ack));
        for (slot, (s, l)) in seg.sack.iter_mut().zip(blocks.into_iter()) {
            *slot = Some((SeqNum::new(s), l));
        }
        seg.ts_echo_us = echo;
        prop_assert_eq!(Segment::decode(&seg.encode()), Some(seg));
    }

    #[test]
    fn segment_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Segment::decode(&bytes);
    }
}

// ---------------------------------------------------------------- engine

proptest! {
    #[test]
    fn summary_mean_is_bounded_by_extremes(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = Samples::new();
        for &v in &values {
            s.record(v);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0);
            prop_assert!(q >= last - 1e-9, "quantiles must be monotone");
            last = q;
        }
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn duration_roundtrip_secs(ms in 0u64..10_000_000) {
        let d = Duration::from_millis(ms);
        let back = Duration::from_secs_f64(d.as_secs_f64());
        // Round-trip through f64 is exact at millisecond granularity here.
        prop_assert_eq!(back, d);
    }
}

// ---------------------------------------------------------------- mobility

proptest! {
    #[test]
    fn route_positions_lie_on_or_near_route(
        w in 50f64..2_000.0,
        h in 50f64..2_000.0,
        d in 0f64..50_000.0,
    ) {
        let r = Route::rectangle(w, h);
        let p = r.position_at_distance(d);
        // Every point on the rectangle has x ∈ [0, w], y ∈ [0, h].
        prop_assert!((-1e-6..=w + 1e-6).contains(&p.x));
        prop_assert!((-1e-6..=h + 1e-6).contains(&p.y));
    }

    #[test]
    fn route_distance_is_periodic(w in 50f64..500.0, h in 50f64..500.0, d in 0f64..5_000.0) {
        let r = Route::rectangle(w, h);
        let a = r.position_at_distance(d);
        let b = r.position_at_distance(d + r.length());
        prop_assert!(a.distance(b) < 1e-6);
    }

    #[test]
    fn point_distance_is_a_metric(
        ax in -1e4f64..1e4, ay in -1e4f64..1e4,
        bx in -1e4f64..1e4, by in -1e4f64..1e4,
        cx in -1e4f64..1e4, cy in -1e4f64..1e4,
    ) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
        prop_assert!(a.distance(a) < 1e-12);
    }
}

// ---------------------------------------------------------------- models

proptest! {
    #[test]
    fn join_probability_is_a_probability(
        f in 0f64..=1.0,
        beta_max in 0.6f64..12.0,
        t in 0f64..20.0,
    ) {
        let p = JoinModelParams::figure2(f, beta_max).p_join(t);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn phy_delivery_probabilities_valid(d in 0f64..2_000.0, len in 1usize..3_000) {
        let phy = PhyConfig::default();
        let m = phy.mgmt_delivery_prob(d, len);
        let dd = phy.data_delivery_prob(d, len);
        prop_assert!((0.0..=1.0).contains(&m));
        prop_assert!((0.0..=1.0).contains(&dd));
        prop_assert!(dd >= m - 1e-12, "ARQ can only help");
    }

    #[test]
    fn phy_airtime_monotone_in_length(d in 1f64..300.0, len in 1usize..1_400) {
        let phy = PhyConfig::default();
        prop_assert!(phy.airtime(len + 100) > phy.airtime(len));
        prop_assert!(phy.expected_data_airtime(d, len) >= phy.airtime(len));
    }
}

// ------------------------------------------------- protocol state machines

proptest! {
    /// The DHCP client survives arbitrary (well-formed) message storms
    /// without panicking and without binding to mismatched transactions.
    #[test]
    fn dhcp_client_is_storm_proof(
        seed in any::<u64>(),
        msgs in proptest::collection::vec((0usize..5, any::<u32>(), any::<[u8;6]>()), 0..60),
    ) {
        use spider_repro::dhcp::{DhcpClient, DhcpClientConfig};
        let mut c = DhcpClient::new(DhcpClientConfig::default(), [2, 0, 0, 0, 0, 1], 1);
        c.start(Instant::ZERO, None);
        let ip = std::net::Ipv4Addr::new(10, 0, 0, 50);
        let srv = std::net::Ipv4Addr::new(10, 0, 0, 1);
        let mut now = Instant::ZERO;
        for (kind, xid, chaddr) in msgs {
            now += Duration::from_millis(10);
            let m = match kind {
                0 => DhcpMessage::offer(xid, chaddr, ip, srv, 60),
                1 => DhcpMessage::ack(xid, chaddr, ip, srv, 60),
                2 => DhcpMessage::nak(xid, chaddr, srv),
                3 => DhcpMessage::discover(xid, chaddr),
                _ => DhcpMessage::request(xid, chaddr, ip, srv),
            };
            let _ = c.handle_message(&m, now);
        }
        // If it bound, the lease must be internally consistent.
        if let Some(lease) = c.lease() {
            prop_assert_eq!(lease.ip, ip);
            prop_assert!(lease.expires > now);
        }
        let _ = seed;
    }
}

// ------------------------------------------------ stateful model checks

proptest! {
    /// The event queue agrees with a sorted-vector reference model under
    /// arbitrary interleavings of pushes, pops, and cancellations.
    #[test]
    fn event_queue_matches_reference_model(
        ops in proptest::collection::vec((0u8..3, 0u64..1_000), 1..200),
    ) {
        use spider_repro::engine::EventQueue;
        let mut q: EventQueue<u64> = EventQueue::new();
        // Reference: Vec of (time_ms, insertion_seq, value, cancelled).
        let mut model: Vec<(u64, u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut seq = 0u64;
        let mut now_ms = 0u64;
        for (op, arg) in ops {
            match op {
                0 => {
                    // Push at now + arg.
                    let t = now_ms + arg;
                    let id = q.push(Instant::from_millis(t), seq);
                    ids.push((id, seq));
                    model.push((t, seq, seq, false));
                    seq += 1;
                }
                1 => {
                    // Cancel a random-ish previously returned id.
                    if !ids.is_empty() {
                        let (id, s) = ids[(arg as usize) % ids.len()];
                        q.cancel(id);
                        if let Some(e) = model.iter_mut().find(|e| e.1 == s) {
                            e.3 = true;
                        }
                    }
                }
                _ => {
                    // Pop once; must match the earliest live model entry.
                    let expected = model
                        .iter()
                        .filter(|e| !e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .cloned();
                    let got = q.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some(e), Some((at, v))) => {
                            prop_assert_eq!(at, Instant::from_millis(e.0));
                            prop_assert_eq!(v, e.2);
                            now_ms = e.0;
                            model.retain(|m| m.1 != e.1);
                        }
                        (e, g) => prop_assert!(false, "model {e:?} vs queue {g:?}"),
                    }
                }
            }
        }
    }

    /// TCP end-to-end over a pipe with random loss, reordering, and delay:
    /// the receiver must deliver every payload byte exactly once (no gaps,
    /// no duplicates reach the application), and the transfer completes.
    #[test]
    fn tcp_survives_lossy_reordering_pipe(
        seed in any::<u64>(),
        total in 1u64..200_000,
        loss_pct in 0u32..30,
    ) {
        use spider_repro::tcp::{BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig};
        use spider_repro::tcp::Segment;

        let cfg = TcpConfig { max_timeouts: 200, ..TcpConfig::default() };
        let mut sender = BulkSender::new(cfg, 1, total, seed as u32);
        let mut receiver = BulkReceiver::new(1);
        let mut rng = Rng::new(seed);

        // A tiny deterministic event loop: segments in flight with delivery
        // times; timers for the sender.
        let mut now = Instant::ZERO;
        let mut flights: Vec<(Instant, bool, Segment)> = Vec::new(); // (arrival, to_receiver, seg)
        let mut timer: Option<(Instant, u64)> = None;
        let mut delivered = 0u64;

        let push_sender_actions = |acts: Vec<SenderAction>,
                                       now: Instant,
                                       rng: &mut Rng,
                                       flights: &mut Vec<(Instant, bool, Segment)>,
                                       timer: &mut Option<(Instant, u64)>|
         -> bool {
            let mut complete = false;
            for a in acts {
                match a {
                    SenderAction::Transmit(seg) if !rng.chance(loss_pct as f64 / 100.0) => {
                        let delay = Duration::from_millis(rng.range_u64(10, 80));
                        flights.push((now + delay, true, seg));
                    }
                    SenderAction::Transmit(_) => {} // lost
                    SenderAction::ArmTimer { after, token } => *timer = Some((now + after, token)),
                    SenderAction::Complete => complete = true,
                    _ => {}
                }
            }
            complete
        };

        let acts = sender.start(now);
        let mut complete = push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer);

        let mut steps = 0u32;
        while !complete {
            steps += 1;
            prop_assert!(steps < 60_000, "transfer did not converge");
            // Next event: earliest flight or timer.
            let next_flight_at =
                flights.iter().map(|f| f.0).min();
            prop_assert!(
                next_flight_at.is_some() || timer.is_some(),
                "deadlock: no events"
            );
            let take_timer = match (next_flight_at, timer) {
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(f), Some((t, _))) => t <= f,
                (None, None) => unreachable!("asserted above"),
            };
            if take_timer {
                let (t, token) = timer.take().expect("checked");
                now = now.max(t);
                let acts = sender.on_timer(token, now);
                prop_assert!(
                    !sender.is_aborted(),
                    "sender aborted at {loss_pct}% loss"
                );
                complete = push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer)
                    || complete;
            } else {
                let target = next_flight_at.expect("checked");
                let idx = flights
                    .iter()
                    .position(|f| f.0 == target)
                    .expect("min exists");
                let (at, to_receiver, seg) = flights.swap_remove(idx);
                now = now.max(at);
                if to_receiver {
                    for a in receiver.on_segment(&seg, now) {
                        match a {
                            ReceiverAction::Transmit(ack) => {
                                if !rng.chance(loss_pct as f64 / 100.0) {
                                    let delay = Duration::from_millis(rng.range_u64(10, 80));
                                    flights.push((now + delay, false, ack));
                                }
                            }
                            ReceiverAction::Deliver { bytes } => delivered += bytes,
                            ReceiverAction::Finished => {}
                        }
                    }
                } else {
                    let acts = sender.on_segment(&seg, now);
                    complete =
                        push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer)
                            || complete;
                }
            }
        }
        // Exactly-once delivery of the whole stream.
        prop_assert_eq!(delivered, total, "delivered bytes mismatch");
        prop_assert_eq!(receiver.delivered(), total);
        prop_assert!(receiver.is_finished());
    }
}
