//! Property-based tests on the workspace's core invariants — wire-format
//! round-trips, sequence arithmetic, statistics estimators, geometry, and
//! protocol state machines under arbitrary inputs — driven by the in-tree
//! `sim_engine::check` harness (seeded generation, shrink-by-halving,
//! `SPIDER_PROP_REPLAY` for failure replay).

use sim_engine::check::{check, check_with, Config, Gen};
use sim_engine::{prop_assert, prop_assert_eq};

use spider_repro::dhcp::{DhcpMessage, MessageType};
use spider_repro::engine::{Duration, Instant, Rng, Samples, Summary};
use spider_repro::mobility::{Point, Route};
use spider_repro::model::JoinModelParams;
use spider_repro::tcp::{segment::Segment, seq::SeqNum};
use spider_repro::wifi::frame::{Frame, FrameBody, Ssid};
use spider_repro::wifi::{Channel, MacAddr, PhyConfig};

// ---------------------------------------------------------------- frames

fn gen_mac(g: &mut Gen) -> MacAddr {
    let mut octets = [0u8; 6];
    g.fill(&mut octets);
    MacAddr(octets)
}

fn gen_ssid(g: &mut Gen) -> Ssid {
    Ssid::from_bytes(&g.bytes(0, 33)).expect("≤32 bytes")
}

fn gen_channel(g: &mut Gen) -> Channel {
    Channel::from_number(g.u32_in(1, 15) as u8)
}

#[test]
fn beacon_frames_roundtrip() {
    check("beacon_frames_roundtrip", |g| {
        let mut f = Frame::beacon(gen_mac(g), gen_ssid(g), gen_channel(g), g.u64());
        f.seq = g.u32_in(0, 0x0FFF) as u16;
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        Ok(())
    });
}

#[test]
fn data_frames_roundtrip() {
    check("data_frames_roundtrip", |g| {
        let mut f = Frame::data_to_ap(gen_mac(g), gen_mac(g), g.bytes(0, 512).into());
        f.power_mgmt = g.bool();
        f.more_data = g.bool();
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        Ok(())
    });
}

#[test]
fn frame_decode_never_panics() {
    check("frame_decode_never_panics", |g| {
        let bytes = g.bytes(0, 256);
        let _ = Frame::decode(&bytes); // may Err, must not panic
        Ok(())
    });
}

#[test]
fn frame_decode_survives_truncation() {
    check("frame_decode_survives_truncation", |g| {
        let mut f = Frame::beacon(gen_mac(g), gen_ssid(g), gen_channel(g), g.u64());
        f.seq = g.u32_in(0, 0x0FFF) as u16;
        let encoded = f.encode();
        // Every strict prefix must decode to an error, never panic or
        // yield a frame that round-trips differently.
        let cut = g.usize_in(0, encoded.len());
        prop_assert!(
            Frame::decode(&encoded[..cut]).is_err(),
            "truncated beacon at {cut}/{} decoded",
            encoded.len()
        );
        Ok(())
    });
}

#[test]
fn psm_control_frames_roundtrip() {
    check("psm_control_frames_roundtrip", |g| {
        let (sta, bssid) = (gen_mac(g), gen_mac(g));
        let aid = g.u32_in(0, 0x3FFF) as u16;
        let enter = Frame::psm_enter(sta, bssid);
        prop_assert_eq!(Frame::decode(&enter.encode()).unwrap(), enter);
        let poll = Frame::ps_poll(sta, bssid, aid);
        let decoded = Frame::decode(&poll.encode()).unwrap();
        prop_assert_eq!(decoded.body, FrameBody::PsPoll { aid });
        Ok(())
    });
}

// ---------------------------------------------------------------- dhcp

#[test]
fn dhcp_messages_roundtrip() {
    check("dhcp_messages_roundtrip", |g| {
        let xid = g.u32();
        let mut chaddr = [0u8; 6];
        g.fill(&mut chaddr);
        let ip = std::net::Ipv4Addr::from(g.u32().to_be_bytes());
        let server = std::net::Ipv4Addr::from(g.u32().to_be_bytes());
        let lease = g.u32_in(1, 86_400);
        let msg = match g.usize_in(0, 4) {
            0 => DhcpMessage::discover(xid, chaddr),
            1 => DhcpMessage::offer(xid, chaddr, ip, server, lease),
            2 => DhcpMessage::request(xid, chaddr, ip, server),
            _ => DhcpMessage::ack(xid, chaddr, ip, server, lease),
        };
        let decoded = DhcpMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
        Ok(())
    });
}

#[test]
fn dhcp_decode_never_panics() {
    check("dhcp_decode_never_panics", |g| {
        let bytes = g.bytes(0, 512);
        let _ = DhcpMessage::decode(&bytes);
        Ok(())
    });
}

#[test]
fn dhcp_decode_survives_truncation() {
    check("dhcp_decode_survives_truncation", |g| {
        let mut chaddr = [0u8; 6];
        g.fill(&mut chaddr);
        let ip = std::net::Ipv4Addr::new(10, 0, 0, 50);
        let srv = std::net::Ipv4Addr::new(10, 0, 0, 1);
        let encoded = DhcpMessage::offer(g.u32(), chaddr, ip, srv, 3600).encode();
        // Truncation may still parse (e.g. only trailing pad/END options are
        // cut), but it must never panic, and whatever parses must be
        // self-consistent: re-encoding it round-trips.
        let cut = g.usize_in(0, encoded.len());
        if let Ok(m) = DhcpMessage::decode(&encoded[..cut]) {
            prop_assert_eq!(DhcpMessage::decode(&m.encode()).unwrap(), m);
        }
        // Cutting inside the fixed BOOTP header always fails.
        let header_cut = g.usize_in(0, 236);
        prop_assert!(
            DhcpMessage::decode(&encoded[..header_cut]).is_err(),
            "header truncated at {header_cut} decoded"
        );
        Ok(())
    });
}

#[test]
fn dhcp_type_is_preserved() {
    check("dhcp_type_is_preserved", |g| {
        let mut chaddr = [0u8; 6];
        g.fill(&mut chaddr);
        let d = DhcpMessage::discover(g.u32(), chaddr);
        prop_assert_eq!(
            DhcpMessage::decode(&d.encode()).unwrap().msg_type,
            MessageType::Discover
        );
        Ok(())
    });
}

// ---------------------------------------------------------------- tcp

#[test]
fn seqnum_ordering_is_antisymmetric() {
    check("seqnum_ordering_is_antisymmetric", |g| {
        let x = SeqNum::new(g.u32());
        let delta = g.u32_in(1, 1 << 30);
        let y = x + delta;
        prop_assert!(x < y);
        prop_assert!(y > x);
        prop_assert_eq!(y - x, delta);
        Ok(())
    });
}

#[test]
fn seqnum_within_respects_bounds() {
    check("seqnum_within_respects_bounds", |g| {
        let s = SeqNum::new(g.u32());
        let len = g.u32_in(1, 1 << 20);
        let off = g.u32_in(0, 1 << 20);
        let p = s + off;
        prop_assert_eq!(p.within(s, len), off < len);
        Ok(())
    });
}

#[test]
fn segments_roundtrip() {
    check("segments_roundtrip", |g| {
        let mut seg = Segment::data(g.u64(), SeqNum::new(g.u32()), g.u32_in(0, 65_536));
        seg.ts_us = g.u64();
        prop_assert_eq!(Segment::decode(&seg.encode()), Some(seg));
        Ok(())
    });
}

#[test]
fn segments_with_sack_roundtrip() {
    check("segments_with_sack_roundtrip", |g| {
        let mut seg = Segment::ack_only(g.u64(), SeqNum::new(1), SeqNum::new(g.u32()));
        let blocks = g.vec(0, 4, |g| (SeqNum::new(g.u32()), g.u32_in(1, 100_000)));
        for (slot, block) in seg.sack.iter_mut().zip(blocks) {
            *slot = Some(block);
        }
        seg.ts_echo_us = g.option(|g| g.u64());
        prop_assert_eq!(Segment::decode(&seg.encode()), Some(seg));
        Ok(())
    });
}

#[test]
fn segment_decode_never_panics() {
    check("segment_decode_never_panics", |g| {
        let bytes = g.bytes(0, 128);
        let _ = Segment::decode(&bytes);
        Ok(())
    });
}

#[test]
fn segment_decode_survives_truncation() {
    check("segment_decode_survives_truncation", |g| {
        let mut seg = Segment::data(g.u64(), SeqNum::new(g.u32()), g.u32_in(0, 65_536));
        seg.ts_echo_us = g.option(|g| g.u64());
        let encoded = seg.encode();
        let cut = g.usize_in(0, encoded.len());
        prop_assert_eq!(Segment::decode(&encoded[..cut]), None);
        Ok(())
    });
}

// ---------------------------------------------------------------- engine

#[test]
fn summary_mean_is_bounded_by_extremes() {
    check("summary_mean_is_bounded_by_extremes", |g| {
        let values = g.vec(1, 200, |g| g.f64_in(-1e6, 1e6));
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
        Ok(())
    });
}

#[test]
fn quantiles_are_monotone() {
    check("quantiles_are_monotone", |g| {
        let values = g.vec(2, 200, |g| g.f64_in(-1e6, 1e6));
        let mut s = Samples::new();
        for &v in &values {
            s.record(v);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0);
            prop_assert!(q >= last - 1e-9, "quantiles must be monotone");
            last = q;
        }
        Ok(())
    });
}

#[test]
fn rng_below_is_always_in_range() {
    check("rng_below_is_always_in_range", |g| {
        let mut rng = Rng::new(g.u64());
        let n = g.u64_in(1, 1_000_000);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
        Ok(())
    });
}

#[test]
fn duration_roundtrip_secs() {
    check("duration_roundtrip_secs", |g| {
        let d = Duration::from_millis(g.u64_in(0, 10_000_000));
        let back = Duration::from_secs_f64(d.as_secs_f64());
        // Round-trip through f64 is exact at millisecond granularity here.
        prop_assert_eq!(back, d);
        Ok(())
    });
}

// ---------------------------------------------------------------- mobility

#[test]
fn route_positions_lie_on_or_near_route() {
    check("route_positions_lie_on_or_near_route", |g| {
        let w = g.f64_in(50.0, 2_000.0);
        let h = g.f64_in(50.0, 2_000.0);
        let d = g.f64_in(0.0, 50_000.0);
        let r = Route::rectangle(w, h);
        let p = r.position_at_distance(d);
        // Every point on the rectangle has x ∈ [0, w], y ∈ [0, h].
        prop_assert!((-1e-6..=w + 1e-6).contains(&p.x));
        prop_assert!((-1e-6..=h + 1e-6).contains(&p.y));
        Ok(())
    });
}

#[test]
fn route_distance_is_periodic() {
    check("route_distance_is_periodic", |g| {
        let w = g.f64_in(50.0, 500.0);
        let h = g.f64_in(50.0, 500.0);
        let d = g.f64_in(0.0, 5_000.0);
        let r = Route::rectangle(w, h);
        let a = r.position_at_distance(d);
        let b = r.position_at_distance(d + r.length());
        prop_assert!(a.distance(b) < 1e-6);
        Ok(())
    });
}

#[test]
fn point_distance_is_a_metric() {
    check("point_distance_is_a_metric", |g| {
        let coord = |g: &mut Gen| g.f64_in(-1e4, 1e4);
        let a = Point::new(coord(g), coord(g));
        let b = Point::new(coord(g), coord(g));
        let c = Point::new(coord(g), coord(g));
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
        prop_assert!(a.distance(a) < 1e-12);
        Ok(())
    });
}

// ---------------------------------------------------------------- models

#[test]
fn join_probability_is_a_probability() {
    check("join_probability_is_a_probability", |g| {
        let f = g.f64_in(0.0, 1.0);
        let beta_max = g.f64_in(0.6, 12.0);
        let t = g.f64_in(0.0, 20.0);
        let p = JoinModelParams::figure2(f, beta_max).p_join(t);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        Ok(())
    });
}

#[test]
fn phy_delivery_probabilities_valid() {
    check("phy_delivery_probabilities_valid", |g| {
        let d = g.f64_in(0.0, 2_000.0);
        let len = g.usize_in(1, 3_000);
        let phy = PhyConfig::default();
        let m = phy.mgmt_delivery_prob(d, len);
        let dd = phy.data_delivery_prob(d, len);
        prop_assert!((0.0..=1.0).contains(&m));
        prop_assert!((0.0..=1.0).contains(&dd));
        prop_assert!(dd >= m - 1e-12, "ARQ can only help");
        Ok(())
    });
}

#[test]
fn phy_airtime_monotone_in_length() {
    check("phy_airtime_monotone_in_length", |g| {
        let d = g.f64_in(1.0, 300.0);
        let len = g.usize_in(1, 1_400);
        let phy = PhyConfig::default();
        prop_assert!(phy.airtime(len + 100) > phy.airtime(len));
        prop_assert!(phy.expected_data_airtime(d, len) >= phy.airtime(len));
        Ok(())
    });
}

// ---------------------------------------------------------------- reports

fn gen_report_f64(g: &mut Gen) -> f64 {
    // Mix magnitudes: zeros, subnormal-adjacent, huge, and everyday values
    // all must survive the lossless record round-trip.
    match g.usize_in(0, 5) {
        0 => 0.0,
        1 => g.f64_in(-1.0, 1.0) * 1e-300,
        2 => g.f64_in(-1e18, 1e18),
        _ => g.f64_in(-1e6, 1e6),
    }
}

fn gen_samples(g: &mut Gen) -> Samples {
    let mut s = Samples::new();
    for _ in 0..g.usize_in(0, 20) {
        s.record(gen_report_f64(g));
    }
    s
}

fn gen_run_result(g: &mut Gen) -> spider_repro::spider::RunResult {
    spider_repro::spider::RunResult {
        duration: Duration::from_nanos(g.u64()),
        total_bytes: g.u64(),
        avg_throughput_bps: gen_report_f64(g),
        connectivity: g.f64_in(0.0, 1.0),
        connection_durations: gen_samples(g),
        disruption_durations: gen_samples(g),
        instantaneous_bandwidth: gen_samples(g),
        assoc_times: gen_samples(g),
        join_times: gen_samples(g),
        switch_latencies: gen_samples(g),
        dhcp_attempts: g.u64(),
        dhcp_failures: g.u64(),
        assoc_attempts: g.u64(),
        assoc_failures: g.u64(),
        switch_count: g.u64(),
        max_concurrent_aps: g.usize_in(0, 64),
        concurrency_seconds: g.vec(0, 8, |g| g.f64_in(0.0, 1e5)),
        tcp_rtos: g.u64(),
        backhaul_drops: g.u64(),
        psm_drops: g.u64(),
        unassociated_drops: g.u64(),
        air_drops: g.u64(),
        per_client: g.vec(1, 4, |g| spider_repro::spider::ClientCounters {
            joins: g.u64(),
            bytes: g.u64(),
            cell_crossings: g.u64(),
        }),
    }
}

/// The campaign cache's contract: a `RunRecord` round-trip is lossless —
/// serializing the reconstructed run reproduces the exact same bytes.
#[test]
fn run_records_roundtrip_losslessly() {
    use spider_repro::spider::RunRecord;
    check("run_records_roundtrip_losslessly", |g| {
        let result = gen_run_result(g);
        let json = RunRecord::to_json(&result).expect("finite by construction");
        let back = RunRecord::from_json(&json).map_err(|e| format!("parse: {e}"))?;
        prop_assert_eq!(RunRecord::to_json(&back).unwrap(), json);
        prop_assert_eq!(back.total_bytes, result.total_bytes);
        prop_assert_eq!(back.duration, result.duration);
        prop_assert_eq!(back.join_times.values(), result.join_times.values());
        Ok(())
    });
}

/// Any strict prefix of a record is rejected (the parser never panics and
/// never accepts a torn cache file as a complete run).
#[test]
fn run_record_parser_rejects_truncation() {
    use spider_repro::spider::RunRecord;
    check("run_record_parser_rejects_truncation", |g| {
        let json = RunRecord::to_json(&gen_run_result(g)).unwrap();
        let cut = g.usize_in(0, json.len() - 1);
        prop_assert!(
            RunRecord::from_json(&json[..cut]).is_err(),
            "truncated record at {cut}/{} parsed",
            json.len()
        );
        Ok(())
    });
}

/// Mutating any numeric field of a serialized record into an overflowing
/// token is rejected with the typed non-finite error, for records and
/// summary reports alike.
#[test]
fn serialized_reports_reject_nonfinite_mutations() {
    use spider_repro::spider::{Report, ReportParseError, RunRecord};
    check("serialized_reports_reject_nonfinite_mutations", |g| {
        let result = gen_run_result(g);
        let json = RunRecord::to_json(&result).unwrap();
        // Pick one "key": position and replace its numeric value in place.
        let colons: Vec<usize> = json
            .char_indices()
            .filter(|&(i, c)| {
                c == ':' && json[i + 1..].starts_with(|c: char| c == '-' || c.is_ascii_digit())
            })
            .map(|(i, _)| i + 1)
            .collect();
        prop_assert!(!colons.is_empty());
        let start = colons[g.usize_in(0, colons.len() - 1)];
        let end = start
            + json[start..]
                .find([',', '}', ']'])
                .expect("number is followed by a delimiter");
        let mutated = format!("{}1e999{}", &json[..start], &json[end..]);
        prop_assert!(matches!(
            RunRecord::from_json(&mutated),
            Err(ReportParseError::NonFinite)
        ));

        // The 6-decimal summary report enforces the same rule.
        let report = Report::from_run(&result);
        let rjson = report.to_json();
        let poisoned = rjson.replacen(char::is_numeric, "1e999", 1);
        if poisoned != rjson {
            prop_assert!(Report::from_json(&poisoned).is_err());
        }
        Ok(())
    });
}

// ------------------------------------------------- protocol state machines

/// The DHCP client survives arbitrary (well-formed) message storms without
/// panicking and without binding to mismatched transactions.
#[test]
fn dhcp_client_is_storm_proof() {
    check("dhcp_client_is_storm_proof", |g| {
        use spider_repro::dhcp::{DhcpClient, DhcpClientConfig};
        let mut c = DhcpClient::new(DhcpClientConfig::default(), [2, 0, 0, 0, 0, 1], 1);
        c.start(Instant::ZERO, None);
        let ip = std::net::Ipv4Addr::new(10, 0, 0, 50);
        let srv = std::net::Ipv4Addr::new(10, 0, 0, 1);
        let mut now = Instant::ZERO;
        let msgs = g.vec(0, 60, |g| {
            let mut chaddr = [0u8; 6];
            g.fill(&mut chaddr);
            (g.usize_in(0, 5), g.u32(), chaddr)
        });
        for (kind, xid, chaddr) in msgs {
            now += Duration::from_millis(10);
            let m = match kind {
                0 => DhcpMessage::offer(xid, chaddr, ip, srv, 60),
                1 => DhcpMessage::ack(xid, chaddr, ip, srv, 60),
                2 => DhcpMessage::nak(xid, chaddr, srv),
                3 => DhcpMessage::discover(xid, chaddr),
                _ => DhcpMessage::request(xid, chaddr, ip, srv),
            };
            let _ = c.handle_message(&m, now);
        }
        // If it bound, the lease must be internally consistent.
        if let Some(lease) = c.lease() {
            prop_assert_eq!(lease.ip, ip);
            prop_assert!(lease.expires > now);
        }
        Ok(())
    });
}

// ------------------------------------------------ stateful model checks

/// The event queue agrees with a sorted-vector reference model under
/// arbitrary interleavings of pushes, pops, and cancellations.
#[test]
fn event_queue_matches_reference_model() {
    check("event_queue_matches_reference_model", |g| {
        use spider_repro::engine::EventQueue;
        let ops = g.vec(1, 200, |g| (g.usize_in(0, 4), g.u64_in(0, 1_000)));
        let mut q: EventQueue<u64> = EventQueue::new();
        // Reference: Vec of (time_ms, insertion_seq, value, cancelled).
        let mut model: Vec<(u64, u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        // Handles whose events already fired or were cancelled: cancelling
        // one must be a no-op even after its slot has been recycled by a
        // later push (the generation tag defeats ABA aliasing).
        let mut stale_ids = Vec::new();
        let mut seq = 0u64;
        let mut now_ms = 0u64;
        for (op, arg) in ops {
            match op {
                0 => {
                    // Push at now + arg.
                    let t = now_ms + arg;
                    let id = q.push(Instant::from_millis(t), seq);
                    ids.push((id, seq));
                    model.push((t, seq, seq, false));
                    seq += 1;
                }
                1 => {
                    // Cancel a random-ish live id.
                    if !ids.is_empty() {
                        let (id, s) = ids.swap_remove((arg as usize) % ids.len());
                        q.cancel(id);
                        stale_ids.push(id);
                        if let Some(e) = model.iter_mut().find(|e| e.1 == s) {
                            e.3 = true;
                        }
                    }
                }
                2 => {
                    // Re-cancel a stale id: its event popped or was already
                    // cancelled, and its slot may since have been recycled
                    // for a live event above. Nothing may change.
                    if !stale_ids.is_empty() {
                        q.cancel(stale_ids[(arg as usize) % stale_ids.len()]);
                    }
                }
                _ => {
                    // Pop once; must match the earliest live model entry.
                    let expected = model
                        .iter()
                        .filter(|e| !e.3)
                        .min_by_key(|e| (e.0, e.1))
                        .cloned();
                    let got = q.pop();
                    match (expected, got) {
                        (None, None) => {}
                        (Some(e), Some((at, v))) => {
                            prop_assert_eq!(at, Instant::from_millis(e.0));
                            prop_assert_eq!(v, e.2);
                            now_ms = e.0;
                            model.retain(|m| m.1 != e.1);
                            ids.retain(|(_, s)| *s != e.1);
                            // The popped handle is now stale too.
                            // (Finding it costs nothing the model didn't
                            // already pay.)
                        }
                        (e, got) => return Err(format!("model {e:?} vs queue {got:?}")),
                    }
                }
            }
            // After every op the queue's live count and non-draining peek
            // must agree with the model exactly.
            let live: Vec<&(u64, u64, u64, bool)> = model.iter().filter(|e| !e.3).collect();
            prop_assert_eq!(q.live_len(), live.len());
            let next = live.iter().map(|e| e.0).min().map(Instant::from_millis);
            prop_assert_eq!(q.next_live_time(), next);
        }
        Ok(())
    });
}

/// TCP end-to-end over a pipe with random loss, reordering, and delay: the
/// receiver must deliver every payload byte exactly once (no gaps, no
/// duplicates reach the application), and the transfer completes.
#[test]
fn tcp_survives_lossy_reordering_pipe() {
    check_with(
        "tcp_survives_lossy_reordering_pipe",
        Config::cases(32),
        |g| {
            use spider_repro::tcp::Segment;
            use spider_repro::tcp::{
                BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig,
            };

            let seed = g.u64();
            let total = g.u64_in(1, 200_000);
            let loss_pct = g.u32_in(0, 30);

            let cfg = TcpConfig {
                max_timeouts: 200,
                ..TcpConfig::default()
            };
            let mut sender = BulkSender::new(cfg, 1, total, seed as u32);
            let mut receiver = BulkReceiver::new(1);
            let mut rng = Rng::new(seed);

            // A tiny deterministic event loop: segments in flight with delivery
            // times; timers for the sender.
            let mut now = Instant::ZERO;
            let mut flights: Vec<(Instant, bool, Segment)> = Vec::new(); // (arrival, to_receiver, seg)
            let mut timer: Option<(Instant, u64)> = None;
            let mut delivered = 0u64;

            let push_sender_actions = |acts: Vec<SenderAction>,
                                       now: Instant,
                                       rng: &mut Rng,
                                       flights: &mut Vec<(Instant, bool, Segment)>,
                                       timer: &mut Option<(Instant, u64)>|
             -> bool {
                let mut complete = false;
                for a in acts {
                    match a {
                        SenderAction::Transmit(seg) if !rng.chance(loss_pct as f64 / 100.0) => {
                            let delay = Duration::from_millis(rng.range_u64(10, 80));
                            flights.push((now + delay, true, seg));
                        }
                        SenderAction::Transmit(_) => {} // lost
                        SenderAction::ArmTimer { after, token } => {
                            *timer = Some((now + after, token))
                        }
                        SenderAction::Complete => complete = true,
                        _ => {}
                    }
                }
                complete
            };

            let acts = sender.start(now);
            let mut complete = push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer);

            let mut steps = 0u32;
            while !complete {
                steps += 1;
                prop_assert!(steps < 60_000, "transfer did not converge");
                // Next event: earliest flight or timer.
                let next_flight_at = flights.iter().map(|f| f.0).min();
                prop_assert!(
                    next_flight_at.is_some() || timer.is_some(),
                    "deadlock: no events"
                );
                let take_timer = match (next_flight_at, timer) {
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                    (Some(f), Some((t, _))) => t <= f,
                    (None, None) => unreachable!("asserted above"),
                };
                if take_timer {
                    let (t, token) = timer.take().expect("checked");
                    now = now.max(t);
                    let acts = sender.on_timer(token, now);
                    prop_assert!(!sender.is_aborted(), "sender aborted at {loss_pct}% loss");
                    complete = push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer)
                        || complete;
                } else {
                    let target = next_flight_at.expect("checked");
                    let idx = flights
                        .iter()
                        .position(|f| f.0 == target)
                        .expect("min exists");
                    let (at, to_receiver, seg) = flights.swap_remove(idx);
                    now = now.max(at);
                    if to_receiver {
                        for a in receiver.on_segment(&seg, now) {
                            match a {
                                ReceiverAction::Transmit(ack) => {
                                    if !rng.chance(loss_pct as f64 / 100.0) {
                                        let delay = Duration::from_millis(rng.range_u64(10, 80));
                                        flights.push((now + delay, false, ack));
                                    }
                                }
                                ReceiverAction::Deliver { bytes } => delivered += bytes,
                                ReceiverAction::Finished => {}
                            }
                        }
                    } else {
                        let acts = sender.on_segment(&seg, now);
                        complete =
                            push_sender_actions(acts, now, &mut rng, &mut flights, &mut timer)
                                || complete;
                    }
                }
            }
            // Exactly-once delivery of the whole stream.
            prop_assert_eq!(delivered, total, "delivered bytes mismatch");
            prop_assert_eq!(receiver.delivered(), total);
            prop_assert!(receiver.is_finished());
            Ok(())
        },
    );
}

// ------------------------------------------------- wire_len vs encoding

/// `wire_len` must agree with the encoder for every frame shape: the hot
/// path sizes airtime and backhaul transmissions arithmetically, without
/// serializing, so a drift between the two silently changes event timing.
#[test]
fn frame_wire_len_matches_encoding() {
    use spider_repro::engine::wire::Bytes;
    use spider_repro::wifi::frame::{AssocReqBody, AssocRespBody, AuthBody};

    check("frame_wire_len_matches_encoding", |g| {
        let a = gen_mac(g);
        let b = gen_mac(g);
        let body = match g.usize_in(0, 11) {
            0 => Frame::beacon(a, gen_ssid(g), gen_channel(g), g.u64()).body,
            1 => FrameBody::ProbeReq { ssid: gen_ssid(g) },
            2 => Frame::probe_response(a, b, gen_ssid(g), gen_channel(g), g.u64()).body,
            3 => FrameBody::Auth(AuthBody {
                algorithm: g.u32_in(0, 3) as u16,
                transaction: g.u32_in(1, 2) as u16,
                status: g.u32_in(0, 60) as u16,
            }),
            4 => FrameBody::AssocReq(AssocReqBody {
                capability: g.u32() as u16,
                listen_interval: g.u32() as u16,
                ssid: gen_ssid(g),
            }),
            5 => FrameBody::AssocResp(AssocRespBody {
                capability: g.u32() as u16,
                status: g.u32_in(0, 60) as u16,
                aid: g.u32_in(0, 2007) as u16,
            }),
            6 => FrameBody::Disassoc {
                reason: g.u32_in(0, 99) as u16,
            },
            7 => FrameBody::Deauth {
                reason: g.u32_in(0, 99) as u16,
            },
            8 => FrameBody::Data(Bytes::copy_from_slice(&g.bytes(0, 1500))),
            9 => FrameBody::Null,
            10 => FrameBody::PsPoll {
                aid: g.u32_in(0, 2007) as u16,
            },
            _ => FrameBody::Ack,
        };
        let mut f = Frame::new(a, b, gen_mac(g), body);
        f.seq = g.u32_in(0, 0x0FFF) as u16;
        f.duration = g.u32() as u16;
        f.power_mgmt = g.bool();
        f.more_data = g.bool();
        f.retry = g.bool();
        f.to_ds = g.bool();
        f.from_ds = g.bool();
        prop_assert_eq!(f.wire_len(), f.encode().len());
        Ok(())
    });
}

/// Same contract for DHCP: the join pipeline budgets airtime from
/// `wire_len` and only serializes when a frame actually departs.
#[test]
fn dhcp_wire_len_matches_encoding() {
    check("dhcp_wire_len_matches_encoding", |g| {
        let xid = g.u32();
        let mut chaddr = [0u8; 6];
        g.fill(&mut chaddr);
        let ip = std::net::Ipv4Addr::from(g.u32().to_be_bytes());
        let server = std::net::Ipv4Addr::from(g.u32().to_be_bytes());
        let lease = g.u32_in(1, 86_400);
        let msg = match g.usize_in(0, 4) {
            0 => DhcpMessage::discover(xid, chaddr),
            1 => DhcpMessage::offer(xid, chaddr, ip, server, lease),
            2 => DhcpMessage::request(xid, chaddr, ip, server),
            3 => DhcpMessage::nak(xid, chaddr, server),
            _ => DhcpMessage::ack(xid, chaddr, ip, server, lease),
        };
        prop_assert_eq!(msg.wire_len(), msg.encode().len());
        Ok(())
    });
}

/// TCP segments carry a *virtual* payload: `wire_len` models link
/// occupancy (header overhead + payload length) while `encode` emits a
/// compact control record without payload bytes. The invariant the pipes
/// depend on is that `wire_len` survives the encode/decode round-trip —
/// both ends of a backhaul link must charge the same occupancy — and
/// that the header overhead is a constant independent of segment shape.
#[test]
fn segment_wire_len_survives_roundtrip() {
    check("segment_wire_len_survives_roundtrip", |g| {
        let mut sack = [None; 3];
        for slot in sack.iter_mut().take(g.usize_in(0, 3)) {
            *slot = Some((SeqNum::new(g.u32()), g.u32_in(1, 65_535)));
        }
        let seg = Segment {
            conn: g.u64(),
            seq: SeqNum::new(g.u32()),
            ack: g.bool().then(|| SeqNum::new(g.u32())),
            len: g.u32_in(0, 65_535),
            syn: g.bool(),
            fin: g.bool(),
            sack,
            ts_us: g.u64(),
            ts_echo_us: g.bool().then(|| g.u64()),
        };
        let decoded = Segment::decode(&seg.encode()).unwrap();
        prop_assert_eq!(decoded.wire_len(), seg.wire_len());
        prop_assert_eq!(
            seg.wire_len() - seg.len,
            spider_repro::tcp::segment::HEADER_OVERHEAD
        );
        Ok(())
    });
}

// ---------------------------------------------------- world-config codec

use spider_repro::campaign::hash::shard_hash;
use spider_repro::mobility::{ApSite, SpeedProfile, Vehicle};
use spider_repro::spider::codec::{decode_world, encode_world};
use spider_repro::spider::{ClientMotion, SelectionPolicy, SpiderConfig, WorldConfig};
use spider_repro::traffic::DownloadPlan;

fn gen_site(g: &mut Gen, id: u32) -> ApSite {
    ApSite {
        id,
        position: Point::new(g.f64_in(-500.0, 500.0), g.f64_in(-500.0, 500.0)),
        channel: gen_channel(g),
        backhaul_bps: g.u64_in(100_000, 20_000_000),
        dhcp_delay_min: Duration::from_millis(g.u64_in(1, 100)),
        dhcp_delay_max: Duration::from_millis(g.u64_in(100, 400)),
    }
}

fn gen_motion(g: &mut Gen) -> ClientMotion {
    if g.bool() {
        return ClientMotion::Fixed(Point::new(g.f64_in(-100.0, 100.0), g.f64_in(-100.0, 100.0)));
    }
    let route = if g.bool() {
        Route::rectangle(g.f64_in(100.0, 1_000.0), g.f64_in(100.0, 600.0))
    } else {
        // The x-range keeps the route length strictly positive.
        Route::straight(
            Point::new(0.0, 0.0),
            Point::new(g.f64_in(10.0, 2_000.0), g.f64_in(-50.0, 50.0)),
        )
    };
    let departed = Instant::from_nanos(g.u64_in(0, 1_000_000_000));
    let vehicle = if g.bool() {
        Vehicle::new(route, g.f64_in(1.0, 30.0), departed)
    } else {
        Vehicle::with_profile(
            route,
            SpeedProfile::StopAndGo {
                cruise: g.f64_in(1.0, 30.0),
                stop_every: g.f64_in(50.0, 500.0),
                stop_for: g.f64_in(0.0, 30.0),
            },
            departed,
        )
    };
    ClientMotion::Route(vehicle)
}

fn gen_spider(g: &mut Gen) -> SpiderConfig {
    // One preset per schedule variant, then mutate the scalar knobs.
    let mut s = match g.u32_in(0, 4) {
        0 => SpiderConfig::single_channel_multi_ap(gen_channel(g)),
        1 => SpiderConfig::multi_channel_multi_ap(Duration::from_millis(g.u64_in(50, 500))),
        2 => SpiderConfig::stock_madwifi(),
        _ => SpiderConfig::adaptive_channel(),
    };
    s.max_ifaces = g.usize_in(1, 5);
    s.single_ap = g.bool();
    s.lease_cache = g.bool();
    s.selection = if g.bool() {
        SelectionPolicy::JoinHistory
    } else {
        SelectionPolicy::BestRssi
    };
    s.min_join_rssi_dbm = g.f64_in(-95.0, -60.0);
    s.ap_loss_timeout = Duration::from_millis(g.u64_in(100, 5_000));
    s.join_setup_delay = Duration::from_millis(g.u64_in(0, 200));
    s
}

fn gen_world(g: &mut Gen) -> WorldConfig {
    let sites = (0..g.len_in(1, 6))
        .map(|i| gen_site(g, i as u32 + 1))
        .collect();
    let mut w = WorldConfig::new(
        g.u64(),
        sites,
        gen_motion(g),
        gen_spider(g),
        Duration::from_secs(g.u64_in(5, 120)),
    );
    w.backhaul_latency = Duration::from_millis(g.u64_in(0, 300));
    w.bytes_per_connection = g.u64_in(1, 1 << 24);
    w.phy.data_retries = g.u32_in(0, 8);
    w.tcp.mss = g.u32_in(500, 1_500);
    if g.bool() {
        w.plan = DownloadPlan::Segmented {
            object_bytes: g.u64_in(1, 1 << 22),
            think: Duration::from_millis(g.u64_in(0, 2_000)),
        };
    }
    w
}

/// The fleet protocol ships `WorldConfig`s to worker processes, and the
/// campaign cache keys shards by the config's `Debug` string — so a codec
/// round-trip must preserve that string exactly (and with it, the shard
/// hash: a drifting codec would silently re-key the cache).
#[test]
fn world_codec_roundtrips_bit_exactly() {
    check("world_codec_roundtrips_bit_exactly", |g| {
        let world = gen_world(g);
        let decoded = decode_world(&encode_world(&world)).expect("decode");
        prop_assert_eq!(format!("{decoded:?}"), format!("{world:?}"));
        prop_assert_eq!(shard_hash(&decoded), shard_hash(&world));
        Ok(())
    });
}

#[test]
fn world_codec_rejects_every_strict_prefix() {
    check("world_codec_rejects_every_strict_prefix", |g| {
        let bytes = encode_world(&gen_world(g));
        let cut = g.usize_in(0, bytes.len());
        prop_assert!(
            decode_world(&bytes[..cut]).is_err(),
            "strict prefix {cut}/{} decoded",
            bytes.len()
        );
        Ok(())
    });
}

// ---------------------------------------------------- metro deployments

use spider_repro::mobility::deployment::ChannelMix;
use spider_repro::mobility::{metro_deployment, metro_route, MetroChannelPlan, MetroConfig};

fn gen_metro_plan(g: &mut Gen) -> MetroChannelPlan {
    match g.u32_in(0, 3) {
        0 => MetroChannelPlan::Single(gen_channel(g)),
        1 => MetroChannelPlan::RoundRobin,
        2 => MetroChannelPlan::GridColor,
        _ => MetroChannelPlan::Mix(ChannelMix::amherst()),
    }
}

fn gen_metro_config(g: &mut Gen) -> MetroConfig {
    // `metro_route` laps the interior rectangle, which needs ≥ 3 blocks
    // per axis; the generator stays above that floor so every config it
    // produces supports both the deployment and the drive.
    MetroConfig {
        blocks_x: g.u32_in(3, 8),
        blocks_y: g.u32_in(3, 8),
        block_m: g.f64_in(40.0, 120.0),
        aps_per_block: g.u32_in(1, 4),
        jitter_m: g.f64_in(0.0, 10.0),
        plan: gen_metro_plan(g),
        ..MetroConfig::downtown()
    }
}

/// Same config + same seed → the same deployment, draw for draw; and
/// every AP lands inside the street grid's jitter-padded bounding box
/// with ids monotone from 0.
#[test]
fn metro_deployment_is_deterministic_and_in_bounds() {
    check("metro_deployment_is_deterministic_and_in_bounds", |g| {
        let cfg = gen_metro_config(g);
        let seed = g.u64();
        let a = metro_deployment(&cfg, &mut Rng::new(seed));
        let b = metro_deployment(&cfg, &mut Rng::new(seed));
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(a.len(), cfg.ap_count());
        let (w, h) = (
            cfg.blocks_x as f64 * cfg.block_m,
            cfg.blocks_y as f64 * cfg.block_m,
        );
        for (i, site) in a.iter().enumerate() {
            prop_assert_eq!(site.id as usize, i);
            prop_assert!(
                site.position.x >= -cfg.jitter_m
                    && site.position.x <= w + cfg.jitter_m
                    && site.position.y >= -cfg.jitter_m
                    && site.position.y <= h + cfg.jitter_m,
                "AP {i} at {:?} escapes the {w}x{h} grid (+{} m jitter)",
                site.position,
                cfg.jitter_m
            );
            prop_assert!(site.dhcp_delay_min < site.dhcp_delay_max);
            prop_assert!((cfg.backhaul_bps_min..cfg.backhaul_bps_max).contains(&site.backhaul_bps));
        }
        Ok(())
    });
}

/// The RNG-fork contract: two configs that differ only in channel plan
/// place the same APs with the same backhaul and DHCP draws — policy
/// sweeps measure the plan, never placement noise.
#[test]
fn metro_placement_is_invariant_under_channel_plan() {
    check("metro_placement_is_invariant_under_channel_plan", |g| {
        let cfg = gen_metro_config(g);
        let seed = g.u64();
        let a = metro_deployment(&cfg, &mut Rng::new(seed));
        let b = metro_deployment(
            &cfg.clone().with_plan(gen_metro_plan(g)),
            &mut Rng::new(seed),
        );
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.position, y.position);
            prop_assert_eq!(x.backhaul_bps, y.backhaul_bps);
            prop_assert_eq!(x.dhcp_delay_min, y.dhcp_delay_min);
            prop_assert_eq!(x.dhcp_delay_max, y.dhcp_delay_max);
        }
        Ok(())
    });
}

/// Metro worlds ride the same fleet/cache rails as every other shard, so
/// a full metro `WorldConfig` (grid deployment + interior drive) must
/// round-trip the world codec bit-exactly, shard hash included.
#[test]
fn metro_worlds_roundtrip_the_world_codec() {
    check("metro_worlds_roundtrip_the_world_codec", |g| {
        let cfg = gen_metro_config(g);
        let sites = metro_deployment(&cfg, &mut Rng::new(g.u64()));
        let vehicle = Vehicle::new(
            metro_route(&cfg),
            g.f64_in(1.0, 30.0),
            Instant::from_nanos(g.u64_in(0, 1_000_000_000)),
        );
        let world = WorldConfig::new(
            g.u64(),
            sites,
            ClientMotion::Route(vehicle),
            gen_spider(g),
            Duration::from_secs(g.u64_in(5, 120)),
        );
        let decoded = decode_world(&encode_world(&world)).expect("decode");
        prop_assert_eq!(format!("{decoded:?}"), format!("{world:?}"));
        prop_assert_eq!(shard_hash(&decoded), shard_hash(&world));
        Ok(())
    });
}
