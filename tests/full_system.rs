//! Cross-crate integration tests: drive the complete system through the
//! root facade crate the way a downstream user would, and check the
//! paper's qualitative claims end-to-end.

use spider_repro::engine::{Duration, Instant, Rng};
use spider_repro::mobility::{
    deploy_along, deploy_evenly, ChannelMix, DeploymentConfig, Point, Route, Vehicle,
};
use spider_repro::spider::{run, ClientMotion, RunResult, SpiderConfig, WorldConfig};
use spider_repro::wifi::Channel;

fn amherst_loop(seed: u64) -> (Route, Vec<spider_repro::mobility::ApSite>) {
    let route = Route::rectangle(1_000.0, 500.0);
    let mut rng = Rng::new(seed);
    let sites = deploy_along(&route, &DeploymentConfig::amherst(), &mut rng);
    (route, sites)
}

fn drive(seed: u64, spider: SpiderConfig, secs: u64) -> RunResult {
    let (route, sites) = amherst_loop(seed);
    let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
    run(WorldConfig::new(
        seed,
        sites,
        ClientMotion::Route(vehicle),
        spider,
        Duration::from_secs(secs),
    ))
}

/// Average over a few seeds to iron out deployment luck.
fn avg_drive(spider: SpiderConfig, secs: u64) -> (f64, f64) {
    let mut tput = 0.0;
    let mut conn = 0.0;
    let seeds = [11u64, 22, 33];
    for &s in &seeds {
        let r = drive(s, spider.clone(), secs);
        tput += r.avg_throughput_kbps();
        conn += r.connectivity;
    }
    (tput / seeds.len() as f64, conn / seeds.len() as f64)
}

#[test]
fn headline_single_channel_multi_ap_beats_single_ap() {
    // Table 2's headline: multi-AP on one channel out-delivers single-AP on
    // the same channel.
    let (multi_tput, _) = avg_drive(SpiderConfig::single_channel_multi_ap(Channel::CH1), 900);
    let (single_tput, _) = avg_drive(SpiderConfig::single_channel_single_ap(Channel::CH1), 900);
    assert!(
        multi_tput > single_tput,
        "multi-AP {multi_tput:.1} KB/s must beat single-AP {single_tput:.1} KB/s"
    );
}

#[test]
fn headline_spider_beats_stock_driver() {
    // §4.4: Spider ≫ stock MadWiFi in both throughput and connectivity.
    // The paper measured 2.5× on throughput; the margin here varies with
    // the deployment draw (see EXPERIMENTS.md — the committed experiment
    // seed lands at ≈3×), so the seed-averaged CI check asserts a strict
    // win on both axes rather than a fixed multiple.
    // Throughput: Spider's throughput configuration (single channel,
    // multi-AP) vs stock. Connectivity: Spider's connectivity
    // configuration (3-channel multi-AP — stock also roams all three
    // channels, so a channel-pinned comparison would be apples-to-oranges
    // on random deployments) vs stock.
    let (spider_tput, _) = avg_drive(SpiderConfig::single_channel_multi_ap(Channel::CH1), 1_200);
    let (_, spider_conn) = avg_drive(
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        1_200,
    );
    let (stock_tput, stock_conn) = avg_drive(SpiderConfig::stock_madwifi(), 1_200);
    assert!(
        spider_tput > 1.05 * stock_tput,
        "Spider {spider_tput:.1} vs stock {stock_tput:.1} KB/s"
    );
    assert!(
        spider_conn > stock_conn,
        "Spider connectivity {spider_conn:.2} vs stock {stock_conn:.2}"
    );
}

#[test]
fn multi_channel_trades_throughput_for_ap_pool() {
    // Table 4's direction: a 3-channel schedule sacrifices throughput
    // relative to the single channel…
    let (one_tput, _) = avg_drive(SpiderConfig::single_channel_multi_ap(Channel::CH1), 900);
    let (three_tput, _) = avg_drive(
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        900,
    );
    assert!(
        one_tput > three_tput,
        "single channel {one_tput:.1} must out-deliver 3-channel {three_tput:.1} KB/s"
    );
    // …while drawing on a much larger AP pool (it joins more APs).
    let one = drive(11, SpiderConfig::single_channel_multi_ap(Channel::CH1), 900);
    let three = drive(
        11,
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        900,
    );
    assert!(
        three.join_times.count() + three.dhcp_failures as usize
            > one.join_times.count() + one.dhcp_failures as usize,
        "3-channel must attempt a larger AP pool"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = drive(
        77,
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        300,
    );
    let b = drive(
        77,
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        300,
    );
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.switch_count, b.switch_count);
    assert_eq!(a.dhcp_attempts, b.dhcp_attempts);
    assert_eq!(a.dhcp_failures, b.dhcp_failures);
    assert_eq!(a.join_times.count(), b.join_times.count());
}

#[test]
fn different_seeds_differ() {
    let a = drive(1, SpiderConfig::single_channel_multi_ap(Channel::CH1), 300);
    let b = drive(2, SpiderConfig::single_channel_multi_ap(Channel::CH1), 300);
    // Different deployments and loss draws: byte counts virtually never tie.
    assert_ne!(a.total_bytes, b.total_bytes);
}

#[test]
fn faster_vehicles_join_less() {
    // §2's core claim, end-to-end: raising speed cuts join success within
    // the same environment and time budget.
    let (route, sites) = amherst_loop(5);
    let joins_at = |speed: f64| {
        let vehicle = Vehicle::new(route.clone(), speed, Instant::ZERO);
        let r = run(WorldConfig::new(
            5,
            sites.clone(),
            ClientMotion::Route(vehicle),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(600),
        ));
        (r.join_times.count(), r.total_bytes)
    };
    let (slow_joins, slow_bytes) = joins_at(5.0);
    let (fast_joins, fast_bytes) = joins_at(25.0);
    assert!(
        slow_bytes > fast_bytes,
        "slow {slow_bytes} bytes must beat fast {fast_bytes}"
    );
    // The fast vehicle passes each AP 5× as often, so its raw join count
    // can exceed the slow one's — but each encounter is 5× shorter, so
    // bytes per join must collapse.
    let slow_per_join = slow_bytes as f64 / slow_joins.max(1) as f64;
    let fast_per_join = fast_bytes as f64 / fast_joins.max(1) as f64;
    assert!(
        fast_per_join < slow_per_join,
        "bytes/join: fast {fast_per_join:.0} vs slow {slow_per_join:.0}"
    );
}

#[test]
fn reduced_timers_join_faster_but_fail_more() {
    // Table 3 / Fig. 11 end-to-end: reduced DHCP timers cut the median join
    // time but raise the failure rate.
    let (route, sites) = amherst_loop(8);
    let run_with = |dhcp: spider_repro::dhcp::DhcpClientConfig| {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.dhcp = dhcp;
        let vehicle = Vehicle::new(route.clone(), 10.0, Instant::ZERO);
        run(WorldConfig::new(
            8,
            sites.clone(),
            ClientMotion::Route(vehicle),
            spider,
            Duration::from_secs(1_800),
        ))
    };
    let reduced = run_with(spider_repro::dhcp::DhcpClientConfig::reduced(
        Duration::from_millis(200),
    ));
    let stock = run_with(spider_repro::dhcp::DhcpClientConfig::default());
    assert!(
        reduced.join_times.count() >= 3 && stock.join_times.count() >= 3,
        "need join samples: reduced {} stock {}",
        reduced.join_times.count(),
        stock.join_times.count()
    );
    // The crisp, robust consequence of the timer policy over a whole drive:
    // the stock client's 60 s idle-on-fail caps how often it can even try,
    // while the reduced client retries immediately.
    assert!(
        reduced.dhcp_attempts >= stock.dhcp_attempts,
        "reduced attempts {} vs stock {}",
        reduced.dhcp_attempts,
        stock.dhcp_attempts
    );
    // And successful joins under reduced timers stay competitive (Fig. 6's
    // median shift only appears under heavy handshake loss; on clean links
    // the server's β dominates both).
    let reduced_median = reduced.join_times.clone().median();
    let stock_median = stock.join_times.clone().median();
    assert!(
        reduced_median <= stock_median + 1.0,
        "reduced timers median {reduced_median:.2}s vs stock {stock_median:.2}s"
    );
}

#[test]
fn controlled_two_ap_lab_doubles_throughput() {
    // The Fig. 9 anchor via the facade: two same-channel APs ≈ 2× one.
    let road = Route::straight(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
    let mut rng = Rng::new(3);
    let mut dep = DeploymentConfig::amherst();
    dep.channel_mix = ChannelMix::single(Channel::CH1);
    dep.backhaul_bps_min = 2_000_000;
    dep.backhaul_bps_max = 2_000_001;
    let one_site = deploy_evenly(&road, 1, &dep, &mut rng);
    let two_sites = deploy_evenly(&road, 2, &dep, &mut rng);
    let lab = |sites| {
        run(WorldConfig::new(
            3,
            sites,
            ClientMotion::Fixed(Point::new(20.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(30),
        ))
    };
    let one = lab(one_site);
    let two = lab(two_sites);
    let ratio = two.avg_throughput_bps / one.avg_throughput_bps;
    assert!(
        (1.4..2.6).contains(&ratio),
        "two-AP aggregation ratio {ratio:.2} (one {:.0}, two {:.0} B/s)",
        one.avg_throughput_bps,
        two.avg_throughput_bps
    );
}

#[test]
fn analytical_and_system_agree_on_single_channel_rule() {
    // The model's dividing-speed story and the system sim's Table 4
    // ordering point the same way at vehicular speed.
    let sched = spider_repro::model::solve(&spider_repro::model::figure4_inputs(0.75, 20.0, 10.0));
    let model_prefers_single = sched.fractions[1] < 0.10;
    let (one_tput, _) = avg_drive(SpiderConfig::single_channel_multi_ap(Channel::CH1), 600);
    let (three_tput, _) = avg_drive(
        SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        600,
    );
    let system_prefers_single = one_tput > three_tput;
    assert!(
        model_prefers_single,
        "model should park on one channel at 20 m/s"
    );
    assert!(
        system_prefers_single,
        "system should too: {one_tput:.1} vs {three_tput:.1}"
    );
}
