//! The bench suites themselves, registered by name.
//!
//! Each suite is a plain `fn(&mut Harness)` so the same bodies run under
//! two entry points: the `harness = false` cargo bench targets in
//! `benches/` (thin wrappers around [`crate::bench_target_main`]) and
//! the `bench` binary that ci.sh drives directly. The binary matters for
//! gating: `cargo bench` swallows a bench target's exit status behind
//! its own, so a regression gate has to run the suite as a first-class
//! process whose exit code (0 / 2 / 3, see [`crate::timer`]) reaches the
//! shell.

use std::hint::black_box;

use crate::timer::Harness;
use crate::{bench_lab, bench_vehicular};
use dhcp::message::DhcpMessage;
use sim_engine::queue::EventQueue;
use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};
use spider_core::config::{SchedulePolicy, SpiderConfig};
use spider_core::world::{run, run_with_diagnostics, WorldConfig};
use spider_core::MacIntern;
use tcp_lite::connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig};
use wifi_mac::addr::MacAddr;
use wifi_mac::channel::Channel;
use wifi_mac::frame::{Frame, Ssid};
use wifi_mac::phy::PhyConfig;

/// A suite body: registers its benches against the harness.
pub type SuiteFn = fn(&mut Harness);

/// Every suite the `bench` bin can run, by name. The names match the
/// cargo bench targets in `benches/`.
pub const SUITES: &[(&str, SuiteFn)] = &[
    ("substrates", substrates),
    ("des_core", des_core),
    ("des_metro", des_metro),
    ("des_fleet", des_fleet),
    ("model_figures", model_figures),
    ("system_figures", system_figures),
    ("gate_selfcheck", gate_selfcheck),
];

/// Look a suite up by name.
pub fn find(name: &str) -> Option<SuiteFn> {
    SUITES.iter().find(|(n, _)| *n == name).map(|&(_, f)| f)
}

/// A deterministic integer spin workload (an LCG fold): pure CPU, no
/// allocation, timing proportional to `iters`. The self-check suites
/// bench this because its cost is knowable — scaling `iters` by x% *is*
/// an x% slowdown, which is exactly what a gate self-test must detect.
pub fn spin(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for i in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        acc ^= x.rotate_left((i & 63) as u32);
    }
    acc
}

/// Baseline iteration count for the self-check spin workload: ~10 µs a
/// call on the reference container, comfortably above timer resolution.
pub const GATE_SPIN_ITERS: u64 = 20_000;

/// The capture→compare self-check workload. `SPIDER_GATE_INJECT_PCT=10`
/// makes each call do 10 % more spin iterations — a real, measured
/// slowdown (not a mocked number) that `bench compare` against an
/// uninjected capture must flag as a regression for the gate to count
/// as working.
pub fn gate_selfcheck(h: &mut Harness) {
    let inject_pct = std::env::var("SPIDER_GATE_INJECT_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);
    let iters = (GATE_SPIN_ITERS as f64 * (1.0 + inject_pct / 100.0)) as u64;
    if inject_pct != 0.0 {
        println!("  gate_selfcheck: injecting {inject_pct:+.1}% extra work per call");
    }
    h.bench("gate_spin_workload", move || spin(iters));
}

/// Micro-benchmarks of the substrate hot paths: the costs every
/// experiment pays millions of times.
pub fn substrates(h: &mut Harness) {
    h.bench("event_queue_push_pop_10k", || {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(1);
        for i in 0..10_000u64 {
            q.push(Instant::from_micros(rng.range_u64(0, 1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    let mut rng = Rng::new(7);
    h.bench("rng_next_u64_x1M", move || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    });
    let mut rng = Rng::new(7);
    h.bench("rng_normal_x100k", move || {
        let mut acc = 0.0;
        for _ in 0..100_000 {
            acc += rng.normal(0.0, 1.0);
        }
        acc
    });

    let beacon = Frame::beacon(MacAddr::ap(1), Ssid::new("open-net"), Channel::CH6, 12345);
    let encoded = beacon.encode();
    h.bench("frame_encode_beacon", || beacon.encode());
    h.bench("frame_decode_beacon", || Frame::decode(&encoded).unwrap());

    let msg = DhcpMessage::ack(
        7,
        [2, 0, 0, 0, 0, 1],
        std::net::Ipv4Addr::new(10, 0, 0, 50),
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        3600,
    );
    let dhcp_encoded = msg.encode();
    h.bench("dhcp_encode_ack", || msg.encode());
    h.bench("dhcp_decode_ack", || {
        DhcpMessage::decode(&dhcp_encoded).unwrap()
    });

    let phy = PhyConfig::default();
    h.bench("phy_delivery_curve_x10k", || {
        let mut acc = 0.0;
        for i in 0..10_000 {
            acc += phy.data_delivery_prob(black_box(i as f64 / 50.0), 1500);
        }
        acc
    });

    h.bench("tcp_lossless_1MB_transfer", tcp_lossless_transfer);
    h.bench("mac_join_handshake", mac_join_handshake);

    // Campaign orchestrator hot paths: the per-shard costs a cached sweep
    // pays instead of re-simulating.
    let world = bench_lab(
        7,
        SpiderConfig::single_channel_multi_ap(Channel::CH1),
        10,
        2_000_000,
    );
    h.bench("campaign_shard_hash", || campaign::hash::shard_hash(&world));
    let blob = vec![0xA5u8; 4096];
    h.bench("campaign_content_hash_4k", || {
        campaign::hash::content_hash(&blob)
    });
    let result = run(world.clone());
    let record = spider_core::report::RunRecord::to_json(&result).unwrap();
    h.bench("run_record_to_json", || {
        spider_core::report::RunRecord::to_json(&result).unwrap()
    });
    h.bench("run_record_from_json", || {
        spider_core::report::RunRecord::from_json(&record).unwrap()
    });
    let entry = campaign::manifest::ManifestEntry {
        shard: "(1) Channel 1, Multi-AP".to_string(),
        hash: campaign::hash::shard_hash(&world),
        wall_ms: 412,
        cache_hit: false,
        path: "reports/abc.json".to_string(),
    };
    let line = entry.to_line();
    h.bench("manifest_line_roundtrip", || {
        campaign::manifest::ManifestEntry::parse_line(black_box(&line)).unwrap()
    });
}

fn tcp_lossless_transfer() -> u64 {
    let mut sender = BulkSender::new(TcpConfig::default(), 1, 1_000_000, 42);
    let mut receiver = BulkReceiver::new(1);
    let now = Instant::ZERO;
    let mut to_recv: Vec<_> = sender
        .start(now)
        .into_iter()
        .filter_map(|a| match a {
            SenderAction::Transmit(s) => Some(s),
            _ => None,
        })
        .collect();
    let mut delivered = 0u64;
    let mut guard = 0u32;
    while !to_recv.is_empty() {
        guard += 1;
        assert!(guard < 100_000);
        let mut to_send = Vec::new();
        for seg in to_recv.drain(..) {
            for a in receiver.on_segment(&seg, now) {
                match a {
                    ReceiverAction::Transmit(ack) => to_send.push(ack),
                    ReceiverAction::Deliver { bytes } => delivered += bytes,
                    ReceiverAction::Finished => {}
                }
            }
        }
        for ack in to_send {
            for a in sender.on_segment(&ack, now) {
                if let SenderAction::Transmit(seg) = a {
                    to_recv.push(seg);
                }
            }
        }
    }
    delivered
}

fn mac_join_handshake() -> Option<u16> {
    use wifi_mac::ap::{ApConfig, ApMac};
    use wifi_mac::client::{Action, ClientMac, JoinConfig};
    let mut ap = ApMac::new(ApConfig::open(1, "open", Channel::CH1));
    let mut client = ClientMac::new(
        MacAddr::local(1),
        ap.bssid(),
        Ssid::new("open"),
        JoinConfig {
            use_probe: false,
            ..JoinConfig::reduced()
        },
    );
    let mut rng = Rng::new(1);
    let now = Instant::ZERO;
    let mut to_ap: Vec<Frame> = client
        .start(now)
        .into_iter()
        .filter_map(|a| match a {
            Action::Send(f) => Some(f),
            _ => None,
        })
        .collect();
    let mut guard = 0;
    while !client.is_associated() {
        guard += 1;
        assert!(guard < 100, "handshake did not converge");
        let mut to_client = Vec::new();
        for f in to_ap.drain(..) {
            for act in ap.on_frame(&f, now, &mut rng) {
                if let wifi_mac::ap::ApAction::Send { frame, .. } = act {
                    to_client.push(frame);
                }
            }
        }
        for f in to_client {
            for act in client.handle_frame(&f) {
                if let Action::Send(out) = act {
                    to_ap.push(out);
                }
            }
        }
    }
    client.aid()
}

/// The Fig. 5 join-measurement drive, exactly as `system_figures`
/// benches it: multi-channel Spider over the three orthogonal channels,
/// vehicular motion along an Amherst-like deployment, 60 s simulated.
fn fig5_world() -> WorldConfig {
    let mut spider = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(133));
    spider.schedule = SchedulePolicy::MultiChannel {
        slices: vec![
            (Channel::CH6, Duration::from_millis(200)),
            (Channel::CH1, Duration::from_millis(100)),
            (Channel::CH11, Duration::from_millis(100)),
        ],
    };
    bench_vehicular(11, spider, 60)
}

/// Events/sec of the pre-rework engine (commit before the slot-queue +
/// interning change) on this scenario: the best of three interleaved
/// back-to-back runs against that commit's worktree, same batching
/// harness, same machine as the committed artifact (best-of favors the
/// baseline, so recorded speedups are conservative). Machine dependent —
/// override with `SPIDER_BENCH_BASELINE_EPS` after re-measuring locally;
/// `None` drops the baseline/speedup fields from the artifact rather
/// than reporting a number from different hardware.
const RECORDED_MAIN_BASELINE_EPS: Option<f64> = Some(3_050_000.0);

/// The DES hot-path suite: raw engine events/sec on a fig5-scale world,
/// plus microbenches of the two structures the allocation-free hot path
/// rests on (the slot-cancelling event queue and the interned MacAddr
/// table). The headline `events_per_sec` annotation is derived from the
/// median iteration time and the run's deterministic event counter.
pub fn des_core(h: &mut Harness) {
    // One untimed run pins the deterministic per-run counters.
    let (_, probe) = run_with_diagnostics(fig5_world());

    h.bench("fig5_scale_world_60s", || {
        let (result, diag) = run_with_diagnostics(fig5_world());
        (result.total_bytes, diag.events_delivered)
    });
    if let Some(median_ns) = h.last_median_ns() {
        let eps = probe.events_delivered as f64 * 1e9 / median_ns;
        println!(
            "des_core: {} events per run, peak queue depth {}, {:.0} events/sec (median)",
            probe.events_delivered, probe.peak_queue_depth, eps
        );
        h.annotate("scenario", "\"fig5_scale_world_60s\"");
        h.annotate("events_delivered", format!("{}", probe.events_delivered));
        h.annotate("peak_queue_depth", format!("{}", probe.peak_queue_depth));
        h.annotate("events_per_sec", format!("{eps:.1}"));
        let baseline = std::env::var("SPIDER_BENCH_BASELINE_EPS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .or(RECORDED_MAIN_BASELINE_EPS);
        if let Some(base) = baseline {
            println!(
                "des_core: baseline {base:.0} events/sec, speedup {:.2}x",
                eps / base
            );
            h.annotate("baseline_events_per_sec", format!("{base:.1}"));
            h.annotate("speedup_vs_baseline", format!("{:.3}", eps / base));
        }
    }

    // Steady-state heap churn: a queue holding ~1024 timers where every
    // pop schedules a successor — the sim's dominant queue access
    // pattern. No cancellations; measures pure push/pop + slot recycling.
    h.bench("queue_churn_1024_timers", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1024u32 {
            t = t
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(Instant::from_micros(t % 10_000), i);
        }
        let mut acc = 0u64;
        for _ in 0..4096 {
            let (at, v) = q.pop().expect("queue stays full");
            acc = acc.wrapping_add(v as u64);
            t = t
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(at + Duration::from_micros(1 + t % 1_000), v);
        }
        acc
    });

    // Cancel-heavy churn: half of every generation of timers is
    // cancelled before it fires (retransmission timers behave like
    // this). Exercises O(1) slot cancellation plus dead-entry skipping.
    h.bench("queue_cancel_heavy_churn_1024", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        let mut ids = Vec::with_capacity(1024);
        let mut acc = 0u64;
        for round in 0..4u64 {
            ids.clear();
            for i in 0..1024u32 {
                t = t
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ids.push(q.push(Instant::from_micros(round * 20_000 + t % 10_000), i));
            }
            for id in ids.iter().skip(1).step_by(2) {
                q.cancel(*id);
            }
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v as u64);
            }
        }
        acc
    });

    // BSSID resolution against a deployment-sized interned table: the
    // per-beacon lookup the world does instead of a BTreeMap walk.
    let table = MacIntern::build((0..64).map(MacAddr::ap));
    let addrs: Vec<MacAddr> = (0..64).rev().map(MacAddr::ap).collect();
    h.bench("intern_lookup_64_bssids", move || {
        let mut acc = 0usize;
        for &a in &addrs {
            acc += table.get(a).expect("interned at build");
        }
        acc
    });
}

/// The metro-scale suite: does the spatial grid actually pay for itself
/// at 1024 APs? The headline is an interleaved A/B — linear scan over
/// every AP versus [`geo::GridIndex::count_in_disc`] — whose
/// bootstrap-CI verdict ci.sh greps for "improvement" (bench_pair
/// verdicts never feed the exit code). Alongside it, an end-to-end
/// 1024-AP world run pins metro events/sec and the grid-fed diagnostics.
pub fn des_metro(h: &mut Harness) {
    use geo::GridIndex;
    use mobility::geometry::Point;
    use mobility::metro::{metro_deployment, metro_route, MetroConfig};
    use mobility::route::Vehicle;
    use spider_core::world::ClientMotion;

    let cfg = MetroConfig::downtown();
    let mut rng = Rng::new(20111206);
    let sites = metro_deployment(&cfg, &mut rng);
    let positions: Vec<Point> = sites.iter().map(|s| s.position).collect();
    let grid = GridIndex::build(&positions, 200.0);
    // Query points spread over the deployment the way the client moves
    // through it: along the metro route, one every ~25 m.
    let route = metro_route(&cfg);
    let vehicle = Vehicle::new(route, 13.0, Instant::ZERO);
    let queries: Vec<Point> = (0..256)
        .map(|i| vehicle.position_at(Instant::ZERO + Duration::from_secs(2 * i)))
        .collect();
    // The co-channel interference radius `geo::contention` queries at.
    // (At the world's 400 m diagnostic radius the disc covers a third of
    // the whole downtown and a contiguous linear scan wins — the grid
    // pays for itself where queries are selective, which is where the
    // contention subsystem lives.)
    const RADIUS_M: f64 = 150.0;

    let scan_positions = positions.clone();
    let scan_queries = queries.clone();
    let grid_queries = queries.clone();
    h.bench_pair(
        "inrange_1024aps_linear_scan_vs_grid_x256",
        move || {
            let mut acc = 0usize;
            for &q in &scan_queries {
                acc += scan_positions
                    .iter()
                    .filter(|p| p.distance_sq(q) <= RADIUS_M * RADIUS_M)
                    .count();
            }
            acc
        },
        move || {
            let mut acc = 0usize;
            for &q in &grid_queries {
                acc += grid.count_in_disc(q, RADIUS_M);
            }
            acc
        },
    );
    h.annotate("metro_aps", format!("{}", positions.len()));
    h.annotate("inrange_radius_m", format!("{RADIUS_M:.1}"));

    // End-to-end: the full DES over the downtown world, the unit the
    // channel-assignment experiment sweeps per plan.
    let metro_world = || {
        let cfg = MetroConfig::downtown();
        let mut rng = Rng::new(20111206);
        let sites = metro_deployment(&cfg, &mut rng);
        let vehicle = Vehicle::new(metro_route(&cfg), 13.0, Instant::ZERO);
        WorldConfig::new(
            20111206,
            sites,
            ClientMotion::Route(vehicle),
            SpiderConfig::adaptive_channel(),
            Duration::from_secs(30),
        )
    };
    let (_, probe) = run_with_diagnostics(metro_world());
    h.bench("metro_world_1024aps_30s", move || {
        let (result, diag) = run_with_diagnostics(metro_world());
        (result.total_bytes, diag.events_delivered)
    });
    if let Some(median_ns) = h.last_median_ns() {
        let eps = probe.events_delivered as f64 * 1e9 / median_ns;
        println!(
            "des_metro: {} events per run, peak in-range APs {}, {} cell crossings, \
             {eps:.0} events/sec (median)",
            probe.events_delivered, probe.peak_inrange_aps, probe.client_cell_crossings
        );
        h.annotate("scenario", "\"metro_world_1024aps_30s\"");
        h.annotate("events_delivered", format!("{}", probe.events_delivered));
        h.annotate("events_per_sec", format!("{eps:.1}"));
        h.annotate("peak_inrange_aps", format!("{}", probe.peak_inrange_aps));
        h.annotate(
            "client_cell_crossings",
            format!("{}", probe.client_cell_crossings),
        );
    }
}

/// The client-fleet suite: what does a second (…eighth) Spider client in
/// the *same* world cost, compared to replicating the whole world once
/// per client? The headline is an interleaved A/B — one 8-client fleet
/// world versus the naive 8× single-client replication a pre-fleet user
/// would run — whose bootstrap-CI verdict ci.sh greps for "improvement"
/// (bench_pair verdicts never feed the exit code). A fleet world shares
/// the deployment, the AP/beacon timers, and one event queue across all
/// clients, and endogenous contention bounds total traffic by the shared
/// medium rather than N times the solo volume, so per-client cost must
/// come out sublinear. A 1→64-client scaling sweep lands per-client
/// wall-clock in the trajectory artifact.
pub fn des_fleet(h: &mut Harness) {
    use spider_core::fleet::convoy;

    // The fig5-shape drive with `n` clients platooned 2 s apart.
    let fleet_world = |n: usize, secs: u64| {
        let mut cfg = fig5_world();
        cfg.duration = Duration::from_secs(secs);
        let lead = cfg.motion.clone();
        cfg.fleet = convoy(&lead, n - 1, Duration::from_secs(2));
        cfg
    };
    const FLEET_N: usize = 8;
    // The replication baseline varies the seed per copy the way a naive
    // sweep would, so neither side benefits from duplicate-world caching
    // effects.
    h.bench_pair(
        "fleet8_one_world_vs_8x_replication",
        move || {
            let mut acc = 0u64;
            for k in 0..FLEET_N as u64 {
                let mut cfg = fig5_world();
                cfg.duration = Duration::from_secs(15);
                cfg.seed ^= k;
                acc = acc.wrapping_add(run(cfg).total_bytes);
            }
            acc
        },
        move || run(fleet_world(FLEET_N, 15)).total_bytes,
    );
    h.annotate("fleet_ab_clients", format!("{FLEET_N}"));

    // Scaling sweep: per-client wall-clock as the fleet grows 1 → 64.
    let mut per_client_ns = Vec::new();
    for n in [1usize, 4, 16, 64] {
        let (_, probe) = run_with_diagnostics(fleet_world(n, 15));
        h.bench(&format!("fleet_world_n{n}_15s"), move || {
            run(fleet_world(n, 15)).total_bytes
        });
        if let Some(median_ns) = h.last_median_ns() {
            let per_client = median_ns / n as f64;
            per_client_ns.push((n, per_client));
            h.annotate(
                &format!("fleet_n{n}_events"),
                format!("{}", probe.events_delivered),
            );
            h.annotate(
                &format!("fleet_n{n}_per_client_ns"),
                format!("{per_client:.0}"),
            );
        }
    }
    if let (Some(&(_, solo)), Some(&(n, crowd))) = (per_client_ns.first(), per_client_ns.last()) {
        let ratio = crowd / solo;
        println!(
            "des_fleet: per-client cost at n={n} is {ratio:.2}x the solo world \
             ({crowd:.0} ns vs {solo:.0} ns per client)"
        );
        h.annotate("per_client_cost_ratio_n64_vs_n1", format!("{ratio:.3}"));
    }
}

/// Benchmarks of the analytical artifacts: regenerating (scaled versions
/// of) Fig. 2, Fig. 3, Fig. 4 and Table 1.
pub fn model_figures(h: &mut Harness) {
    use analytical::join_model::JoinModelParams;
    use analytical::join_sim::simulate_join_probability;
    use analytical::optimizer::{figure4_inputs, solve};
    use sim_engine::stats::Summary;
    use wifi_mac::radio::RadioConfig;

    // Fig. 2 (model side): Eq. 7 across the fraction axis.
    h.bench("fig02_join_model_curve", || {
        let mut acc = 0.0;
        for step in 1..=20 {
            let f = step as f64 / 20.0;
            acc += JoinModelParams::figure2(f, 10.0).p_join(4.0);
        }
        acc
    });

    // Fig. 2 (simulation side): the Monte-Carlo corroborator.
    let params = JoinModelParams::figure2(0.4, 10.0);
    let mut rng = Rng::new(7);
    h.bench("fig02_join_simulation_1k_trials", move || {
        simulate_join_probability(&params, 4.0, 1_000, &mut rng)
    });

    // Fig. 3: the βmax sweep for all six plotted curves.
    h.bench("fig03_beta_sweep", || {
        let mut acc = 0.0;
        for (f, w) in [
            (0.10, 0.0),
            (0.10, 0.007),
            (0.25, 0.007),
            (0.40, 0.007),
            (0.50, 0.007),
            (0.50, 0.0),
        ] {
            let mut beta = 0.6;
            while beta <= 10.0 {
                let p = JoinModelParams {
                    switch_delay: w,
                    ..JoinModelParams::figure2(f, beta)
                };
                acc += p.p_join(4.0);
                beta += 0.8;
            }
        }
        acc
    });

    // Fig. 4: one full optimizer solve (the unit the speed sweep repeats).
    h.bench("fig04_optimizer_solve", || {
        solve(&figure4_inputs(0.25, 5.0, 10.0))
    });

    // Table 1: the switch-latency distribution (mean ± σ, 0–4 interfaces).
    let cfg = RadioConfig::default();
    let mut rng = Rng::new(42);
    h.bench("table1_switch_latency_model", move || {
        let mut out = Vec::with_capacity(5);
        for connected in 0..=4usize {
            let mut s = Summary::new();
            for _ in 0..1_000 {
                s.record(cfg.switch_latency(connected, &mut rng).as_secs_f64());
            }
            out.push((s.mean(), s.std_dev()));
        }
        out
    });
}

/// Benchmarks of scaled-down full-system runs — one per evaluation
/// experiment family. Each bench is the inner unit the corresponding
/// `experiments` target sweeps: the Fig. 5–6 vehicular drive, the
/// Fig. 7/8 indoor TCP runs, the Fig. 9 two-AP aggregation point, and
/// the Table 2 / Fig. 10 evaluation drives.
pub fn system_figures(h: &mut Harness) {
    h.bench("fig05_06_join_measurement_drive_60s", || {
        let mut spider = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(133));
        spider.schedule = SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH6, Duration::from_millis(200)),
                (Channel::CH1, Duration::from_millis(100)),
                (Channel::CH11, Duration::from_millis(100)),
            ],
        };
        let result = run(bench_vehicular(11, spider, 60));
        (result.assoc_times.count(), result.join_times.count())
    });

    h.bench("fig07_tcp_fraction_point_30s", || {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.schedule = SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH1, Duration::from_millis(280)),
                (Channel::CH6, Duration::from_millis(60)),
                (Channel::CH11, Duration::from_millis(60)),
            ],
        };
        let result = run(bench_lab(7, spider, 30, 50_000_000));
        result.total_bytes
    });

    h.bench("fig08_tcp_slice_point_30s", || {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.schedule = SchedulePolicy::equal_three(Duration::from_millis(200));
        let result = run(bench_lab(7, spider, 30, 50_000_000));
        (result.total_bytes, result.tcp_rtos)
    });

    h.bench("fig09_two_ap_aggregation_point_20s", || {
        let mut cfg = bench_lab(
            9,
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            20,
            2_000_000,
        );
        // Second AP on the same channel, like Fig. 9's (100,0,0) row.
        let mut second = cfg.sites[0].clone();
        second.id = 2;
        second.position = mobility::geometry::Point::new(8.0, 0.0);
        cfg.sites.push(second);
        let result = run(cfg);
        result.total_bytes
    });

    for (label, spider) in [
        (
            "single_channel_multi_ap",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        (
            "multi_channel_multi_ap",
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        ),
        ("stock_madwifi", SpiderConfig::stock_madwifi()),
    ] {
        h.bench(&format!("table2_fig10/{label}"), || {
            let result = run(bench_vehicular(42, spider.clone(), 120));
            (result.total_bytes, result.connectivity)
        });
    }
}
