//! # bench
//!
//! Offline benchmarks for the Spider (CoNEXT 2011) reproduction, run on
//! the in-tree std-only [`timer`] harness (`cargo bench` works with an
//! empty registry). The benches live in `benches/`:
//!
//! * `substrates` — micro-benchmarks of the hot paths: event queue, PRNG,
//!   frame and DHCP codecs, TCP lossless transfer, PHY math.
//! * `model_figures` — the analytical artifacts: Fig. 2 (Eq. 7 and its
//!   Monte-Carlo corroborator), Fig. 3 (βmax sweep), Fig. 4 (the Eq. 8–10
//!   optimizer) and Table 1 (switch-latency model).
//! * `system_figures` — scaled-down full-system runs for each evaluation
//!   experiment family: the lab TCP benches behind Figs. 7–9 and the
//!   vehicular drives behind Tables 2–4 / Figs. 5, 6, 10–14.
//!
//! This library crate hosts the harness ([`timer`]), its statistics
//! ([`stats`]: percentile bootstrap CIs, Cliff's delta), the committed
//! baseline format ([`baseline`]), and the suite bodies themselves
//! ([`suites`]) so the bench targets stay thin wrappers. The `bench`
//! binary (`src/bin/bench.rs`) runs the same suites with a regression
//! gate ci.sh can act on: `cargo bench` swallows bench-target exit
//! codes, a dedicated bin does not. The non-default `external-bench`
//! feature is the sanctioned hook for wiring a registry framework
//! (criterion) back in; default builds stay hermetic.

pub mod baseline;
pub mod stats;
pub mod suites;
pub mod timer;
pub mod trajectory;

/// The shared entry point for `harness = false` bench targets: build a
/// harness from the environment/CLI, run the named suite, and exit with
/// the harness verdict. (Under `cargo bench` the exit code is swallowed
/// by cargo; the `bench` bin exists so ci.sh can see it.)
pub fn bench_target_main(target: &str) -> ! {
    let mut h = timer::Harness::from_env(target);
    match suites::find(target) {
        Some(suite) => suite(&mut h),
        None => {
            eprintln!("bench: unknown suite {target:?}");
            std::process::exit(1);
        }
    }
    std::process::exit(h.finish());
}

use mobility::deployment::{deploy_along, ApSite, DeploymentConfig};
use mobility::geometry::Point;
use mobility::route::{Route, Vehicle};
use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};
use spider_core::config::SpiderConfig;
use spider_core::world::{ClientMotion, WorldConfig};
use wifi_mac::channel::Channel;

/// A small Amherst-like vehicular scenario (scaled for benching).
pub fn bench_vehicular(seed: u64, spider: SpiderConfig, secs: u64) -> WorldConfig {
    let route = Route::rectangle(800.0, 400.0);
    let mut rng = Rng::new(seed);
    let sites = deploy_along(&route, &DeploymentConfig::amherst(), &mut rng);
    let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
    WorldConfig::new(
        seed,
        sites,
        ClientMotion::Route(vehicle),
        spider,
        Duration::from_secs(secs),
    )
}

/// A one-AP lab scenario (scaled Fig. 7/8 shape).
pub fn bench_lab(seed: u64, spider: SpiderConfig, secs: u64, backhaul_bps: u64) -> WorldConfig {
    let site = ApSite {
        id: 1,
        position: Point::new(0.0, 0.0),
        channel: Channel::CH1,
        backhaul_bps,
        dhcp_delay_min: Duration::from_millis(50),
        dhcp_delay_max: Duration::from_millis(200),
    };
    let mut cfg = WorldConfig::new(
        seed,
        vec![site],
        ClientMotion::Fixed(Point::new(0.0, 10.0)),
        spider,
        Duration::from_secs(secs),
    );
    cfg.backhaul_latency = Duration::from_millis(90);
    cfg
}
