//! Committed-baseline loading for `bench compare`.
//!
//! A baseline file is simply a bench JSON artifact written by
//! [`crate::timer::Harness`] with per-batch sample arrays — capture one
//! with `bench <suite> --capture benches/baselines/<suite>.json` and
//! commit it. Keeping raw samples (not just summaries) is the point:
//! the comparison re-bootstraps both sides, so the interval honestly
//! reflects the baseline's own measurement noise instead of treating a
//! recorded median as gospel.
//!
//! The parser below is a minimal recursive-descent JSON reader for that
//! one schema (objects, strings, numbers, arrays). It is hand-rolled for
//! the same reason as `spider_core::report`'s: the workspace is
//! registry-free by contract.

use std::path::Path;

/// One bench's committed measurement: its name and raw per-batch
/// samples in ns/iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineBench {
    /// Bench name as registered with the harness.
    pub name: String,
    /// Per-batch ns/iteration samples from the capture run.
    pub samples_ns: Vec<f64>,
}

/// A parsed baseline artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The bench target ("suite") the baseline was captured from.
    pub target: String,
    /// Every bench with a non-empty sample array.
    pub benches: Vec<BaselineBench>,
}

impl Baseline {
    /// Load and parse a baseline file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Baseline::from_json(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))
    }

    /// Parse baseline JSON (the bench artifact schema).
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let root = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing characters after the root object".to_string());
        }
        let Value::Object(fields) = root else {
            return Err("baseline root is not an object".to_string());
        };
        let target = match find(&fields, "target") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err("baseline has no string \"target\" field".to_string()),
        };
        let Some(Value::Array(entries)) = find(&fields, "benches") else {
            return Err("baseline has no \"benches\" array".to_string());
        };
        let mut benches = Vec::new();
        for entry in entries {
            let Value::Object(bench) = entry else {
                return Err("\"benches\" entry is not an object".to_string());
            };
            let name = match find(bench, "name") {
                Some(Value::String(s)) => s.clone(),
                _ => return Err("bench entry has no string \"name\"".to_string()),
            };
            let samples_ns = match find(bench, "samples_ns") {
                Some(Value::Array(vals)) => {
                    let mut out = Vec::with_capacity(vals.len());
                    for v in vals {
                        match v {
                            Value::Number(x) if x.is_finite() && *x > 0.0 => out.push(*x),
                            Value::Number(_) => {
                                return Err(format!(
                                    "bench {name:?} has a non-finite or non-positive sample"
                                ))
                            }
                            _ => return Err(format!("bench {name:?} samples are not numbers")),
                        }
                    }
                    out
                }
                _ => {
                    return Err(format!(
                        "bench {name:?} has no \"samples_ns\" array — re-capture the baseline \
                         with this harness version"
                    ))
                }
            };
            if samples_ns.is_empty() {
                return Err(format!("bench {name:?} has an empty sample array"));
            }
            benches.push(BaselineBench { name, samples_ns });
        }
        if benches.is_empty() {
            return Err("baseline contains no benches".to_string());
        }
        Ok(Baseline { target, benches })
    }

    /// The committed samples for one bench name, if present.
    pub fn samples_for(&self, name: &str) -> Option<&[f64]> {
        self.benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.samples_ns.as_slice())
    }
}

/// Locate a key in an object's field list.
pub(crate) fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The artifact schema's value space. Booleans/null never appear in what
/// the harness writes, so they are parse errors — stricter is safer for
/// a gating input. Shared with `crate::trajectory`, which reads the same
/// schema one JSONL line at a time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

pub(crate) struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8, what: &'static str) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {what} at byte {}", self.pos))
        }
    }

    pub(crate) fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(_) => Ok(Value::Number(self.number()?)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{', "'{'")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':', "':' after key")?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[', "'['")?;
        let mut values = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(values));
        }
        loop {
            values.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(values));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "'\"'")?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = core::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "string is not UTF-8".to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                // Harness-emitted names/targets are plain identifiers;
                // escapes are out of schema.
                b'\\' => return Err(format!("escape in string at byte {}", self.pos)),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        core::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"{"target":"des_core","budget_ms":300,"benches":[
        {"name":"fig5","min_ns":1.0,"median_ns":2.0,"mean_ns":2.1,"batches":3,"iters":9,
         "samples_ns":[2400000.5,2500000.0,2600000.1]},
        {"name":"intern","samples_ns":[900.1,905.2]}],
        "events_per_sec":5719958.0,"scenario":"fig5_scale_world_60s"}"#;

    #[test]
    fn parses_the_artifact_schema() {
        let b = Baseline::from_json(OK).expect("valid baseline");
        assert_eq!(b.target, "des_core");
        assert_eq!(b.benches.len(), 2);
        assert_eq!(b.samples_for("fig5").map(<[f64]>::len), Some(3));
        assert_eq!(b.samples_for("intern"), Some(&[900.1, 905.2][..]));
        assert_eq!(b.samples_for("missing"), None);
    }

    #[test]
    fn rejects_summary_only_baselines() {
        let legacy = r#"{"target":"t","benches":[{"name":"a","median_ns":5.0}]}"#;
        let err = Baseline::from_json(legacy).expect_err("no samples → error");
        assert!(err.contains("samples_ns"), "{err}");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "[1,2,3]",
            r#"{"target":"t"}"#,
            r#"{"target":"t","benches":[]}"#,
            r#"{"target":"t","benches":[{"name":"a","samples_ns":[]}]}"#,
            r#"{"target":"t","benches":[{"name":"a","samples_ns":[1e999]}]}"#,
            r#"{"target":"t","benches":[{"name":"a","samples_ns":[-3.0]}]}"#,
            r#"{"target":"t","benches":[{"name":"a","samples_ns":[1.0]}] extra"#,
            r#"{"target":5,"benches":[{"name":"a","samples_ns":[1.0]}]}"#,
        ] {
            assert!(Baseline::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn roundtrips_whitespace_variants() {
        let spaced = OK.replace(',', " ,\n ");
        assert!(Baseline::from_json(&spaced).is_ok());
    }
}
