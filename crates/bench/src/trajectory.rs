//! Cross-commit trajectory analysis: the reader for `BENCH_trajectory.jsonl`.
//!
//! Every gated bench run appends one JSON line per bench (commit, median,
//! bootstrap CI — see `Harness::finish`). Each line answers "did this
//! commit regress against its immediate baseline?"; what no single line
//! can answer is "has this bench been quietly getting slower for a
//! month?". A 1 % drift per commit never trips a 5 % gate, yet ten of
//! them compound into a real regression.
//!
//! `bench trajectory <file>` joins the log into a per-bench, per-commit
//! table and flags **monotone drifts**: runs of consecutive commits whose
//! medians only go up, with a cumulative rise past a threshold. It is a
//! reader, not a gate — it always exits 0 and leaves acting on the drift
//! to a human, because the log spans machines and days and a hard
//! threshold across that much environment would cry wolf.

use crate::baseline::{find, Parser, Value};
use crate::timer::fmt_ns;

/// One `BENCH_trajectory.jsonl` line.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Abbreviated commit hash the run was made at.
    pub commit: String,
    /// Bench target (suite) name.
    pub target: String,
    /// Bench name within the target.
    pub bench: String,
    /// Median ns/iteration of the run.
    pub median_ns: f64,
    /// Bootstrap CI low edge, ns.
    pub ci_lo_ns: f64,
    /// Bootstrap CI high edge, ns.
    pub ci_hi_ns: f64,
}

/// A flagged monotone drift: `points` consecutive commits of one bench
/// whose medians strictly increased, compounding to `rise_pct`.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Bench target (suite) name.
    pub target: String,
    /// Bench name within the target.
    pub bench: String,
    /// First commit of the run-up.
    pub from_commit: String,
    /// Last commit of the run-up.
    pub to_commit: String,
    /// Commits in the run-up (≥ the detector's minimum).
    pub points: usize,
    /// Cumulative rise over the run-up, percent.
    pub rise_pct: f64,
}

/// Parse a trajectory JSONL text. Blank lines are skipped; a malformed
/// line is an error naming its line number (the log is append-only and
/// machine-written, so damage means something worth hearing about).
pub fn parse_lines(text: &str) -> Result<Vec<TrajectoryPoint>, String> {
    let mut points = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        points.push(parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(points)
}

fn parse_line(line: &str) -> Result<TrajectoryPoint, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after the line object".to_string());
    }
    let Value::Object(fields) = root else {
        return Err("line is not an object".to_string());
    };
    let string = |key: &str| match find(&fields, key) {
        Some(Value::String(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key:?}")),
    };
    let number = |key: &str| match find(&fields, key) {
        Some(Value::Number(x)) if x.is_finite() && *x > 0.0 => Ok(*x),
        _ => Err(format!("missing positive number field {key:?}")),
    };
    Ok(TrajectoryPoint {
        commit: string("commit")?,
        target: string("target")?,
        bench: string("bench")?,
        median_ns: number("median_ns")?,
        ci_lo_ns: number("ci_lo_ns")?,
        ci_hi_ns: number("ci_hi_ns")?,
    })
}

/// The per-bench series hidden in the flat log, in first-appearance
/// order. Within a series, re-runs at the same commit collapse to the
/// **latest** line (the freshest measurement of that commit).
pub fn series(points: &[TrajectoryPoint]) -> Vec<(String, String, Vec<TrajectoryPoint>)> {
    let mut out: Vec<(String, String, Vec<TrajectoryPoint>)> = Vec::new();
    for pt in points {
        let idx = out
            .iter()
            .position(|(t, b, _)| *t == pt.target && *b == pt.bench)
            .unwrap_or_else(|| {
                out.push((pt.target.clone(), pt.bench.clone(), Vec::new()));
                out.len() - 1
            });
        let group = &mut out[idx].2;
        match group.iter_mut().find(|q| q.commit == pt.commit) {
            Some(existing) => *existing = pt.clone(),
            None => group.push(pt.clone()),
        }
    }
    out
}

/// Find monotone drifts: maximal runs of ≥ `min_points` consecutive
/// commits whose medians strictly increase step over step, compounding
/// to at least `min_rise_pct` percent.
pub fn find_drifts(points: &[TrajectoryPoint], min_points: usize, min_rise_pct: f64) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for (target, bench, run) in series(points) {
        let mut start = 0;
        for i in 1..=run.len() {
            let rising = i < run.len() && run[i].median_ns > run[i - 1].median_ns;
            if rising {
                continue;
            }
            // The monotone stretch run[start..i] just ended.
            let len = i - start;
            if len >= min_points {
                let rise_pct = (run[i - 1].median_ns / run[start].median_ns - 1.0) * 100.0;
                if rise_pct >= min_rise_pct {
                    drifts.push(Drift {
                        target: target.clone(),
                        bench: bench.clone(),
                        from_commit: run[start].commit.clone(),
                        to_commit: run[i - 1].commit.clone(),
                        points: len,
                        rise_pct,
                    });
                }
            }
            start = i;
        }
    }
    drifts
}

/// Render the per-commit table plus the drift report. Pure text in, pure
/// text out — the bin layer owns I/O and exit codes.
pub fn report(points: &[TrajectoryPoint], min_points: usize, min_rise_pct: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (target, bench, run) in series(points) {
        let _ = writeln!(out, "{target}/{bench} — {} commit(s)", run.len());
        let mut prev: Option<f64> = None;
        for pt in &run {
            let step = match prev {
                Some(p) => format!("{:+6.1}%", (pt.median_ns / p - 1.0) * 100.0),
                None => "      —".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>12}  [{} .. {}]  {step}",
                pt.commit,
                fmt_ns(pt.median_ns),
                fmt_ns(pt.ci_lo_ns),
                fmt_ns(pt.ci_hi_ns),
            );
            prev = Some(pt.median_ns);
        }
    }
    let drifts = find_drifts(points, min_points, min_rise_pct);
    if drifts.is_empty() {
        let _ = writeln!(
            out,
            "no monotone drift of ≥ {min_points} commits rising ≥ {min_rise_pct:.1}%"
        );
    } else {
        for d in &drifts {
            let _ = writeln!(
                out,
                "DRIFT {}/{}: +{:.1}% over {} commits ({} → {}) — no single step \
                 tripped a gate, the sum did",
                d.target, d.bench, d.rise_pct, d.points, d.from_commit, d.to_commit
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(commit: &str, bench: &str, median: f64) -> String {
        format!(
            r#"{{"commit":"{commit}","target":"des_core","bench":"{bench}","median_ns":{median},"ci_lo_ns":{},"ci_hi_ns":{},"batches":24}}"#,
            median * 0.98,
            median * 1.02
        )
    }

    #[test]
    fn parses_the_gate_line_schema_with_optional_fields() {
        let with_verdict = r#"{"commit":"abc123","target":"t","bench":"b","median_ns":100.0,"ci_lo_ns":95.0,"ci_hi_ns":105.0,"batches":24,"diff_pct":1.5,"verdict":"unchanged"}"#;
        let pt = parse_line(with_verdict).expect("valid line");
        assert_eq!(pt.commit, "abc123");
        assert_eq!(pt.median_ns, 100.0);
        assert!(parse_line("{}").is_err());
        assert!(parse_line("not json").is_err());
        let text = format!("{}\n\n{}\n", line("a", "x", 10.0), line("b", "x", 11.0));
        assert_eq!(parse_lines(&text).expect("two lines").len(), 2);
        let err = parse_lines("{\"commit\":1}\n").expect_err("bad line");
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn series_collapse_reruns_to_the_latest_line() {
        let text = [
            line("a", "x", 10.0),
            line("a", "x", 12.0), // re-run at the same commit
            line("b", "x", 11.0),
            line("a", "y", 5.0),
        ]
        .join("\n");
        let pts = parse_lines(&text).expect("parses");
        let s = series(&pts);
        assert_eq!(s.len(), 2, "x and y series");
        assert_eq!(s[0].2.len(), 2, "commits a,b");
        assert_eq!(s[0].2[0].median_ns, 12.0, "latest re-run wins");
    }

    #[test]
    fn flags_slow_compounding_drift_a_gate_misses() {
        // Four commits each +2 % — under any 5 % per-commit gate, but
        // +6.1 % end to end.
        let text = [
            line("c1", "hot", 100.0),
            line("c2", "hot", 102.0),
            line("c3", "hot", 104.0),
            line("c4", "hot", 106.1),
            // A noisy bench that bounces: no drift.
            line("c1", "noisy", 50.0),
            line("c2", "noisy", 55.0),
            line("c3", "noisy", 49.0),
            line("c4", "noisy", 54.0),
        ]
        .join("\n");
        let pts = parse_lines(&text).expect("parses");
        let drifts = find_drifts(&pts, 3, 5.0);
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert_eq!(drifts[0].bench, "hot");
        assert_eq!(drifts[0].points, 4);
        assert_eq!(
            (drifts[0].from_commit.as_str(), drifts[0].to_commit.as_str()),
            ("c1", "c4")
        );
        assert!((drifts[0].rise_pct - 6.1).abs() < 1e-9);
        // Raising the bar hides it again.
        assert!(find_drifts(&pts, 3, 10.0).is_empty());
        assert!(find_drifts(&pts, 5, 5.0).is_empty());
        let rendered = report(&pts, 3, 5.0);
        assert!(rendered.contains("DRIFT des_core/hot"), "{rendered}");
    }

    #[test]
    fn a_reset_breaks_the_run() {
        // Rises, dips, rises again: neither stretch alone clears 3 points
        // + 5 %.
        let text = [
            line("c1", "hot", 100.0),
            line("c2", "hot", 103.0),
            line("c3", "hot", 101.0),
            line("c4", "hot", 104.0),
        ]
        .join("\n");
        let pts = parse_lines(&text).expect("parses");
        assert!(find_drifts(&pts, 3, 5.0).is_empty());
    }
}
