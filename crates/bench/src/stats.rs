//! Deterministic, std-only statistics for paired benchmark comparison.
//!
//! Everything here is pure arithmetic over sample slices: no wall clock,
//! no unordered containers, no entropy beyond the caller-supplied seed.
//! The bootstrap resampling stream flows from [`sim_engine::rng::Rng`]
//! (xoshiro256**), so a comparison over the same two sample sets with the
//! same [`CompareConfig`] yields bit-identical intervals on every machine
//! and every run — the regression gate's verdict is reproducible, which
//! is what lets CI act on it.
//!
//! # Method
//!
//! Per-batch timings are not normally distributed (scheduler preemption
//! skews the right tail), so the module avoids t-statistics entirely:
//!
//! * The location estimate is the **median** (order statistics with
//!   linear interpolation), robust to tail outliers.
//! * Uncertainty comes from the **percentile bootstrap**: resample each
//!   side with replacement, recompute the statistic, and read the
//!   interval straight off the resampled distribution's quantiles.
//! * Comparisons are made on the **relative median difference**
//!   `(median(candidate) − median(baseline)) / median(baseline)` —
//!   positive values mean the candidate is *slower* (samples are
//!   ns/iteration) — with **Cliff's delta** reported alongside as a
//!   scale-free effect size.
//!
//! A regression is declared only when the difference interval excludes
//! zero **and** the point estimate clears the `min_effect` guard band —
//! statistical significance alone cannot flag a well-resolved 0.5 %
//! wobble, and a large point estimate alone cannot flag noise. Too few
//! samples yield [`Verdict::Inconclusive`] instead of a guess.

use sim_engine::rng::Rng;

/// Default number of bootstrap resamples. 2000 keeps the 0.5 % / 99.5 %
/// interval endpoints stable to well under a percent of the effect scale
/// at the sample counts the harness produces (tens of batches).
pub const DEFAULT_RESAMPLES: u32 = 2_000;

/// Default two-sided confidence level for intervals and verdicts.
pub const DEFAULT_CONFIDENCE: f64 = 0.99;

/// Default seed for the bootstrap resampling stream. Any fixed value
/// works; sharing one workspace-wide makes artifacts byte-comparable.
pub const DEFAULT_SEED: u64 = 0x51D3_49E3_7B9B_E25D;

/// Fewest per-side samples a comparison will accept before declaring
/// itself [`Verdict::Inconclusive`]: below this the bootstrap quantiles
/// are dominated by discreteness, not evidence.
pub const MIN_SAMPLES: usize = 8;

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// The plug-in estimate on the original samples.
    pub point: f64,
    /// Lower interval endpoint.
    pub lo: f64,
    /// Upper interval endpoint.
    pub hi: f64,
}

impl Ci {
    /// True when the whole interval lies strictly above `threshold`.
    pub fn excludes_below(&self, threshold: f64) -> bool {
        self.lo > threshold
    }

    /// True when the whole interval lies strictly below `threshold`.
    pub fn excludes_above(&self, threshold: f64) -> bool {
        self.hi < threshold
    }
}

/// Interpolated percentile of an **ascending-sorted** slice, `q` in
/// `[0, 1]` (0 = min, 0.5 = median, 1 = max).
///
/// Uses the `rank = q·(n−1)` convention with linear interpolation
/// between adjacent order statistics.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "percentile q out of [0, 1]");
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Interpolated median of an unsorted slice (the slice is copied, not
/// mutated).
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty slice");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, 0.5)
}

/// Draw one bootstrap resample of `samples` into `scratch` and return
/// its median. `scratch` is caller-owned so the resampling loop does not
/// allocate.
fn resampled_median(samples: &[f64], rng: &mut Rng, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    let n = samples.len() as u64;
    for _ in 0..samples.len() {
        scratch.push(samples[rng.below(n) as usize]);
    }
    scratch.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(scratch, 0.5)
}

/// The `[α/2, 1−α/2]` quantile interval of a set of bootstrap statistic
/// replicates.
fn bootstrap_interval(replicates: &mut [f64], confidence: f64, point: f64) -> Ci {
    replicates.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence).clamp(0.0, 1.0);
    Ci {
        point,
        lo: percentile_sorted(replicates, alpha / 2.0),
        hi: percentile_sorted(replicates, 1.0 - alpha / 2.0),
    }
}

/// Percentile-bootstrap confidence interval for the **median** of one
/// sample set.
pub fn bootstrap_median_ci(samples: &[f64], confidence: f64, resamples: u32, seed: u64) -> Ci {
    assert!(!samples.is_empty(), "bootstrap of an empty slice");
    let mut rng = Rng::new(seed);
    let mut scratch = Vec::with_capacity(samples.len());
    let mut replicates = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        replicates.push(resampled_median(samples, &mut rng, &mut scratch));
    }
    bootstrap_interval(&mut replicates, confidence, median(samples))
}

/// Percentile-bootstrap confidence interval for the **relative median
/// difference** `(median(candidate) − median(baseline)) /
/// median(baseline)`.
///
/// Positive values mean the candidate is slower. Both sides are
/// resampled independently per replicate, so the interval reflects the
/// uncertainty of both measurements.
pub fn bootstrap_rel_diff_ci(
    baseline: &[f64],
    candidate: &[f64],
    confidence: f64,
    resamples: u32,
    seed: u64,
) -> Ci {
    assert!(
        !baseline.is_empty() && !candidate.is_empty(),
        "bootstrap of an empty slice"
    );
    let point = rel_diff(median(baseline), median(candidate));
    let mut rng = Rng::new(seed);
    let mut scratch = Vec::with_capacity(baseline.len().max(candidate.len()));
    let mut replicates = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let b = resampled_median(baseline, &mut rng, &mut scratch);
        let c = resampled_median(candidate, &mut rng, &mut scratch);
        replicates.push(rel_diff(b, c));
    }
    bootstrap_interval(&mut replicates, confidence, point)
}

/// `(candidate − baseline) / baseline`, guarded against a degenerate
/// zero baseline (timings are strictly positive in practice).
fn rel_diff(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (candidate - baseline) / baseline
    }
}

/// Cliff's delta: `P(candidate > baseline) − P(candidate < baseline)`
/// over all sample pairs, in `[−1, 1]`. Positive = candidate tends
/// larger (slower). Scale-free and rank-based, so one wild outlier
/// cannot saturate it the way it can a mean difference.
pub fn cliffs_delta(baseline: &[f64], candidate: &[f64]) -> f64 {
    assert!(
        !baseline.is_empty() && !candidate.is_empty(),
        "cliffs_delta of an empty slice"
    );
    let mut gt = 0i64;
    let mut lt = 0i64;
    for &c in candidate {
        for &b in baseline {
            if c > b {
                gt += 1;
            } else if c < b {
                lt += 1;
            }
        }
    }
    (gt - lt) as f64 / (baseline.len() * candidate.len()) as f64
}

/// Knobs for [`compare`]. `min_effect` is a relative guard band on the
/// point estimate: a regression needs the interval to exclude zero *and*
/// a median shift of at least this much (0.0 = significance alone
/// decides). ci.sh widens it for cross-run comparisons against a
/// committed baseline, where run-to-run drift is real even on one
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Two-sided confidence level in `(0, 1)`.
    pub confidence: f64,
    /// Bootstrap resample count.
    pub resamples: u32,
    /// Seed for the resampling stream.
    pub seed: u64,
    /// Relative guard band for the verdict (0.05 = ±5 %).
    pub min_effect: f64,
    /// Fewest per-side samples before the verdict is
    /// [`Verdict::Inconclusive`].
    pub min_samples: usize,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            confidence: DEFAULT_CONFIDENCE,
            resamples: DEFAULT_RESAMPLES,
            seed: DEFAULT_SEED,
            min_effect: 0.0,
            min_samples: MIN_SAMPLES,
        }
    }
}

/// The gate's four-way outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The difference interval excludes zero and the median shift clears
    /// `min_effect`: the candidate is measurably slower.
    Regression,
    /// The mirrored case: measurably faster by more than `min_effect`.
    Improvement,
    /// The interval straddles zero, or the shift is within the guard
    /// band — no actionable difference.
    NoDifference,
    /// Too few samples to say anything; never silently passes as "no
    /// difference".
    Inconclusive,
}

impl Verdict {
    /// Stable lowercase label for artifacts and trajectory lines.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "regression",
            Verdict::Improvement => "improvement",
            Verdict::NoDifference => "no-difference",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// One baseline-vs-candidate comparison: the interval, the effect size,
/// and the verdict derived from them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Relative median difference interval (positive = slower).
    pub diff: Ci,
    /// Cliff's delta effect size.
    pub delta: f64,
    /// Gate outcome under the config's guard band.
    pub verdict: Verdict,
    /// Baseline sample count.
    pub baseline_n: usize,
    /// Candidate sample count.
    pub candidate_n: usize,
}

/// Compare candidate timings against baseline timings (both ns/iter,
/// lower is better).
pub fn compare(baseline: &[f64], candidate: &[f64], cfg: &CompareConfig) -> Comparison {
    if baseline.len() < cfg.min_samples || candidate.len() < cfg.min_samples {
        return Comparison {
            diff: Ci {
                point: 0.0,
                lo: 0.0,
                hi: 0.0,
            },
            delta: 0.0,
            verdict: Verdict::Inconclusive,
            baseline_n: baseline.len(),
            candidate_n: candidate.len(),
        };
    }
    let diff = bootstrap_rel_diff_ci(baseline, candidate, cfg.confidence, cfg.resamples, cfg.seed);
    let delta = cliffs_delta(baseline, candidate);
    let verdict = if diff.excludes_below(0.0) && diff.point >= cfg.min_effect {
        Verdict::Regression
    } else if diff.excludes_above(0.0) && diff.point <= -cfg.min_effect {
        Verdict::Improvement
    } else {
        Verdict::NoDifference
    };
    Comparison {
        diff,
        delta,
        verdict,
        baseline_n: baseline.len(),
        candidate_n: candidate.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic synthetic samples: `n` draws from the given
    /// inverse-CDF under a seeded uniform stream.
    fn draws(seed: u64, n: usize, inv_cdf: impl Fn(f64) -> f64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| inv_cdf(rng.f64())).collect()
    }

    #[test]
    fn percentile_known_quantiles() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        // Interpolation between order statistics.
        assert_eq!(percentile_sorted(&sorted, 0.625), 3.5);
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[2.0, 1.0, 3.0]), 2.0);
    }

    #[test]
    fn bootstrap_ci_brackets_true_median_uniform() {
        // Uniform[0, 1): true median 0.5. Across many seeded sample sets
        // the 95 % interval must cover ≈95 % of the time; assert a loose
        // lower bound so the test is immune to bootstrap small-sample
        // bias while still catching broken intervals. Fully
        // deterministic: fixed seeds, fixed resampling stream.
        let mut covered = 0;
        const REPS: u64 = 40;
        for rep in 0..REPS {
            let samples = draws(1000 + rep, 100, |u| u);
            let ci = bootstrap_median_ci(&samples, 0.95, 600, 7 + rep);
            assert!(ci.lo <= ci.hi, "interval inverted: {ci:?}");
            if ci.lo <= 0.5 && 0.5 <= ci.hi {
                covered += 1;
            }
        }
        assert!(
            covered >= REPS * 8 / 10,
            "95% CI covered true median only {covered}/{REPS} times"
        );
    }

    #[test]
    fn bootstrap_ci_brackets_true_median_exponential() {
        // Exponential(1): true median ln 2 ≈ 0.6931, a skewed
        // distribution like real timing tails.
        let true_median = std::f64::consts::LN_2;
        let mut covered = 0;
        const REPS: u64 = 40;
        for rep in 0..REPS {
            let samples = draws(5000 + rep, 100, |u| -(1.0 - u).ln());
            let ci = bootstrap_median_ci(&samples, 0.95, 600, 11 + rep);
            if ci.lo <= true_median && true_median <= ci.hi {
                covered += 1;
            }
        }
        assert!(
            covered >= REPS * 8 / 10,
            "95% CI covered exponential median only {covered}/{REPS} times"
        );
    }

    #[test]
    fn bootstrap_interval_narrows_with_sample_count() {
        let small = draws(42, 20, |u| u);
        let large = draws(42, 400, |u| u);
        let ci_small = bootstrap_median_ci(&small, 0.95, 1000, 3);
        let ci_large = bootstrap_median_ci(&large, 0.95, 1000, 3);
        assert!(
            (ci_large.hi - ci_large.lo) < (ci_small.hi - ci_small.lo),
            "more samples must narrow the interval: {ci_small:?} vs {ci_large:?}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = draws(1, 50, |u| 100.0 + u);
        let b = draws(2, 50, |u| 100.0 + u);
        let cfg = CompareConfig::default();
        let first = compare(&a, &b, &cfg);
        let second = compare(&a, &b, &cfg);
        // Bit-identical, not approximately equal: the whole pipeline is
        // seeded, so CI's verdict is reproducible anywhere.
        assert_eq!(first, second);
        let ci1 = bootstrap_median_ci(&a, 0.99, 500, 9);
        let ci2 = bootstrap_median_ci(&a, 0.99, 500, 9);
        assert_eq!(ci1, ci2);
    }

    #[test]
    fn aa_null_comparison_reports_no_difference() {
        // Two independent sample sets from the same distribution: the
        // verdict must be NoDifference, never a phantom regression.
        // Deterministic seeds make this stable forever.
        for (sa, sb) in [(10u64, 20u64), (30, 40), (50, 60), (70, 80)] {
            let a = draws(sa, 60, |u| 1000.0 * (1.0 + 0.05 * u));
            let b = draws(sb, 60, |u| 1000.0 * (1.0 + 0.05 * u));
            let got = compare(&a, &b, &CompareConfig::default());
            assert_eq!(
                got.verdict,
                Verdict::NoDifference,
                "A/A at seeds ({sa},{sb}) mis-verdicted: {got:?}"
            );
        }
    }

    #[test]
    fn ten_percent_shift_is_a_regression() {
        let base = draws(7, 60, |u| 1000.0 * (1.0 + 0.05 * u));
        let slow: Vec<f64> = base.iter().map(|x| x * 1.10).collect();
        let got = compare(&base, &slow, &CompareConfig::default());
        assert_eq!(got.verdict, Verdict::Regression, "{got:?}");
        assert!(got.diff.point > 0.05, "{got:?}");
        assert!(got.delta > 0.5, "{got:?}");
        // And the mirrored comparison is an improvement.
        let rev = compare(&slow, &base, &CompareConfig::default());
        assert_eq!(rev.verdict, Verdict::Improvement, "{rev:?}");
    }

    #[test]
    fn guard_band_absorbs_small_shifts() {
        let base = draws(7, 60, |u| 1000.0 * (1.0 + 0.01 * u));
        let slow: Vec<f64> = base.iter().map(|x| x * 1.03).collect();
        let tight = compare(&base, &slow, &CompareConfig::default());
        assert_eq!(tight.verdict, Verdict::Regression, "{tight:?}");
        let guarded = compare(
            &base,
            &slow,
            &CompareConfig {
                min_effect: 0.05,
                ..CompareConfig::default()
            },
        );
        assert_eq!(guarded.verdict, Verdict::NoDifference, "{guarded:?}");
    }

    #[test]
    fn too_few_samples_is_inconclusive() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let got = compare(&a, &b, &CompareConfig::default());
        assert_eq!(got.verdict, Verdict::Inconclusive);
    }

    #[test]
    fn cliffs_delta_extremes_and_null() {
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[3.0, 4.0]), 1.0);
        assert_eq!(cliffs_delta(&[3.0, 4.0], &[1.0, 2.0]), -1.0);
        assert_eq!(cliffs_delta(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }
}
