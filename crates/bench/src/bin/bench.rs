//! The regression-gate CLI: runs bench suites as a first-class process
//! whose exit code reaches the shell (unlike `cargo bench`, which
//! swallows bench-target statuses behind its own).
//!
//! ```text
//! bench list
//! bench <suite> [filter] [--budget-ms N] [--capture out.json]
//! bench <suite> --compare benches/baselines/<suite>.json \
//!       [--confidence 99] [--min-effect 5] [--resamples 2000] \
//!       [--trajectory target/BENCH_trajectory.jsonl] [--commit abc123]
//! bench selftest [--budget-ms N] ...
//! bench trajectory [target/BENCH_trajectory.jsonl] \
//!       [--min-points 3] [--min-rise 5]
//! ```
//!
//! Exit codes: `0` ok / no regression, `1` could not run (bad args,
//! unknown suite, unreadable baseline — always a CI failure), `2`
//! regression confirmed at the configured confidence (gates CI), `3`
//! measurement inconclusive (noisy machine; report, don't gate).
//!
//! `selftest` proves the machinery before it is trusted: an interleaved
//! A/A of one identical closure must read "no difference", and an
//! interleaved A/B with a genuinely injected +10 % workload must read
//! "regression". Anything else exits 3 — the machine is too noisy to
//! gate on, and ci.sh reports that loudly instead of flaking.

use bench::stats::Verdict;
use bench::suites::{self, spin, GATE_SPIN_ITERS};
use bench::timer::{Harness, Options, EXIT_INCONCLUSIVE};

fn usage() {
    eprintln!("usage: bench <list|selftest|trajectory|SUITE> [filter] [--flags]");
    eprintln!("suites:");
    for (name, _) in suites::SUITES {
        eprintln!("  {name}");
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut raw = std::env::args().skip(1).peekable();
    let Some(cmd) = raw.next() else {
        usage();
        return 1;
    };
    // `trajectory` is a log reader with its own tiny flag set; it never
    // touches Options (no harness is built) and never gates (exit 1 only
    // for unusable input).
    if cmd == "trajectory" {
        return trajectory_cmd(raw.collect());
    }
    let mut opts = Options::from_env();
    if let Err(e) = opts.apply_args(raw) {
        eprintln!("bench: bad arguments: {e}");
        return 1;
    }
    match cmd.as_str() {
        "list" => {
            for (name, _) in suites::SUITES {
                println!("{name}");
            }
            0
        }
        "selftest" => selftest(opts),
        suite_name => {
            let Some(suite) = suites::find(suite_name) else {
                eprintln!("bench: unknown suite {suite_name:?}");
                usage();
                return 1;
            };
            let mut h = match Harness::with_options(suite_name, opts) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("bench: {e}");
                    return 1;
                }
            };
            suite(&mut h);
            h.finish()
        }
    }
}

/// `bench trajectory [file] [--min-points N] [--min-rise PCT]`: join the
/// append-only gate log into per-commit tables and flag monotone drifts
/// too slow for any single-commit gate to see. A reader, not a gate —
/// exits 0 whenever the log was readable (including when drifts are
/// found; acting on a cross-machine, cross-day log is a human call).
fn trajectory_cmd(args: Vec<String>) -> i32 {
    let mut file = std::path::PathBuf::from("target/BENCH_trajectory.jsonl");
    let mut min_points: usize = 3;
    let mut min_rise: f64 = 5.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--min-points" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()).filter(|&n| n >= 2) {
                    Some(n) => min_points = n,
                    None => {
                        eprintln!("bench trajectory: --min-points needs an integer >= 2");
                        return 1;
                    }
                }
            }
            "--min-rise" => {
                i += 1;
                match args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|x| x.is_finite() && *x >= 0.0)
                {
                    Some(x) => min_rise = x,
                    None => {
                        eprintln!("bench trajectory: --min-rise needs a percentage >= 0");
                        return 1;
                    }
                }
            }
            flag if flag.starts_with('-') => {
                eprintln!("bench trajectory: unknown flag {flag}");
                return 1;
            }
            path => file = std::path::PathBuf::from(path),
        }
        i += 1;
    }
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench trajectory: cannot read {}: {e}", file.display());
            return 1;
        }
    };
    let points = match bench::trajectory::parse_lines(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench trajectory: {}: {e}", file.display());
            return 1;
        }
    };
    if points.is_empty() {
        println!(
            "trajectory: {} is empty — nothing to join yet",
            file.display()
        );
        return 0;
    }
    print!(
        "{}",
        bench::trajectory::report(&points, min_points, min_rise)
    );
    0
}

/// The A/A + injected-slowdown self-test. Exit 0 when both expectations
/// hold, [`EXIT_INCONCLUSIVE`] when the machine is too noisy to trust.
fn selftest(mut opts: Options) -> i32 {
    if opts.min_effect == 0.0 {
        // A/A at exactly zero guard band has a (1 − confidence) false
        // alarm rate by construction; the self-test wants "is this
        // machine quiet enough to gate at the band ci.sh uses".
        opts.min_effect = 0.05;
    }
    let mut h = match Harness::with_options("selftest", opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bench selftest: {e}");
            return 1;
        }
    };
    let aa = h.bench_pair(
        "aa_identical_closures",
        || spin(GATE_SPIN_ITERS),
        || spin(GATE_SPIN_ITERS),
    );
    let injected = GATE_SPIN_ITERS + GATE_SPIN_ITERS / 10;
    let ab = h.bench_pair(
        "ab_injected_10pct_slowdown",
        || spin(GATE_SPIN_ITERS),
        || spin(injected),
    );
    let _ = h.finish(); // no baseline loaded → always 0; artifacts still written

    let aa_ok = matches!(&aa, Some(c) if c.verdict == Verdict::NoDifference);
    let ab_ok = matches!(&ab, Some(c) if c.verdict == Verdict::Regression);
    if aa_ok && ab_ok {
        println!("selftest: PASS — A/A quiet, injected +10% slowdown detected");
        0
    } else {
        if !aa_ok {
            eprintln!(
                "selftest: A/A of identical closures did not read no-difference: {:?}",
                aa.map(|c| c.verdict)
            );
        }
        if !ab_ok {
            eprintln!(
                "selftest: injected +10% slowdown was not flagged as a regression: {:?}",
                ab.map(|c| c.verdict)
            );
        }
        eprintln!(
            "selftest: INCONCLUSIVE (exit {EXIT_INCONCLUSIVE}) — machine too noisy to gate on"
        );
        EXIT_INCONCLUSIVE
    }
}
