//! A std-only micro-benchmark harness for `harness = false` bench targets.
//!
//! Deliberately small: warm up, then time whole-iteration batches until a
//! wall-clock budget is spent, and report min / median / mean ns per
//! iteration. That is enough signal to catch order-of-magnitude
//! regressions in the simulator's hot paths without any registry
//! dependency. For statistically rigorous comparisons, wire criterion
//! back in behind the crate's `external-bench` feature.
//!
//! CLI (matches what `cargo bench` passes): any `--flag` is ignored, the
//! first bare argument is a substring filter on bench names. The
//! per-bench time budget defaults to two seconds; override it with the
//! `SPIDER_BENCH_BUDGET_MS` environment variable.
//!
//! With `SPIDER_BENCH_JSON=<path>` set, [`Harness::finish`] also writes a
//! machine-readable artifact (one JSON object: target, budget, and per
//! bench min/median/mean ns plus sample counts) — ci.sh uses this to
//! archive `BENCH_campaign.json` as a non-gating build artifact.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One bench's measured summary, as archived in the JSON artifact.
#[derive(Debug, Clone)]
struct BenchStat {
    name: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    batches: usize,
    iters: u64,
}

/// Default per-bench measurement budget.
const DEFAULT_BUDGET_MS: u64 = 2_000;

/// Warm-up share of the budget (also caps warm-up iterations).
const WARMUP_DIVISOR: u32 = 10;

/// One bench target's runner: parses the CLI once, then times each
/// registered closure.
pub struct Harness {
    target: String,
    filter: Option<String>,
    budget: Duration,
    ran: usize,
    json_path: Option<std::path::PathBuf>,
    stats: Vec<BenchStat>,
    extras: Vec<(String, String)>,
}

impl Harness {
    /// Build from `std::env::args`, `SPIDER_BENCH_BUDGET_MS`, and
    /// `SPIDER_BENCH_JSON`.
    pub fn from_env(target: &str) -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget_ms = std::env::var("SPIDER_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_BUDGET_MS);
        let json_path = std::env::var_os("SPIDER_BENCH_JSON").map(std::path::PathBuf::from);
        println!("{target}: {budget_ms} ms budget per bench");
        Harness {
            target: target.to_string(),
            filter,
            budget: Duration::from_millis(budget_ms),
            ran: 0,
            json_path,
            stats: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// Median ns/iteration of the most recently completed bench, `None`
    /// when nothing has run yet (filtered out or no `bench` call). Lets a
    /// bench target derive headline numbers (events/sec) from a timing it
    /// just took without re-measuring.
    pub fn last_median_ns(&self) -> Option<f64> {
        self.stats.last().map(|s| s.median_ns)
    }

    /// Attach an extra top-level field to the JSON artifact. `value` must
    /// already be valid JSON (a number, string literal, or object) — it is
    /// spliced in verbatim. Benches use this to record derived headline
    /// numbers (e.g. events/sec) next to the raw per-bench timings.
    pub fn annotate(&mut self, key: &str, value: impl Into<String>) {
        self.extras.push((key.to_string(), value.into()));
    }

    /// Time `f`, printing one summary line. The closure's return value is
    /// passed through [`black_box`] so the work is not optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Warm-up: at least one iteration, at most a slice of the budget.
        // Batch size comes from the *fastest* warm-up observation — one
        // scheduling hiccup must not collapse batches to single calls.
        let warmup_deadline = Instant::now() + self.budget / WARMUP_DIVISOR;
        let mut fastest = Duration::MAX;
        loop {
            let start = Instant::now();
            black_box(f());
            fastest = fastest.min(start.elapsed());
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        // Size batches so each one runs ~1/20 of the budget, keeping timer
        // overhead negligible for nanosecond-scale bodies.
        let target = (self.budget / 20).as_nanos().max(1);
        let iters_per_batch = (target / fastest.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let mut batches: Vec<f64> = Vec::new(); // ns per iteration
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || batches.is_empty() {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            batches.push(elapsed.as_nanos() as f64 / iters_per_batch as f64);
            total_iters += iters_per_batch;
        }

        batches.sort_by(|a, b| a.total_cmp(b));
        let min = batches[0];
        let median = batches[batches.len() / 2];
        let mean = batches.iter().sum::<f64>() / batches.len() as f64;
        println!(
            "  {name:<44} min {:>12}  med {:>12}  mean {:>12}  ({} iters, {} batches)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            total_iters,
            batches.len(),
        );
        self.stats.push(BenchStat {
            name: name.to_string(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            batches: batches.len(),
            iters: total_iters,
        });
    }

    /// Final line; warns when a filter matched nothing (a typo'd filter
    /// silently benching nothing is worse than noise). Writes the JSON
    /// artifact when `SPIDER_BENCH_JSON` names a path.
    pub fn finish(self) {
        if self.ran == 0 {
            if let Some(filter) = &self.filter {
                eprintln!("warning: filter {filter:?} matched no benches");
            }
        }
        if let Some(path) = &self.json_path {
            match std::fs::write(path, self.json_artifact()) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        println!("done ({} benches)", self.ran);
    }

    /// The machine-readable run summary (stable key order, one object).
    fn json_artifact(&self) -> String {
        let mut out = format!(
            "{{\"target\":\"{}\",\"budget_ms\":{},\"benches\":[",
            self.target,
            self.budget.as_millis()
        );
        for (i, s) in self.stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"batches\":{},\"iters\":{}}}",
                s.name, s.min_ns, s.median_ns, s.mean_ns, s.batches, s.iters
            ));
        }
        out.push(']');
        for (key, value) in &self.extras {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str("}\n");
        out
    }
}

/// Render nanoseconds with an adaptive unit, e.g. `12.3 µs`.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }

    fn test_harness(filter: Option<&str>) -> Harness {
        Harness {
            target: "test".to_string(),
            filter: filter.map(str::to_string),
            budget: Duration::from_millis(20),
            ran: 0,
            json_path: None,
            stats: Vec::new(),
            extras: Vec::new(),
        }
    }

    #[test]
    fn bench_runs_the_closure_and_counts_it() {
        let mut h = test_harness(None);
        let mut calls = 0u64;
        h.bench("tiny", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "closure never ran");
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = test_harness(Some("match-me"));
        let mut calls = 0u64;
        h.bench("other", || calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(h.ran, 0);
        h.bench("does-match-me-yes", || calls += 1);
        assert!(calls > 0);
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn json_artifact_has_one_entry_per_bench() {
        let mut h = test_harness(None);
        h.bench("alpha", || 1u64);
        h.bench("beta", || 2u64);
        let json = h.json_artifact();
        assert!(json.starts_with("{\"target\":\"test\",\"budget_ms\":20,\"benches\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"name\":\"beta\""));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"median_ns\":").count(), 2);
    }

    #[test]
    fn annotations_become_top_level_json_fields() {
        let mut h = test_harness(None);
        h.bench("alpha", || 1u64);
        h.annotate("events_per_sec", "123456.7");
        h.annotate("scenario", "\"fig5\"");
        let json = h.json_artifact();
        assert!(json.contains("],\"events_per_sec\":123456.7,\"scenario\":\"fig5\"}"));
    }
}
