//! A std-only micro-benchmark harness for `harness = false` bench targets
//! and the `bench` regression-gate binary.
//!
//! The harness times whole-iteration batches and keeps **every per-batch
//! sample**, not just a min/median/mean summary: uncertainty is part of
//! the measurement. From the samples it reports a percentile-bootstrap
//! confidence interval for the median ([`crate::stats`]), and two
//! comparison modes build on that:
//!
//! * **Interleaved A/B** ([`Harness::bench_pair`]): two closures
//!   alternate batch-by-batch inside one run, so machine drift (thermal,
//!   scheduler) hits both sides equally and cancels out of the
//!   difference instead of biasing one side.
//! * **Compare-vs-baseline** (`--compare <baseline.json>`): re-measure
//!   each bench and compare its samples against a committed baseline's
//!   samples. Each bench's own batches are also split first-half vs
//!   second-half as an A/A stationarity check — a drifting machine
//!   reports [`stats::Verdict::Inconclusive`] loudly instead of
//!   fabricating a pass or a regression.
//!
//! Exit codes from [`Harness::finish`] (callers `std::process::exit`
//! with the return value): `0` no regression, `2` regression confirmed
//! at the configured confidence, `3` measurement inconclusive. ci.sh
//! gates on `2`, reports `3`, and treats anything else as a harness
//! failure.
//!
//! CLI (works both under `cargo bench -- <args>` and the `bench` bin):
//! the first bare argument is a substring filter on bench names;
//! `--budget-ms N`, `--compare <path>`, `--capture <path>` (write a
//! sample-bearing artifact usable as a committed baseline), `--json
//! <path>`, `--confidence <pct>`, `--min-effect <pct>`, `--resamples N`,
//! `--trajectory <path>` (append one JSONL line per bench), `--commit
//! <label>`. Environment defaults: `SPIDER_BENCH_BUDGET_MS`,
//! `SPIDER_BENCH_JSON`, `SPIDER_BENCH_TRAJECTORY`, `SPIDER_BENCH_COMMIT`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::baseline::Baseline;
use crate::stats::{self, Ci, CompareConfig, Comparison, Verdict};

/// Default per-bench measurement budget.
const DEFAULT_BUDGET_MS: u64 = 2_000;

/// Warm-up share of the budget (the warm-up window is `budget / this`).
const WARMUP_DIVISOR: u32 = 10;

/// Warm-up takes at least this many observations even past its window,
/// so batch sizing comes from a median that can see beyond a slow first
/// call (lazy init, cold caches).
const MIN_WARMUP_OBS: usize = 3;

/// Warm-up stops recording after this many observations (nanosecond
/// bodies would otherwise log millions of identical points).
const MAX_WARMUP_OBS: usize = 4_096;

/// Batches the measurement loop aims for within the budget; each batch
/// is sized to take roughly `budget / this`. ~40 per-batch samples keep
/// bootstrap intervals meaningful without timer overhead mattering.
const BATCHES_TARGET: u32 = 40;

/// Hard cap on recorded batches, bounding the sample vector (and the
/// artifact) even when warm-up mis-sizes batches far too small.
const MAX_BATCHES: usize = 256;

/// Process exit code for a confirmed regression.
pub const EXIT_REGRESSION: i32 = 2;

/// Process exit code for an inconclusive measurement (noisy or drifting
/// machine, too few samples): report, don't gate.
pub const EXIT_INCONCLUSIVE: i32 = 3;

/// Parsed harness options, from CLI args layered over environment
/// defaults.
#[derive(Debug, Clone)]
pub struct Options {
    /// Per-bench measurement budget.
    pub budget: Duration,
    /// Substring filter on bench names.
    pub filter: Option<String>,
    /// Artifact path (`--json`/`--capture`/`SPIDER_BENCH_JSON`).
    pub json_path: Option<PathBuf>,
    /// Baseline to compare against (`--compare`); enables compare mode.
    pub baseline_path: Option<PathBuf>,
    /// Two-sided confidence level in (0, 1).
    pub confidence: f64,
    /// Relative guard band for verdicts (0.05 = 5 %).
    pub min_effect: f64,
    /// Bootstrap resample count.
    pub resamples: u32,
    /// Trajectory JSONL path to append per-bench lines to.
    pub trajectory: Option<PathBuf>,
    /// Commit label stamped into trajectory lines.
    pub commit: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            budget: Duration::from_millis(DEFAULT_BUDGET_MS),
            filter: None,
            json_path: None,
            baseline_path: None,
            confidence: stats::DEFAULT_CONFIDENCE,
            min_effect: 0.0,
            resamples: stats::DEFAULT_RESAMPLES,
            trajectory: None,
            commit: None,
        }
    }
}

impl Options {
    /// Defaults with environment overlays (`SPIDER_BENCH_*`).
    pub fn from_env() -> Options {
        let mut opts = Options::default();
        if let Some(ms) = std::env::var("SPIDER_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            opts.budget = Duration::from_millis(ms);
        }
        opts.json_path = std::env::var_os("SPIDER_BENCH_JSON").map(PathBuf::from);
        opts.trajectory = std::env::var_os("SPIDER_BENCH_TRAJECTORY").map(PathBuf::from);
        opts.commit = std::env::var("SPIDER_BENCH_COMMIT").ok();
        opts
    }

    /// Layer CLI arguments on top. Unknown `--flags` are ignored (cargo
    /// passes its own); the first bare argument is the name filter.
    pub fn apply_args(&mut self, args: impl Iterator<Item = String>) -> Result<(), String> {
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| -> Result<String, String> {
                args.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--budget-ms" => {
                    let v = value_for("--budget-ms")?;
                    let ms = v
                        .parse::<u64>()
                        .map_err(|_| format!("--budget-ms: not an integer: {v:?}"))?;
                    self.budget = Duration::from_millis(ms);
                }
                "--json" | "--capture" => self.json_path = Some(PathBuf::from(value_for(&arg)?)),
                "--compare" => self.baseline_path = Some(PathBuf::from(value_for("--compare")?)),
                "--confidence" => {
                    let v = value_for("--confidence")?;
                    let pct = v
                        .parse::<f64>()
                        .map_err(|_| format!("--confidence: not a number: {v:?}"))?;
                    if !(50.0 < pct && pct < 100.0) {
                        return Err(format!("--confidence: want percent in (50, 100), got {v}"));
                    }
                    self.confidence = pct / 100.0;
                }
                "--min-effect" => {
                    let v = value_for("--min-effect")?;
                    let pct = v
                        .parse::<f64>()
                        .map_err(|_| format!("--min-effect: not a number: {v:?}"))?;
                    if !(0.0..100.0).contains(&pct) {
                        return Err(format!("--min-effect: want percent in [0, 100), got {v}"));
                    }
                    self.min_effect = pct / 100.0;
                }
                "--resamples" => {
                    let v = value_for("--resamples")?;
                    self.resamples =
                        v.parse::<u32>().ok().filter(|&n| n >= 100).ok_or_else(|| {
                            format!("--resamples: want an integer ≥ 100, got {v:?}")
                        })?;
                }
                "--trajectory" => self.trajectory = Some(PathBuf::from(value_for("--trajectory")?)),
                "--commit" => self.commit = Some(value_for("--commit")?),
                other if other.starts_with('-') => {} // cargo's own flags
                bare => {
                    if self.filter.is_none() {
                        self.filter = Some(bare.to_string());
                    }
                }
            }
        }
        Ok(())
    }

    fn compare_config(&self) -> CompareConfig {
        CompareConfig {
            confidence: self.confidence,
            resamples: self.resamples,
            min_effect: self.min_effect,
            ..CompareConfig::default()
        }
    }
}

/// One bench's measured record: summary statistics, the bootstrap CI of
/// the median, the raw per-batch samples, and (in compare mode) the
/// comparison outcome.
#[derive(Debug, Clone)]
struct BenchStat {
    name: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    /// Bootstrap CI of the median (ns/iter).
    ci: Ci,
    iters: u64,
    /// Per-batch ns/iter samples, ascending.
    samples_ns: Vec<f64>,
    /// First-half vs second-half A/A stationarity check (compare mode).
    split: Option<Comparison>,
    /// Comparison against the committed baseline (compare mode, when the
    /// baseline has this bench).
    vs_baseline: Option<Comparison>,
    /// Final per-bench verdict in compare mode (`None` in run mode).
    verdict: Option<Verdict>,
}

/// One bench target's runner: times each registered closure, optionally
/// comparing against a committed baseline.
pub struct Harness {
    target: String,
    opts: Options,
    baseline: Option<Baseline>,
    ran: usize,
    stats: Vec<BenchStat>,
    extras: Vec<(String, String)>,
}

impl Harness {
    /// Build from `std::env::args` and `SPIDER_BENCH_*` environment
    /// variables; prints the configuration line. Exits the process with
    /// code 1 on unusable arguments or an unreadable baseline — for a
    /// gating harness, "failed to start" must be distinct from any
    /// measurement outcome.
    pub fn from_env(target: &str) -> Harness {
        let mut opts = Options::from_env();
        if let Err(e) = opts.apply_args(std::env::args().skip(1)) {
            eprintln!("{target}: bad arguments: {e}");
            std::process::exit(1);
        }
        match Harness::with_options(target, opts) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("{target}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Build from explicit options (the `bench` bin's entry). Fails when
    /// the baseline file is missing or malformed.
    pub fn with_options(target: &str, opts: Options) -> Result<Harness, String> {
        let baseline = match &opts.baseline_path {
            Some(path) => {
                let b = Baseline::load(path)?;
                if b.target != target {
                    return Err(format!(
                        "baseline {} was captured from target {:?}, not {target:?}",
                        path.display(),
                        b.target
                    ));
                }
                Some(b)
            }
            None => None,
        };
        println!(
            "{target}: {} ms budget per bench{}",
            opts.budget.as_millis(),
            match &opts.baseline_path {
                Some(p) => format!(
                    ", comparing against {} @{:.1}% confidence, ±{:.1}% guard band",
                    p.display(),
                    opts.confidence * 100.0,
                    opts.min_effect * 100.0
                ),
                None => String::new(),
            }
        );
        Ok(Harness {
            target: target.to_string(),
            opts,
            baseline,
            ran: 0,
            stats: Vec::new(),
            extras: Vec::new(),
        })
    }

    /// True when a baseline is loaded and every bench is being gated.
    pub fn compare_mode(&self) -> bool {
        self.baseline.is_some()
    }

    /// Median ns/iteration of the most recently completed bench, `None`
    /// when nothing has run yet (filtered out or no `bench` call). Lets a
    /// bench target derive headline numbers (events/sec) from a timing it
    /// just took without re-measuring.
    pub fn last_median_ns(&self) -> Option<f64> {
        self.stats.last().map(|s| s.median_ns)
    }

    /// Attach an extra top-level field to the JSON artifact. `value` must
    /// already be valid JSON (a number, string literal, or object) — it is
    /// spliced in verbatim. Benches use this to record derived headline
    /// numbers (e.g. events/sec) next to the raw per-bench timings.
    pub fn annotate(&mut self, key: &str, value: impl Into<String>) {
        self.extras.push((key.to_string(), value.into()));
    }

    /// Warm `f` up and return the median ns of its warm-up observations.
    fn warmup<T, F: FnMut() -> T>(&self, f: &mut F) -> f64 {
        let deadline = Instant::now() + self.opts.budget / WARMUP_DIVISOR;
        let mut obs: Vec<f64> = Vec::new();
        loop {
            let start = Instant::now();
            black_box(f());
            if obs.len() < MAX_WARMUP_OBS {
                obs.push(start.elapsed().as_nanos() as f64);
            }
            if obs.len() >= MIN_WARMUP_OBS
                && (Instant::now() >= deadline || obs.len() >= MAX_WARMUP_OBS)
            {
                break;
            }
        }
        stats::median(&obs).max(1.0)
    }

    /// Iterations per batch so one batch takes ~`budget / batches_target`
    /// at `warm_median_ns` per call.
    fn iters_per_batch(&self, warm_median_ns: f64, batches_target: u32) -> u64 {
        let target_ns = (self.opts.budget / batches_target).as_nanos().max(1) as f64;
        (target_ns / warm_median_ns).clamp(1.0, (1u64 << 20) as f64) as u64
    }

    /// One timed batch: ns/iteration over `iters` calls.
    fn run_batch<T, F: FnMut() -> T>(f: &mut F, iters: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }

    /// Time `f`, printing one summary line (plus a comparison line in
    /// compare mode). The closure's return value passes through
    /// [`black_box`] so the work is not optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.opts.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Warm-up sizes batches from the *median* observation: robust
        // both to one scheduling hiccup (which must not collapse batches
        // to single calls) and to a slow first call / bimodal body
        // (where the fastest observation over-sizes batches and starves
        // the sample count).
        let warm_median = self.warmup(&mut f);
        let iters_per_batch = self.iters_per_batch(warm_median, BATCHES_TARGET);

        let mut samples: Vec<f64> = Vec::new(); // ns per iteration, per batch
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.opts.budget;
        while (Instant::now() < deadline && samples.len() < MAX_BATCHES) || samples.is_empty() {
            samples.push(Self::run_batch(&mut f, iters_per_batch));
            total_iters += iters_per_batch;
        }
        self.record(name, samples, total_iters);
    }

    /// Everything downstream of measurement: the stationarity split,
    /// summary statistics, compare-mode verdict, and the recorded stat.
    /// Split out so the verdict path is testable on synthetic samples.
    fn record(&mut self, name: &str, mut samples: Vec<f64>, total_iters: u64) {
        // Compare-mode stationarity check *before* sorting: the halves
        // are temporal (first half of the run vs second), so drift
        // within the run shows up as a phantom A/A difference.
        let cfg = self.opts.compare_config();
        let split = if self.compare_mode() {
            let (first, second) = samples.split_at(samples.len() / 2);
            Some(stats::compare(first, second, &cfg))
        } else {
            None
        };

        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = stats::percentile_sorted(&samples, 0.5);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let ci = stats::bootstrap_median_ci(
            &samples,
            self.opts.confidence,
            self.opts.resamples,
            stats::DEFAULT_SEED,
        );
        println!(
            "  {name:<44} med {:>12} [{}, {}]  min {:>12}  mean {:>12}  ({} iters, {} batches)",
            fmt_ns(median),
            fmt_ns(ci.lo),
            fmt_ns(ci.hi),
            fmt_ns(min),
            fmt_ns(mean),
            total_iters,
            samples.len(),
        );

        let vs_baseline = self
            .baseline
            .as_ref()
            .and_then(|b| b.samples_for(name))
            .map(|base| stats::compare(base, &samples, &cfg));
        let verdict = if self.compare_mode() {
            Some(Self::bench_verdict(
                name,
                split.as_ref(),
                vs_baseline.as_ref(),
            ))
        } else {
            None
        };

        self.stats.push(BenchStat {
            name: name.to_string(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            ci,
            iters: total_iters,
            samples_ns: samples,
            split,
            vs_baseline,
            verdict,
        });
    }

    /// Derive (and print) the per-bench compare-mode verdict.
    fn bench_verdict(
        name: &str,
        split: Option<&Comparison>,
        vs_baseline: Option<&Comparison>,
    ) -> Verdict {
        if let Some(split) = split {
            if split.verdict != Verdict::NoDifference {
                println!(
                    "    {name}: INCONCLUSIVE — first/second half A/A split shows {} \
                     ({}); machine not stationary during this run",
                    split.verdict.label(),
                    fmt_diff(&split.diff),
                );
                return Verdict::Inconclusive;
            }
        }
        match vs_baseline {
            None => {
                println!("    {name}: no baseline entry (new bench) — not gated");
                Verdict::NoDifference
            }
            Some(cmp) => {
                println!(
                    "    {name}: {} vs baseline — {} (δ={:+.2}, n={}→{})",
                    cmp.verdict.label(),
                    fmt_diff(&cmp.diff),
                    cmp.delta,
                    cmp.baseline_n,
                    cmp.candidate_n,
                );
                cmp.verdict
            }
        }
    }

    /// Interleaved A/B comparison of two closures under one budget:
    /// batches strictly alternate baseline/candidate so drift cancels
    /// out of the difference. Returns `None` when the name is filtered
    /// out. The verdict does **not** feed [`Harness::finish`]'s exit
    /// code — callers (the self-test) own the expectation.
    pub fn bench_pair<A, B, FA: FnMut() -> A, FB: FnMut() -> B>(
        &mut self,
        name: &str,
        mut baseline: FA,
        mut candidate: FB,
    ) -> Option<Comparison> {
        if let Some(filter) = &self.opts.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        self.ran += 1;

        // Shared batch size from the slower side's warm-up median keeps
        // the two sides' batch wall-times comparable.
        let warm_a = self.warmup(&mut baseline);
        let warm_b = self.warmup(&mut candidate);
        let iters = self.iters_per_batch(warm_a.max(warm_b), 2 * BATCHES_TARGET);

        let mut a: Vec<f64> = Vec::new();
        let mut b: Vec<f64> = Vec::new();
        let deadline = Instant::now() + self.opts.budget;
        while (Instant::now() < deadline && a.len() < MAX_BATCHES) || a.is_empty() {
            a.push(Self::run_batch(&mut baseline, iters));
            b.push(Self::run_batch(&mut candidate, iters));
        }

        let cmp = stats::compare(&a, &b, &self.opts.compare_config());
        println!(
            "  {name:<44} A med {:>12}  B med {:>12}  B−A {} — {} (δ={:+.2}, {}+{} batches)",
            fmt_ns(stats::median(&a)),
            fmt_ns(stats::median(&b)),
            fmt_diff(&cmp.diff),
            cmp.verdict.label(),
            cmp.delta,
            a.len(),
            b.len(),
        );
        for (side, samples) in [("a", a), ("b", b)] {
            let mut sorted = samples;
            sorted.sort_by(|x, y| x.total_cmp(y));
            let median = stats::percentile_sorted(&sorted, 0.5);
            let ci = stats::bootstrap_median_ci(
                &sorted,
                self.opts.confidence,
                self.opts.resamples,
                stats::DEFAULT_SEED,
            );
            self.stats.push(BenchStat {
                name: format!("{name}/{side}"),
                min_ns: sorted[0],
                median_ns: median,
                mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
                ci,
                iters: iters * sorted.len() as u64,
                samples_ns: sorted,
                split: None,
                vs_baseline: None,
                verdict: None,
            });
        }
        Some(cmp)
    }

    /// Print the final summary, write the JSON artifact and trajectory
    /// lines, and return the process exit code: `0` clean,
    /// [`EXIT_REGRESSION`] when any bench regressed,
    /// [`EXIT_INCONCLUSIVE`] when the worst outcome was an inconclusive
    /// measurement. Callers pass the value to `std::process::exit`.
    #[must_use = "pass the exit code to std::process::exit"]
    pub fn finish(self) -> i32 {
        if self.ran == 0 {
            if let Some(filter) = &self.opts.filter {
                eprintln!("warning: filter {filter:?} matched no benches");
            }
        }
        if let Some(path) = &self.opts.json_path {
            match std::fs::write(path, self.json_artifact()) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.opts.trajectory {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let lines = self.trajectory_lines();
                    match f.write_all(lines.as_bytes()) {
                        Ok(()) => println!("appended {} trajectory lines", self.stats.len()),
                        Err(e) => {
                            eprintln!("warning: could not append {}: {e}", path.display());
                        }
                    }
                }
                Err(e) => eprintln!("warning: could not open {}: {e}", path.display()),
            }
        }

        if !self.compare_mode() {
            println!("done ({} benches)", self.ran);
            return 0;
        }

        // Benches present in the baseline but never measured (filtered
        // out, or renamed since capture) are loudly non-gating.
        if let Some(b) = &self.baseline {
            for bench in &b.benches {
                if !self.stats.iter().any(|s| s.name == bench.name) {
                    eprintln!(
                        "warning: baseline bench {:?} was not measured this run",
                        bench.name
                    );
                }
            }
        }
        let worst = |v: Verdict| {
            self.stats
                .iter()
                .filter(|s| s.verdict == Some(v))
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
        };
        let regressions = worst(Verdict::Regression);
        let inconclusive = worst(Verdict::Inconclusive);
        let code = if !regressions.is_empty() {
            eprintln!(
                "{}: REGRESSION in {} (exit {EXIT_REGRESSION})",
                self.target,
                regressions.join(", ")
            );
            EXIT_REGRESSION
        } else if !inconclusive.is_empty() {
            eprintln!(
                "{}: inconclusive measurement for {} (exit {EXIT_INCONCLUSIVE}; \
                 report, don't gate)",
                self.target,
                inconclusive.join(", ")
            );
            EXIT_INCONCLUSIVE
        } else {
            println!("{}: no regression across {} benches", self.target, self.ran);
            0
        };
        code
    }

    /// The machine-readable run summary (stable key order, one object).
    /// The schema doubles as the committed-baseline format: per-bench
    /// raw `samples_ns` arrays ride next to the summary statistics.
    fn json_artifact(&self) -> String {
        let mut out = format!(
            "{{\"target\":\"{}\",\"budget_ms\":{},\"benches\":[",
            self.target,
            self.opts.budget.as_millis()
        );
        for (i, s) in self.stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\
                 \"ci_lo_ns\":{:.1},\"ci_hi_ns\":{:.1},\"confidence\":{},\"batches\":{},\
                 \"iters\":{}",
                s.name,
                s.min_ns,
                s.median_ns,
                s.mean_ns,
                s.ci.lo,
                s.ci.hi,
                self.opts.confidence,
                s.samples_ns.len(),
                s.iters
            ));
            if let Some(cmp) = &s.vs_baseline {
                out.push_str(&format!(
                    ",\"diff_pct\":{:.2},\"diff_lo_pct\":{:.2},\"diff_hi_pct\":{:.2},\
                     \"delta\":{:.3}",
                    cmp.diff.point * 100.0,
                    cmp.diff.lo * 100.0,
                    cmp.diff.hi * 100.0,
                    cmp.delta
                ));
            }
            if let Some(split) = &s.split {
                out.push_str(&format!(
                    ",\"aa_split_pct\":{:.2},\"aa_split_verdict\":\"{}\"",
                    split.diff.point * 100.0,
                    split.verdict.label()
                ));
            }
            if let Some(v) = s.verdict {
                out.push_str(&format!(",\"verdict\":\"{}\"", v.label()));
            }
            out.push_str(",\"samples_ns\":[");
            for (j, v) in s.samples_ns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{v:.1}"));
            }
            out.push_str("]}");
        }
        out.push(']');
        for (key, value) in &self.extras {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str("}\n");
        out
    }

    /// One JSONL line per bench for the per-commit trajectory artifact.
    fn trajectory_lines(&self) -> String {
        let commit = self.opts.commit.as_deref().unwrap_or("unknown");
        let mut out = String::new();
        for s in &self.stats {
            out.push_str(&format!(
                "{{\"commit\":\"{commit}\",\"target\":\"{}\",\"bench\":\"{}\",\
                 \"median_ns\":{:.1},\"ci_lo_ns\":{:.1},\"ci_hi_ns\":{:.1},\"batches\":{}",
                self.target,
                s.name,
                s.median_ns,
                s.ci.lo,
                s.ci.hi,
                s.samples_ns.len()
            ));
            if let Some(cmp) = &s.vs_baseline {
                out.push_str(&format!(",\"diff_pct\":{:.2}", cmp.diff.point * 100.0));
            }
            if let Some(v) = s.verdict {
                out.push_str(&format!(",\"verdict\":\"{}\"", v.label()));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Render a relative-difference interval, e.g. `+1.6% [−0.8%, +4.0%]`.
fn fmt_diff(ci: &Ci) -> String {
    format!(
        "{:+.1}% [{:+.1}%, {:+.1}%]",
        ci.point * 100.0,
        ci.lo * 100.0,
        ci.hi * 100.0
    )
}

/// Render nanoseconds with an adaptive unit, e.g. `12.3 µs`. Shared with
/// `crate::trajectory`'s per-commit tables.
pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }

    fn test_options(budget_ms: u64, filter: Option<&str>) -> Options {
        Options {
            budget: Duration::from_millis(budget_ms),
            filter: filter.map(str::to_string),
            ..Options::default()
        }
    }

    fn test_harness(budget_ms: u64, filter: Option<&str>) -> Harness {
        Harness {
            target: "test".to_string(),
            opts: test_options(budget_ms, filter),
            baseline: None,
            ran: 0,
            stats: Vec::new(),
            extras: Vec::new(),
        }
    }

    /// A deterministic spin workload, heavy enough to time.
    fn spin(iters: u64) -> u64 {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut acc = 0u64;
        for i in 0..iters {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            acc ^= x.rotate_left((i & 63) as u32);
        }
        acc
    }

    #[test]
    fn bench_runs_the_closure_and_counts_it() {
        let mut h = test_harness(20, None);
        let mut calls = 0u64;
        h.bench("tiny", || {
            calls += 1;
            calls
        });
        assert!(calls > 0, "closure never ran");
        assert_eq!(h.ran, 1);
        assert!(!h.stats[0].samples_ns.is_empty());
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = test_harness(20, Some("match-me"));
        let mut calls = 0u64;
        h.bench("other", || calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(h.ran, 0);
        h.bench("does-match-me-yes", || calls += 1);
        assert!(calls > 0);
        assert_eq!(h.ran, 1);
    }

    #[test]
    fn batch_count_sane_under_slow_first_call() {
        // A body whose first call is ~3 orders of magnitude slower than
        // every later call (lazy init). Batch sizing must come from the
        // warm-up *median*, which sees past the outlier; the batch count
        // must stay within [a useful floor, MAX_BATCHES].
        let mut h = test_harness(80, None);
        let mut first = true;
        h.bench("slow_first_call", || {
            if first {
                first = false;
                spin(3_000_000)
            } else {
                spin(2_000)
            }
        });
        let batches = h.stats[0].samples_ns.len();
        assert!(
            (5..=MAX_BATCHES).contains(&batches),
            "batch count {batches} out of sane bounds"
        );
        // And the recorded per-iter time reflects the steady state, not
        // the slow first call.
        let warm_call_ns = h.stats[0].median_ns;
        assert!(
            warm_call_ns < 1_000_000.0,
            "median {warm_call_ns} ns dominated by the cold first call"
        );
    }

    #[test]
    fn batch_count_capped_for_tiny_bodies() {
        let mut h = test_harness(40, None);
        h.bench("tiny_body", || 1u64);
        assert!(h.stats[0].samples_ns.len() <= MAX_BATCHES);
    }

    #[test]
    fn bench_pair_aa_reports_no_difference() {
        // Identical closures, interleaved: must not fabricate a
        // difference. A ±5 % guard band absorbs scheduler noise in the
        // shared-CI environment this test runs in.
        let mut h = test_harness(120, None);
        h.opts.min_effect = 0.05;
        let cmp = h
            .bench_pair("aa", || spin(2_000), || spin(2_000))
            .expect("not filtered");
        assert_eq!(
            cmp.verdict,
            Verdict::NoDifference,
            "A/A fabricated a difference: {cmp:?}"
        );
    }

    #[test]
    fn bench_pair_flags_large_injected_slowdown() {
        // A 2× injected slowdown is unmissable for a working harness.
        let mut h = test_harness(120, None);
        let cmp = h
            .bench_pair("ab_2x", || spin(2_000), || spin(4_000))
            .expect("not filtered");
        assert_eq!(cmp.verdict, Verdict::Regression, "{cmp:?}");
        assert!(cmp.diff.point > 0.3, "{cmp:?}");
    }

    #[test]
    fn bench_pair_sides_recorded_with_equal_batches() {
        let mut h = test_harness(40, None);
        h.bench_pair("pair", || spin(500), || spin(500));
        let a = h.stats.iter().find(|s| s.name == "pair/a").expect("side a");
        let b = h.stats.iter().find(|s| s.name == "pair/b").expect("side b");
        assert_eq!(a.samples_ns.len(), b.samples_ns.len());
    }

    #[test]
    fn json_artifact_has_samples_and_ci_per_bench() {
        let mut h = test_harness(20, None);
        h.bench("alpha", || 1u64);
        h.bench("beta", || 2u64);
        let json = h.json_artifact();
        assert!(json.starts_with("{\"target\":\"test\",\"budget_ms\":20,\"benches\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"name\":\"beta\""));
        assert_eq!(json.matches("\"median_ns\":").count(), 2);
        assert_eq!(json.matches("\"ci_lo_ns\":").count(), 2);
        assert_eq!(json.matches("\"samples_ns\":[").count(), 2);
        // The artifact parses as its own baseline format.
        let parsed = crate::baseline::Baseline::from_json(&json).expect("self-parse");
        assert_eq!(parsed.target, "test");
        assert_eq!(parsed.benches.len(), 2);
    }

    #[test]
    fn annotations_become_top_level_json_fields() {
        let mut h = test_harness(20, None);
        h.bench("alpha", || 1u64);
        h.annotate("events_per_sec", "123456.7");
        h.annotate("scenario", "\"fig5\"");
        let json = h.json_artifact();
        assert!(json.contains(",\"events_per_sec\":123456.7,\"scenario\":\"fig5\"}"));
    }

    /// Deterministic synthetic per-batch timings around `center` with a
    /// ±`jitter` relative spread. Using synthetic samples keeps the
    /// verdict-path tests bit-stable on any machine and build profile —
    /// the statistics are fully seeded, so the verdicts are facts, not
    /// measurements.
    fn synth(seed: u64, n: usize, center: f64, jitter: f64) -> Vec<f64> {
        let mut rng = sim_engine::rng::Rng::new(seed);
        (0..n)
            .map(|_| center * (1.0 + jitter * (2.0 * rng.f64() - 1.0)))
            .collect()
    }

    fn baseline_of(samples: &[f64]) -> crate::baseline::Baseline {
        crate::baseline::Baseline {
            target: "test".to_string(),
            benches: vec![crate::baseline::BaselineBench {
                name: "workload".to_string(),
                samples_ns: samples.to_vec(),
            }],
        }
    }

    /// Feed a candidate sample set against a committed baseline set
    /// through the full record→verdict→exit pipeline.
    fn compare_round(base: &[f64], candidate: Vec<f64>, min_effect: f64) -> (i32, Option<Verdict>) {
        let mut h = test_harness(100, None);
        h.opts.min_effect = min_effect;
        h.opts.baseline_path = Some(PathBuf::from("<in-memory>"));
        h.baseline = Some(baseline_of(base));
        h.ran += 1;
        h.record("workload", candidate, 100);
        let verdict = h.stats[0].verdict;
        (h.finish(), verdict)
    }

    #[test]
    fn compare_mode_aa_run_exits_zero() {
        // Same distribution, independent draws: exit 0 under the ±5 %
        // guard band the CI gate uses.
        let base = synth(1, 40, 1000.0, 0.02);
        let cand = synth(2, 40, 1000.0, 0.02);
        let (code, verdict) = compare_round(&base, cand, 0.05);
        assert_eq!(code, 0, "A/A compare must pass, verdict: {verdict:?}");
        assert_eq!(verdict, Some(Verdict::NoDifference));
    }

    #[test]
    fn compare_mode_flags_injected_slowdown_exit_2() {
        // Candidate runs 10 % slower than the committed baseline.
        let base = synth(1, 40, 1000.0, 0.02);
        let cand = synth(2, 40, 1100.0, 0.02);
        let (code, verdict) = compare_round(&base, cand, 0.05);
        assert_eq!(code, EXIT_REGRESSION, "verdict: {verdict:?}");
        assert_eq!(verdict, Some(Verdict::Regression));
    }

    #[test]
    fn compare_mode_drifting_run_is_inconclusive_exit_3() {
        // The candidate's own run drifts 20 % between its first and
        // second half — the intra-run A/A split must refuse to gate.
        let mut cand = synth(3, 20, 1000.0, 0.02);
        cand.extend(synth(4, 20, 1200.0, 0.02));
        let base = synth(1, 40, 1000.0, 0.02);
        let (code, verdict) = compare_round(&base, cand, 0.05);
        assert_eq!(code, EXIT_INCONCLUSIVE, "verdict: {verdict:?}");
        assert_eq!(verdict, Some(Verdict::Inconclusive));
    }

    #[test]
    fn compare_mode_new_bench_is_not_gated() {
        let mut h = test_harness(30, None);
        h.opts.min_effect = 0.05;
        h.baseline = Some(baseline_of(&synth(1, 40, 1000.0, 0.02)));
        h.ran += 1;
        h.record("new_name", synth(2, 40, 5000.0, 0.02), 40);
        assert_eq!(h.stats[0].verdict, Some(Verdict::NoDifference));
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn options_parse_flags_and_filter() {
        let mut opts = Options::default();
        opts.apply_args(
            [
                "--budget-ms",
                "123",
                "--compare",
                "base.json",
                "--confidence",
                "95",
                "--min-effect",
                "5",
                "--resamples",
                "500",
                "--commit",
                "abc123",
                "--trajectory",
                "traj.jsonl",
                "--bench", // cargo's own flag: ignored
                "fig5",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .expect("valid args");
        assert_eq!(opts.budget, Duration::from_millis(123));
        assert_eq!(opts.baseline_path, Some(PathBuf::from("base.json")));
        assert_eq!(opts.confidence, 0.95);
        assert_eq!(opts.min_effect, 0.05);
        assert_eq!(opts.resamples, 500);
        assert_eq!(opts.commit.as_deref(), Some("abc123"));
        assert_eq!(opts.trajectory, Some(PathBuf::from("traj.jsonl")));
        assert_eq!(opts.filter.as_deref(), Some("fig5"));
    }

    #[test]
    fn options_reject_bad_values() {
        for bad in [
            &["--budget-ms"][..],
            &["--budget-ms", "abc"],
            &["--confidence", "120"],
            &["--confidence", "12"],
            &["--min-effect", "-3"],
            &["--resamples", "3"],
        ] {
            let mut opts = Options::default();
            assert!(
                opts.apply_args(bad.iter().map(|s| s.to_string())).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn trajectory_lines_are_one_json_object_per_bench() {
        let mut h = test_harness(20, None);
        h.opts.commit = Some("deadbeef".to_string());
        h.bench("alpha", || 1u64);
        h.bench("beta", || 2u64);
        let lines = h.trajectory_lines();
        let rows: Vec<&str> = lines.lines().collect();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.starts_with("{\"commit\":\"deadbeef\",\"target\":\"test\""));
            assert!(row.ends_with('}'));
            assert!(row.contains("\"ci_lo_ns\":"));
        }
    }
}
