fn main() {
    bench::bench_target_main("des_fleet");
}
