//! Micro-benchmarks of the substrate hot paths; the bodies live in
//! [`bench::suites::substrates`] so the `bench` bin can gate on them.

fn main() {
    bench::bench_target_main("substrates");
}
