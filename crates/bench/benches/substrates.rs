//! Micro-benchmarks of the substrate hot paths: the costs every experiment
//! pays millions of times.

use std::hint::black_box;

use bench::timer::Harness;
use dhcp::message::DhcpMessage;
use sim_engine::queue::EventQueue;
use sim_engine::rng::Rng;
use sim_engine::time::Instant;
use tcp_lite::connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig};
use wifi_mac::channel::Channel;
use wifi_mac::frame::{Frame, Ssid};
use wifi_mac::phy::PhyConfig;
use wifi_mac::MacAddr;

fn main() {
    let mut h = Harness::from_env("substrates");

    h.bench("event_queue_push_pop_10k", || {
        let mut q = EventQueue::new();
        let mut rng = Rng::new(1);
        for i in 0..10_000u64 {
            q.push(Instant::from_micros(rng.range_u64(0, 1_000_000)), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    let mut rng = Rng::new(7);
    h.bench("rng_next_u64_x1M", || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    });
    let mut rng = Rng::new(7);
    h.bench("rng_normal_x100k", || {
        let mut acc = 0.0;
        for _ in 0..100_000 {
            acc += rng.normal(0.0, 1.0);
        }
        acc
    });

    let beacon = Frame::beacon(MacAddr::ap(1), Ssid::new("open-net"), Channel::CH6, 12345);
    let encoded = beacon.encode();
    h.bench("frame_encode_beacon", || beacon.encode());
    h.bench("frame_decode_beacon", || Frame::decode(&encoded).unwrap());

    let msg = DhcpMessage::ack(
        7,
        [2, 0, 0, 0, 0, 1],
        std::net::Ipv4Addr::new(10, 0, 0, 50),
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        3600,
    );
    let dhcp_encoded = msg.encode();
    h.bench("dhcp_encode_ack", || msg.encode());
    h.bench("dhcp_decode_ack", || {
        DhcpMessage::decode(&dhcp_encoded).unwrap()
    });

    let phy = PhyConfig::default();
    h.bench("phy_delivery_curve_x10k", || {
        let mut acc = 0.0;
        for i in 0..10_000 {
            acc += phy.data_delivery_prob(black_box(i as f64 / 50.0), 1500);
        }
        acc
    });

    h.bench("tcp_lossless_1MB_transfer", tcp_lossless_transfer);
    h.bench("mac_join_handshake", mac_join_handshake);

    // Campaign orchestrator hot paths: the per-shard costs a cached sweep
    // pays instead of re-simulating.
    let world = bench::bench_lab(
        7,
        spider_core::config::SpiderConfig::single_channel_multi_ap(Channel::CH1),
        10,
        2_000_000,
    );
    h.bench("campaign_shard_hash", || campaign::hash::shard_hash(&world));
    let blob = vec![0xA5u8; 4096];
    h.bench("campaign_content_hash_4k", || {
        campaign::hash::content_hash(&blob)
    });
    let result = spider_core::world::run(world.clone());
    let record = spider_core::report::RunRecord::to_json(&result).unwrap();
    h.bench("run_record_to_json", || {
        spider_core::report::RunRecord::to_json(&result).unwrap()
    });
    h.bench("run_record_from_json", || {
        spider_core::report::RunRecord::from_json(&record).unwrap()
    });
    let entry = campaign::manifest::ManifestEntry {
        shard: "(1) Channel 1, Multi-AP".to_string(),
        hash: campaign::hash::shard_hash(&world),
        wall_ms: 412,
        cache_hit: false,
        path: "reports/abc.json".to_string(),
    };
    let line = entry.to_line();
    h.bench("manifest_line_roundtrip", || {
        campaign::manifest::ManifestEntry::parse_line(black_box(&line)).unwrap()
    });

    h.finish();
}

fn tcp_lossless_transfer() -> u64 {
    let mut sender = BulkSender::new(TcpConfig::default(), 1, 1_000_000, 42);
    let mut receiver = BulkReceiver::new(1);
    let now = Instant::ZERO;
    let mut to_recv: Vec<_> = sender
        .start(now)
        .into_iter()
        .filter_map(|a| match a {
            SenderAction::Transmit(s) => Some(s),
            _ => None,
        })
        .collect();
    let mut delivered = 0u64;
    let mut guard = 0u32;
    while !to_recv.is_empty() {
        guard += 1;
        assert!(guard < 100_000);
        let mut to_send = Vec::new();
        for seg in to_recv.drain(..) {
            for a in receiver.on_segment(&seg, now) {
                match a {
                    ReceiverAction::Transmit(ack) => to_send.push(ack),
                    ReceiverAction::Deliver { bytes } => delivered += bytes,
                    ReceiverAction::Finished => {}
                }
            }
        }
        for ack in to_send {
            for a in sender.on_segment(&ack, now) {
                if let SenderAction::Transmit(seg) = a {
                    to_recv.push(seg);
                }
            }
        }
    }
    delivered
}

fn mac_join_handshake() -> Option<u16> {
    use wifi_mac::ap::{ApConfig, ApMac};
    use wifi_mac::client::{Action, ClientMac, JoinConfig};
    let mut ap = ApMac::new(ApConfig::open(1, "open", Channel::CH1));
    let mut client = ClientMac::new(
        MacAddr::local(1),
        ap.bssid(),
        Ssid::new("open"),
        JoinConfig {
            use_probe: false,
            ..JoinConfig::reduced()
        },
    );
    let mut rng = Rng::new(1);
    let now = Instant::ZERO;
    let mut to_ap: Vec<Frame> = client
        .start(now)
        .into_iter()
        .filter_map(|a| match a {
            Action::Send(f) => Some(f),
            _ => None,
        })
        .collect();
    let mut guard = 0;
    while !client.is_associated() {
        guard += 1;
        assert!(guard < 100, "handshake did not converge");
        let mut to_client = Vec::new();
        for f in to_ap.drain(..) {
            for act in ap.on_frame(&f, now, &mut rng) {
                if let wifi_mac::ap::ApAction::Send { frame, .. } = act {
                    to_client.push(frame);
                }
            }
        }
        for f in to_client {
            for act in client.handle_frame(&f) {
                if let Action::Send(out) = act {
                    to_ap.push(out);
                }
            }
        }
    }
    client.aid()
}
