//! Micro-benchmarks of the substrate hot paths: the costs every experiment
//! pays millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dhcp::message::DhcpMessage;
use sim_engine::queue::EventQueue;
use sim_engine::rng::Rng;
use sim_engine::time::Instant;
use tcp_lite::connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig};
use wifi_mac::channel::Channel;
use wifi_mac::frame::{Frame, Ssid};
use wifi_mac::phy::PhyConfig;
use wifi_mac::MacAddr;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Rng::new(1);
            for i in 0..10_000u64 {
                q.push(Instant::from_micros(rng.range_u64(0, 1_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64_x1M", |b| {
        let mut rng = Rng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    c.bench_function("rng_normal_x100k", |b| {
        let mut rng = Rng::new(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.normal(0.0, 1.0);
            }
            black_box(acc)
        })
    });
}

fn bench_frame_codec(c: &mut Criterion) {
    let beacon = Frame::beacon(MacAddr::ap(1), Ssid::new("open-net"), Channel::CH6, 12345);
    let encoded = beacon.encode();
    c.bench_function("frame_encode_beacon", |b| {
        b.iter(|| black_box(beacon.encode()))
    });
    c.bench_function("frame_decode_beacon", |b| {
        b.iter(|| black_box(Frame::decode(&encoded).unwrap()))
    });
}

fn bench_dhcp_codec(c: &mut Criterion) {
    let msg = DhcpMessage::ack(
        7,
        [2, 0, 0, 0, 0, 1],
        std::net::Ipv4Addr::new(10, 0, 0, 50),
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        3600,
    );
    let encoded = msg.encode();
    c.bench_function("dhcp_encode_ack", |b| b.iter(|| black_box(msg.encode())));
    c.bench_function("dhcp_decode_ack", |b| {
        b.iter(|| black_box(DhcpMessage::decode(&encoded).unwrap()))
    });
}

fn bench_phy_math(c: &mut Criterion) {
    let phy = PhyConfig::default();
    c.bench_function("phy_delivery_curve_x10k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10_000 {
                acc += phy.data_delivery_prob(black_box(i as f64 / 50.0), 1500);
            }
            black_box(acc)
        })
    });
}

fn bench_tcp_transfer(c: &mut Criterion) {
    c.bench_function("tcp_lossless_1MB_transfer", |b| {
        b.iter(|| {
            let mut sender = BulkSender::new(TcpConfig::default(), 1, 1_000_000, 42);
            let mut receiver = BulkReceiver::new(1);
            let now = Instant::ZERO;
            let mut to_recv: Vec<_> = sender
                .start(now)
                .into_iter()
                .filter_map(|a| match a {
                    SenderAction::Transmit(s) => Some(s),
                    _ => None,
                })
                .collect();
            let mut delivered = 0u64;
            let mut guard = 0u32;
            while !to_recv.is_empty() {
                guard += 1;
                assert!(guard < 100_000);
                let mut to_send = Vec::new();
                for seg in to_recv.drain(..) {
                    for a in receiver.on_segment(&seg, now) {
                        match a {
                            ReceiverAction::Transmit(ack) => to_send.push(ack),
                            ReceiverAction::Deliver { bytes } => delivered += bytes,
                            ReceiverAction::Finished => {}
                        }
                    }
                }
                for ack in to_send {
                    for a in sender.on_segment(&ack, now) {
                        if let SenderAction::Transmit(seg) = a {
                            to_recv.push(seg);
                        }
                    }
                }
            }
            black_box(delivered)
        })
    });
}

fn bench_join_handshake(c: &mut Criterion) {
    use sim_engine::rng::Rng;
    use wifi_mac::ap::{ApConfig, ApMac};
    use wifi_mac::client::{Action, ClientMac, JoinConfig};
    c.bench_function("mac_join_handshake", |b| {
        b.iter(|| {
            let mut ap = ApMac::new(ApConfig::open(1, "open", Channel::CH1));
            let mut client = ClientMac::new(
                MacAddr::local(1),
                ap.bssid(),
                Ssid::new("open"),
                JoinConfig { use_probe: false, ..JoinConfig::reduced() },
            );
            let mut rng = Rng::new(1);
            let now = Instant::ZERO;
            let mut to_ap: Vec<Frame> = client
                .start(now)
                .into_iter()
                .filter_map(|a| match a {
                    Action::Send(f) => Some(f),
                    _ => None,
                })
                .collect();
            let mut guard = 0;
            while !client.is_associated() {
                guard += 1;
                assert!(guard < 100, "handshake did not converge");
                let mut to_client = Vec::new();
                for f in to_ap.drain(..) {
                    for act in ap.on_frame(&f, now, &mut rng) {
                        if let wifi_mac::ap::ApAction::Send { frame, .. } = act {
                            to_client.push(frame);
                        }
                    }
                }
                for f in to_client {
                    for act in client.handle_frame(&f) {
                        if let Action::Send(out) = act {
                            to_ap.push(out);
                        }
                    }
                }
            }
            black_box(client.aid())
        })
    });
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_queue,
        bench_rng,
        bench_frame_codec,
        bench_dhcp_codec,
        bench_phy_math,
        bench_tcp_transfer,
        bench_join_handshake
);
criterion_main!(substrates);
