//! The DES hot-path benchmark: raw engine events/sec on a fig5-scale
//! world, plus microbenches of the two structures the allocation-free
//! hot path rests on (the slot-cancelling event queue and the interned
//! MacAddr table).
//!
//! The headline number is `events_per_sec` — total events the engine
//! delivers per wall-clock second while running the Fig. 5 vehicular
//! drive (multi-channel Spider, Amherst-like AP deployment, 60 s of
//! simulated time). It is derived from the median iteration time of the
//! `fig5_scale_world_60s` bench and the run's `events_delivered`
//! counter (identical every run — the event schedule is deterministic),
//! and is written to the JSON artifact next to the recorded
//! pre-optimization baseline so the speedup is visible in one file:
//!
//! ```text
//! SPIDER_BENCH_JSON=$PWD/target/BENCH_des.json cargo bench -p bench --bench des_core
//! ```
//!
//! The baseline can be re-measured on any machine by checking out the
//! commit before the hot-path rework, timing the same scenario with
//! `spider_core::world::run`, and exporting it as
//! `SPIDER_BENCH_BASELINE_EPS` when running this bench.

use bench::bench_vehicular;
use bench::timer::Harness;
use sim_engine::queue::EventQueue;
use sim_engine::time::{Duration, Instant};
use spider_core::config::{SchedulePolicy, SpiderConfig};
use spider_core::world::{run_with_diagnostics, WorldConfig};
use spider_core::MacIntern;
use wifi_mac::addr::MacAddr;
use wifi_mac::channel::Channel;

/// Events/sec of the pre-rework engine (commit before the slot-queue +
/// interning change) on this scenario: the best of three interleaved
/// back-to-back runs against that commit's worktree, same batching
/// harness, same machine as the committed artifact (best-of favors the
/// baseline, so recorded speedups are conservative). Machine dependent —
/// override with `SPIDER_BENCH_BASELINE_EPS` after re-measuring locally;
/// `None` drops the baseline/speedup fields from the artifact rather
/// than reporting a number from different hardware.
const RECORDED_MAIN_BASELINE_EPS: Option<f64> = Some(3_050_000.0);

/// The Fig. 5 join-measurement drive, exactly as `system_figures`
/// benches it: multi-channel Spider over the three orthogonal channels,
/// vehicular motion along an Amherst-like deployment, 60 s simulated.
fn fig5_world() -> WorldConfig {
    let mut spider = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(133));
    spider.schedule = SchedulePolicy::MultiChannel {
        slices: vec![
            (Channel::CH6, Duration::from_millis(200)),
            (Channel::CH1, Duration::from_millis(100)),
            (Channel::CH11, Duration::from_millis(100)),
        ],
    };
    bench_vehicular(11, spider, 60)
}

fn main() {
    let mut h = Harness::from_env("des_core");

    // One untimed run pins the deterministic per-run counters.
    let (_, probe) = run_with_diagnostics(fig5_world());

    h.bench("fig5_scale_world_60s", || {
        let (result, diag) = run_with_diagnostics(fig5_world());
        (result.total_bytes, diag.events_delivered)
    });
    if let Some(median_ns) = h.last_median_ns() {
        let eps = probe.events_delivered as f64 * 1e9 / median_ns;
        println!(
            "des_core: {} events per run, peak queue depth {}, {:.0} events/sec (median)",
            probe.events_delivered, probe.peak_queue_depth, eps
        );
        h.annotate("scenario", "\"fig5_scale_world_60s\"");
        h.annotate("events_delivered", format!("{}", probe.events_delivered));
        h.annotate("peak_queue_depth", format!("{}", probe.peak_queue_depth));
        h.annotate("events_per_sec", format!("{eps:.1}"));
        let baseline = std::env::var("SPIDER_BENCH_BASELINE_EPS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .or(RECORDED_MAIN_BASELINE_EPS);
        if let Some(base) = baseline {
            println!(
                "des_core: baseline {base:.0} events/sec, speedup {:.2}x",
                eps / base
            );
            h.annotate("baseline_events_per_sec", format!("{base:.1}"));
            h.annotate("speedup_vs_baseline", format!("{:.3}", eps / base));
        }
    }

    // Steady-state heap churn: a queue holding ~1024 timers where every
    // pop schedules a successor — the sim's dominant queue access
    // pattern. No cancellations; measures pure push/pop + slot recycling.
    h.bench("queue_churn_1024_timers", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1024u32 {
            t = t
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(Instant::from_micros(t % 10_000), i);
        }
        let mut acc = 0u64;
        for _ in 0..4096 {
            let (at, v) = q.pop().expect("queue stays full");
            acc = acc.wrapping_add(v as u64);
            t = t
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push(at + Duration::from_micros(1 + t % 1_000), v);
        }
        acc
    });

    // Cancel-heavy churn: half of every generation of timers is
    // cancelled before it fires (retransmission timers behave like
    // this). Exercises O(1) slot cancellation plus dead-entry skipping.
    h.bench("queue_cancel_heavy_churn_1024", || {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        let mut ids = Vec::with_capacity(1024);
        let mut acc = 0u64;
        for round in 0..4u64 {
            ids.clear();
            for i in 0..1024u32 {
                t = t
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ids.push(q.push(Instant::from_micros(round * 20_000 + t % 10_000), i));
            }
            for id in ids.iter().skip(1).step_by(2) {
                q.cancel(*id);
            }
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v as u64);
            }
        }
        acc
    });

    // BSSID resolution against a deployment-sized interned table: the
    // per-beacon lookup the world does instead of a BTreeMap walk.
    let table = MacIntern::build((0..64).map(MacAddr::ap));
    let addrs: Vec<MacAddr> = (0..64).rev().map(MacAddr::ap).collect();
    h.bench("intern_lookup_64_bssids", || {
        let mut acc = 0usize;
        for &a in &addrs {
            acc += table.get(a).expect("interned at build");
        }
        acc
    });

    h.finish();
}
