//! The DES hot-path benchmark: engine events/sec on a fig5-scale world
//! plus event-queue and intern-table microbenches; the bodies live in
//! [`bench::suites::des_core`] so the `bench` bin can gate on them.
//!
//! ```text
//! SPIDER_BENCH_JSON=$PWD/target/BENCH_des.json cargo bench -p bench --bench des_core
//! ```

fn main() {
    bench::bench_target_main("des_core");
}
