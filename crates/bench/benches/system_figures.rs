//! Benchmarks of scaled-down full-system runs, one per evaluation
//! experiment family; the bodies live in
//! [`bench::suites::system_figures`].

fn main() {
    bench::bench_target_main("system_figures");
}
