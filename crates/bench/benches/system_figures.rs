//! Benchmarks of scaled-down full-system runs — one per evaluation
//! experiment family. Each bench is the inner unit the corresponding
//! `experiments` target sweeps:
//!
//! * `fig05_06_join_cdfs` — the vehicular join-measurement drive behind
//!   Figs. 5–6 (and, with other timer settings, Table 3 / Figs. 11–12).
//! * `fig07_tcp_fraction` — the indoor one-AP TCP run of Fig. 7.
//! * `fig08_tcp_slices` — the equal-3-channel TCP run of Fig. 8.
//! * `fig09_backhaul_sweep` — the two-AP shaped-backhaul point of Fig. 9.
//! * `table2_fig10_eval` — the outdoor evaluation drive behind Table 2,
//!   Fig. 10, Table 4 and Figs. 13–14.

use bench::timer::Harness;
use bench::{bench_lab, bench_vehicular};
use sim_engine::time::Duration;
use spider_core::config::{SchedulePolicy, SpiderConfig};
use spider_core::world::run;
use wifi_mac::channel::Channel;

fn main() {
    let mut h = Harness::from_env("system_figures");

    h.bench("fig05_06_join_measurement_drive_60s", || {
        let mut spider = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(133));
        spider.schedule = SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH6, Duration::from_millis(200)),
                (Channel::CH1, Duration::from_millis(100)),
                (Channel::CH11, Duration::from_millis(100)),
            ],
        };
        let result = run(bench_vehicular(11, spider, 60));
        (result.assoc_times.count(), result.join_times.count())
    });

    h.bench("fig07_tcp_fraction_point_30s", || {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.schedule = SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH1, Duration::from_millis(280)),
                (Channel::CH6, Duration::from_millis(60)),
                (Channel::CH11, Duration::from_millis(60)),
            ],
        };
        let result = run(bench_lab(7, spider, 30, 50_000_000));
        result.total_bytes
    });

    h.bench("fig08_tcp_slice_point_30s", || {
        let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        spider.schedule = SchedulePolicy::equal_three(Duration::from_millis(200));
        let result = run(bench_lab(7, spider, 30, 50_000_000));
        (result.total_bytes, result.tcp_rtos)
    });

    h.bench("fig09_two_ap_aggregation_point_20s", || {
        let mut cfg = bench_lab(
            9,
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            20,
            2_000_000,
        );
        // Second AP on the same channel, like Fig. 9's (100,0,0) row.
        let mut second = cfg.sites[0].clone();
        second.id = 2;
        second.position = mobility::geometry::Point::new(8.0, 0.0);
        cfg.sites.push(second);
        let result = run(cfg);
        result.total_bytes
    });

    for (label, spider) in [
        (
            "single_channel_multi_ap",
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
        ),
        (
            "multi_channel_multi_ap",
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
        ),
        ("stock_madwifi", SpiderConfig::stock_madwifi()),
    ] {
        h.bench(&format!("table2_fig10/{label}"), || {
            let result = run(bench_vehicular(42, spider.clone(), 120));
            (result.total_bytes, result.connectivity)
        });
    }

    h.finish();
}
