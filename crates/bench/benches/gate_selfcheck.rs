//! The regression-gate self-check workload (a deterministic spin whose
//! cost `SPIDER_GATE_INJECT_PCT` scales); the body lives in
//! [`bench::suites::gate_selfcheck`]. ci.sh runs it via the `bench` bin
//! to prove the gate detects an injected slowdown before trusting it.

fn main() {
    bench::bench_target_main("gate_selfcheck");
}
