//! Benchmarks of the analytical artifacts (Figs. 2–4, Table 1); the
//! bodies live in [`bench::suites::model_figures`].

fn main() {
    bench::bench_target_main("model_figures");
}
