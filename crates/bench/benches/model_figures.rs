//! Benchmarks of the analytical artifacts: regenerating (scaled versions
//! of) Fig. 2, Fig. 3, Fig. 4 and Table 1.

use bench::timer::Harness;

use analytical::join_model::JoinModelParams;
use analytical::join_sim::simulate_join_probability;
use analytical::optimizer::{figure4_inputs, solve};
use sim_engine::rng::Rng;
use sim_engine::stats::Summary;
use wifi_mac::radio::RadioConfig;

fn main() {
    let mut h = Harness::from_env("model_figures");

    // Fig. 2 (model side): Eq. 7 across the fraction axis.
    h.bench("fig02_join_model_curve", || {
        let mut acc = 0.0;
        for step in 1..=20 {
            let f = step as f64 / 20.0;
            acc += JoinModelParams::figure2(f, 10.0).p_join(4.0);
        }
        acc
    });

    // Fig. 2 (simulation side): the Monte-Carlo corroborator.
    let params = JoinModelParams::figure2(0.4, 10.0);
    let mut rng = Rng::new(7);
    h.bench("fig02_join_simulation_1k_trials", || {
        simulate_join_probability(&params, 4.0, 1_000, &mut rng)
    });

    // Fig. 3: the βmax sweep for all six plotted curves.
    h.bench("fig03_beta_sweep", || {
        let mut acc = 0.0;
        for (f, w) in [
            (0.10, 0.0),
            (0.10, 0.007),
            (0.25, 0.007),
            (0.40, 0.007),
            (0.50, 0.007),
            (0.50, 0.0),
        ] {
            let mut beta = 0.6;
            while beta <= 10.0 {
                let p = JoinModelParams {
                    switch_delay: w,
                    ..JoinModelParams::figure2(f, beta)
                };
                acc += p.p_join(4.0);
                beta += 0.8;
            }
        }
        acc
    });

    // Fig. 4: one full optimizer solve (the unit the speed sweep repeats).
    h.bench("fig04_optimizer_solve", || {
        solve(&figure4_inputs(0.25, 5.0, 10.0))
    });

    // Table 1: the switch-latency distribution (mean ± σ, 0–4 interfaces).
    let cfg = RadioConfig::default();
    let mut rng = Rng::new(42);
    h.bench("table1_switch_latency_model", || {
        let mut out = Vec::with_capacity(5);
        for connected in 0..=4usize {
            let mut s = Summary::new();
            for _ in 0..1_000 {
                s.record(cfg.switch_latency(connected, &mut rng).as_secs_f64());
            }
            out.push((s.mean(), s.std_dev()));
        }
        out
    });

    h.finish();
}
