//! Reno congestion control (RFC 5681).
//!
//! Slow start, congestion avoidance, fast retransmit / fast recovery, and
//! the timeout collapse to one segment. The collapse + slow-start restart
//! is the mechanism behind Fig. 8's non-monotonic throughput curve: longer
//! off-channel absences don't just pause a flow, they reset its window.

/// Congestion-control phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential window growth below `ssthresh`.
    SlowStart,
    /// Linear (AIMD) growth above `ssthresh`.
    CongestionAvoidance,
    /// Between a fast retransmit and the ACK of the recovery point.
    FastRecovery,
}

/// Reno congestion controller, windows in bytes.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    phase: Phase,
    dup_acks: u32,
}

/// What the controller tells the sender to do after an ACK event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAction {
    /// Keep sending within the (possibly grown) window.
    None,
    /// Retransmit the first unacknowledged segment now (3rd duplicate ACK).
    FastRetransmit,
}

impl Reno {
    /// Initial window per RFC 5681 (min(4·MSS, max(2·MSS, 4380)) ≈ 3·MSS
    /// for a 1460 MSS; we use the common 2·MSS for an 802.11-era stack).
    pub fn new(mss: u32) -> Reno {
        assert!(mss > 0, "Reno: zero MSS");
        Reno {
            mss,
            cwnd: 2 * mss as u64,
            // A bounded initial threshold (many stacks use ~64 kB) keeps
            // the first slow-start burst from blowing straight through a
            // small drop-tail queue.
            ssthresh: 64 * 1024,
            phase: Phase::SlowStart,
            dup_acks: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Consecutive duplicate-ACK count.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// A new cumulative ACK arrived covering `acked_bytes` fresh bytes,
    /// with `flight` bytes outstanding before the ACK.
    pub fn on_new_ack(&mut self, acked_bytes: u64) -> CcAction {
        self.dup_acks = 0;
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += acked_bytes.min(self.mss as u64);
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                // cwnd += MSS·MSS/cwnd per ACK ≈ one MSS per RTT.
                let inc = (self.mss as u64 * self.mss as u64 / self.cwnd).max(1);
                self.cwnd += inc;
            }
            Phase::FastRecovery => {
                // Recovery point acknowledged: deflate to ssthresh.
                self.cwnd = self.ssthresh;
                self.phase = Phase::CongestionAvoidance;
            }
        }
        CcAction::None
    }

    /// NewReno (RFC 6582): a *partial* ACK during fast recovery — it
    /// acknowledges new data but not the whole pre-loss window, meaning
    /// another segment was lost. Deflate by the acknowledged amount,
    /// re-inflate by one MSS, and stay in recovery; the caller retransmits
    /// the next hole immediately instead of waiting for an RTO.
    pub fn on_partial_ack(&mut self, acked_bytes: u64) {
        debug_assert_eq!(
            self.phase,
            Phase::FastRecovery,
            "partial ACK outside recovery"
        );
        self.cwnd = self.cwnd.saturating_sub(acked_bytes).max(self.mss as u64) + self.mss as u64;
    }

    /// A duplicate ACK arrived with `flight` bytes outstanding.
    pub fn on_dup_ack(&mut self, flight: u64) -> CcAction {
        match self.phase {
            Phase::FastRecovery => {
                // Window inflation: each dup ACK signals a departure.
                self.cwnd += self.mss as u64;
                CcAction::None
            }
            _ => {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    self.ssthresh = (flight / 2).max(2 * self.mss as u64);
                    self.cwnd = self.ssthresh + 3 * self.mss as u64;
                    self.phase = Phase::FastRecovery;
                    CcAction::FastRetransmit
                } else {
                    CcAction::None
                }
            }
        }
    }

    /// A retransmission timeout fired with `flight` bytes outstanding:
    /// collapse to one segment and restart slow start (RFC 5681 §3.1).
    pub fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss as u64);
        self.cwnd = self.mss as u64;
        self.phase = Phase::SlowStart;
        self.dup_acks = 0;
    }

    /// Undo a timeout that F-RTO detection proved spurious: restore the
    /// saved window state and resume congestion avoidance (RFC 5682's
    /// response, simplified).
    pub fn undo_timeout(&mut self, cwnd: u64, ssthresh: u64) {
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.phase = Phase::CongestionAvoidance;
        self.dup_acks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(MSS);
        let start = cc.cwnd();
        // One RTT's worth of ACKs: every in-flight segment acknowledged.
        let segments = start / MSS as u64;
        for _ in 0..segments {
            cc.on_new_ack(MSS as u64);
        }
        assert_eq!(cc.cwnd(), 2 * start);
        assert_eq!(cc.phase(), Phase::SlowStart);
    }

    #[test]
    fn slow_start_exits_at_ssthresh() {
        let mut cc = Reno::new(MSS);
        cc.ssthresh = 8 * MSS as u64;
        while cc.phase() == Phase::SlowStart {
            cc.on_new_ack(MSS as u64);
        }
        assert!(cc.cwnd() >= cc.ssthresh());
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn congestion_avoidance_grows_one_mss_per_rtt() {
        let mut cc = Reno::new(MSS);
        cc.ssthresh = 2 * MSS as u64; // immediately in CA
        cc.on_new_ack(MSS as u64);
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
        let w0 = cc.cwnd();
        let acks_per_rtt = w0 / MSS as u64;
        for _ in 0..acks_per_rtt {
            cc.on_new_ack(MSS as u64);
        }
        let grown = cc.cwnd() - w0;
        assert!(
            (grown as i64 - MSS as i64).abs() <= MSS as i64 / 4,
            "grew {grown} bytes in one RTT, want ≈ {MSS}"
        );
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let mut cc = Reno::new(MSS);
        let flight = 10 * MSS as u64;
        assert_eq!(cc.on_dup_ack(flight), CcAction::None);
        assert_eq!(cc.on_dup_ack(flight), CcAction::None);
        assert_eq!(cc.on_dup_ack(flight), CcAction::FastRetransmit);
        assert_eq!(cc.phase(), Phase::FastRecovery);
        assert_eq!(cc.ssthresh(), 5 * MSS as u64);
        assert_eq!(cc.cwnd(), (5 + 3) * MSS as u64);
    }

    #[test]
    fn fast_recovery_inflates_then_deflates() {
        let mut cc = Reno::new(MSS);
        let flight = 10 * MSS as u64;
        for _ in 0..3 {
            cc.on_dup_ack(flight);
        }
        let inflated = cc.cwnd();
        cc.on_dup_ack(flight);
        assert_eq!(cc.cwnd(), inflated + MSS as u64);
        cc.on_new_ack(4 * MSS as u64);
        assert_eq!(cc.cwnd(), cc.ssthresh());
        assert_eq!(cc.phase(), Phase::CongestionAvoidance);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = Reno::new(MSS);
        for _ in 0..20 {
            cc.on_new_ack(MSS as u64);
        }
        let flight = cc.cwnd();
        cc.on_timeout(flight);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert_eq!(cc.ssthresh(), flight / 2);
        assert_eq!(cc.phase(), Phase::SlowStart);
    }

    #[test]
    fn ssthresh_floor_is_two_mss() {
        let mut cc = Reno::new(MSS);
        cc.on_timeout(MSS as u64); // tiny flight
        assert_eq!(cc.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn new_ack_resets_dup_count() {
        let mut cc = Reno::new(MSS);
        cc.on_dup_ack(10 * MSS as u64);
        cc.on_dup_ack(10 * MSS as u64);
        cc.on_new_ack(MSS as u64);
        assert_eq!(cc.dup_acks(), 0);
        // Needs three more dups to retransmit again.
        assert_eq!(cc.on_dup_ack(10 * MSS as u64), CcAction::None);
    }
}
