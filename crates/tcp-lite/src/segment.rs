//! TCP segments as they travel through the simulated network.
//!
//! A segment carries real header fields (connection id, sequence/ack
//! numbers, flags) through a compact wire encoding, but its payload is
//! *virtual*: only the length travels, since the experiments measure bytes
//! and timing, never content. [`Segment::wire_len`] accounts for the full
//! IP + TCP + payload size so airtime and backhaul serialization are
//! charged correctly.

use core::fmt;
use sim_engine::wire::{Bytes, Reader, Writer};

use crate::seq::SeqNum;

/// IPv4 (20) + TCP (20) header bytes charged per segment on the wire.
pub const HEADER_OVERHEAD: u32 = 40;

/// A TCP segment (virtual payload — see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Flow identifier (stands in for the 4-tuple).
    pub conn: u64,
    /// Sequence number of the first payload byte (or the SYN/FIN).
    pub seq: SeqNum,
    /// Cumulative acknowledgement, if the ACK flag is set.
    pub ack: Option<SeqNum>,
    /// Virtual payload length in bytes.
    pub len: u32,
    /// SYN flag.
    pub syn: bool,
    /// FIN flag.
    pub fin: bool,
    /// SACK blocks (RFC 2018): up to three `(start, len)` runs the
    /// receiver holds above the cumulative ACK.
    pub sack: [Option<(SeqNum, u32)>; 3],
    /// Timestamp value (RFC 7323 TSval): the sender's clock in µs.
    pub ts_us: u64,
    /// Timestamp echo (TSecr): the TSval of the segment this ACK answers.
    /// Gives retransmission-safe RTT samples (Karn-free).
    pub ts_echo_us: Option<u64>,
}

impl Segment {
    /// A pure ACK.
    pub fn ack_only(conn: u64, seq: SeqNum, ack: SeqNum) -> Segment {
        Segment {
            conn,
            seq,
            ack: Some(ack),
            len: 0,
            syn: false,
            fin: false,
            sack: [None; 3],
            ts_us: 0,
            ts_echo_us: None,
        }
    }

    /// A data segment.
    pub fn data(conn: u64, seq: SeqNum, len: u32) -> Segment {
        Segment {
            conn,
            seq,
            ack: None,
            len,
            syn: false,
            fin: false,
            sack: [None; 3],
            ts_us: 0,
            ts_echo_us: None,
        }
    }

    /// Sequence space this segment occupies (payload + SYN/FIN flags).
    pub fn seq_len(&self) -> u32 {
        self.len + u32::from(self.syn) + u32::from(self.fin)
    }

    /// The sequence number following this segment.
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_len()
    }

    /// Bytes this segment occupies on a link (headers + virtual payload).
    pub fn wire_len(&self) -> u32 {
        HEADER_OVERHEAD + self.len
    }

    /// Encode to the compact simulation wire format (25 bytes).
    pub fn encode(&self) -> Bytes {
        let mut buf = Writer::with_capacity(48);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encode into an existing [`Writer`]; hot paths reuse one scratch
    /// buffer across segments instead of allocating per encode.
    pub fn encode_into(&self, buf: &mut Writer) {
        buf.put_u64(self.conn);
        buf.put_u32(self.seq.value());
        match self.ack {
            Some(a) => {
                buf.put_u8(1);
                buf.put_u32(a.value());
            }
            None => {
                buf.put_u8(0);
                buf.put_u32(0);
            }
        }
        buf.put_u32(self.len);
        let flags = u8::from(self.syn) | (u8::from(self.fin) << 1);
        buf.put_u8(flags);
        let blocks = self.sack.iter().flatten().count() as u8;
        buf.put_u8(blocks);
        for (start, len) in self.sack.iter().flatten() {
            buf.put_u32(start.value());
            buf.put_u32(*len);
        }
        buf.put_u64(self.ts_us);
        match self.ts_echo_us {
            Some(e) => {
                buf.put_u8(1);
                buf.put_u64(e);
            }
            None => buf.put_u8(0),
        }
    }

    /// Decode from the simulation wire format.
    pub fn decode(bytes: &[u8]) -> Option<Segment> {
        let mut buf = Reader::new(bytes);
        let conn = buf.get_u64().ok()?;
        let seq = SeqNum::new(buf.get_u32().ok()?);
        let has_ack = buf.get_u8().ok()? != 0;
        let ack_raw = buf.get_u32().ok()?;
        let len = buf.get_u32().ok()?;
        let flags = buf.get_u8().ok()?;
        let blocks = buf.get_u8().ok()?.min(3);
        let mut sack = [None; 3];
        for slot in sack.iter_mut().take(blocks as usize) {
            let start = SeqNum::new(buf.get_u32().ok()?);
            let block_len = buf.get_u32().ok()?;
            *slot = Some((start, block_len));
        }
        let ts_us = buf.get_u64().ok()?;
        let has_echo = buf.get_u8().ok()? != 0;
        let ts_echo_us = if has_echo {
            Some(buf.get_u64().ok()?)
        } else {
            None
        };
        Some(Segment {
            conn,
            seq,
            ack: has_ack.then(|| SeqNum::new(ack_raw)),
            len,
            syn: flags & 1 != 0,
            fin: flags & 2 != 0,
            sack,
            ts_us,
            ts_echo_us,
        })
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{} seq={}", self.conn, self.seq)?;
        if let Some(a) = self.ack {
            write!(f, " ack={a}")?;
        }
        if self.syn {
            write!(f, " SYN")?;
        }
        if self.fin {
            write!(f, " FIN")?;
        }
        write!(f, " len={}", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut with_sack = Segment::ack_only(9, SeqNum::new(4), SeqNum::new(100));
        with_sack.sack = [
            Some((SeqNum::new(200), 1000)),
            Some((SeqNum::new(5000), 1460)),
            None,
        ];
        let cases = [
            Segment::data(7, SeqNum::new(100), 1460),
            {
                let mut s = Segment::data(1, SeqNum::new(0), 0);
                s.ack = Some(SeqNum::new(1));
                s.syn = true;
                s.ts_us = 123_456;
                s
            },
            {
                let mut s = Segment::data(u64::MAX, SeqNum::new(u32::MAX), 3);
                s.ack = Some(SeqNum::new(5));
                s.fin = true;
                s.ts_echo_us = Some(9_999);
                s
            },
            with_sack,
        ];
        for s in cases {
            assert_eq!(Segment::decode(&s.encode()), Some(s));
        }
    }

    #[test]
    fn decode_short_buffer_is_none() {
        assert_eq!(Segment::decode(&[0u8; 10]), None);
    }

    #[test]
    fn seq_len_counts_flags() {
        let mut syn = Segment::data(0, SeqNum::new(9), 0);
        syn.syn = true;
        assert_eq!(syn.seq_len(), 1);
        assert_eq!(syn.seq_end(), SeqNum::new(10));
        let data = Segment::data(0, SeqNum::new(10), 1000);
        assert_eq!(data.seq_len(), 1000);
        let mut fin = Segment::data(0, SeqNum::new(1010), 5);
        fin.fin = true;
        assert_eq!(fin.seq_len(), 6);
    }

    #[test]
    fn wire_len_includes_headers() {
        assert_eq!(Segment::data(0, SeqNum::new(0), 1460).wire_len(), 1500);
        assert_eq!(
            Segment::ack_only(0, SeqNum::new(0), SeqNum::new(1)).wire_len(),
            40
        );
    }
}
