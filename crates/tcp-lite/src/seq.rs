//! TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a 2³²-circle; comparisons are only meaningful
//! within a half-window, which [`SeqNum`]'s ordering helpers implement with
//! wrapping signed distance.

use core::fmt;
use core::ops::{Add, Sub};

/// A 32-bit TCP sequence number with circular comparison semantics.
///
/// ```
/// use tcp_lite::seq::SeqNum;
/// let a = SeqNum::new(u32::MAX - 1);
/// let b = a + 4; // wraps
/// assert!(a < b);
/// assert_eq!(b - a, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(u32);

impl SeqNum {
    /// Construct from the raw 32-bit value.
    pub const fn new(v: u32) -> SeqNum {
        SeqNum(v)
    }

    /// The raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Signed circular distance from `other` to `self`
    /// (positive if `self` is ahead).
    pub fn distance(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// The larger (further ahead) of two sequence numbers.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// True if `self` lies in the half-open circular interval
    /// `[start, start+len)`.
    pub fn within(self, start: SeqNum, len: u32) -> bool {
        let off = self.0.wrapping_sub(start.0);
        off < len
    }
}

impl PartialOrd for SeqNum {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqNum {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.distance(*other).cmp(&0)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    /// Circular distance, assuming `self` is at or ahead of `rhs`.
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_without_wrap() {
        assert!(SeqNum::new(5) < SeqNum::new(10));
        assert!(SeqNum::new(10) > SeqNum::new(5));
        assert!(SeqNum::new(7) == SeqNum::new(7));
    }

    #[test]
    fn ordering_across_wrap() {
        let before = SeqNum::new(u32::MAX - 10);
        let after = before + 20;
        assert!(before < after);
        assert!(after > before);
        assert_eq!(after - before, 20);
    }

    #[test]
    fn distance_signs() {
        let a = SeqNum::new(100);
        assert_eq!((a + 5).distance(a), 5);
        assert_eq!(a.distance(a + 5), -5);
    }

    #[test]
    fn within_interval() {
        let start = SeqNum::new(u32::MAX - 2);
        assert!(start.within(start, 1));
        assert!((start + 4).within(start, 5));
        assert!(!(start + 5).within(start, 5));
        assert!(!SeqNum::new(0).within(SeqNum::new(1), 10));
    }

    #[test]
    fn max_picks_ahead() {
        let a = SeqNum::new(u32::MAX);
        let b = a + 3;
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
