//! TCP connection state machines: a bulk-transfer sender and its receiver.
//!
//! The paper's traffic is downlink bulk HTTP ("downloading large files over
//! HTTP"), so the substrate provides exactly that shape: [`BulkSender`]
//! lives at the wired content server and pushes `total_bytes` toward the
//! vehicle; [`BulkReceiver`] lives on the client, delivers in-order bytes
//! to the metrics layer, and generates the cumulative/duplicate ACKs that
//! drive the sender's Reno machinery.
//!
//! Both machines are pure (segments/timers in, actions out) like the MAC
//! and DHCP layers. Simplifications (documented in DESIGN.md): immediate
//! ACKs (no delayed-ACK timer), no SACK — loss recovery is Reno fast
//! retransmit plus RTO, which is the mechanism the paper's Figs. 7–8
//! exercise.

use sim_engine::time::{Duration, Instant};

use crate::congestion::{CcAction, Reno};
use crate::rtt::RttEstimator;
use crate::segment::Segment;
use crate::seq::SeqNum;

/// Connection parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size, bytes.
    pub mss: u32,
    /// Receiver window advertised to the peer, bytes.
    pub rwnd: u64,
    /// RTO floor.
    pub min_rto: Duration,
    /// RTO ceiling.
    pub max_rto: Duration,
    /// Consecutive RTOs before the connection is declared dead.
    pub max_timeouts: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            rwnd: 256 * 1024,
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            max_timeouts: 15,
        }
    }
}

/// Sender outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Put this segment on the wire toward the receiver.
    Transmit(Segment),
    /// Arm the retransmission timer; deliver `token` back via
    /// [`BulkSender::on_timer`] after `after`. Newer tokens supersede.
    ArmTimer {
        /// Delay until expiry.
        after: Duration,
        /// Generation token.
        token: u64,
    },
    /// The handshake completed.
    Connected,
    /// All payload bytes were acknowledged (and the FIN followed).
    Complete,
    /// Too many consecutive timeouts; the connection is abandoned.
    Aborted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    Closed,
    SynSent,
    Established,
    FinSent,
    Done,
    Aborted,
}

/// The bulk-data sender (server side).
#[derive(Debug, Clone)]
pub struct BulkSender {
    config: TcpConfig,
    conn: u64,
    cc: Reno,
    rtt: RttEstimator,
    state: SenderState,
    isn: SeqNum,
    /// First unacknowledged sequence number.
    snd_una: SeqNum,
    /// Next sequence number to transmit.
    snd_nxt: SeqNum,
    /// Sequence number just past the final payload byte.
    data_end: SeqNum,
    total_bytes: u64,
    timer_gen: u64,
    timeouts_in_a_row: u32,
    total_timeouts: u64,
    fast_retransmits: u64,
    /// NewReno recovery point: `snd_nxt` when fast recovery was entered.
    recover: SeqNum,
    /// Eifel/F-RTO state: `(pre-timeout snd_nxt, cwnd, ssthresh,
    /// retransmission send time µs)` saved at an RTO so a spurious timeout
    /// can be detected (RFC 3522: the next ACK echoes a timestamp *older*
    /// than the retransmission) and undone.
    frto: Option<(SeqNum, u64, u64, u64)>,
    /// SACK scoreboard: disjoint `(start, end)` runs the receiver reported
    /// holding, sorted ascending, all above `snd_una`.
    sacked: Vec<(SeqNum, SeqNum)>,
    /// Holes already retransmitted in the current recovery episode.
    holes_retransmitted: Vec<SeqNum>,
    /// Duplicate ACKs seen since recovery last made forward progress; used
    /// to detect a *lost retransmission* and re-send the front hole.
    stalled_dup_acks: u32,
    /// Diagnostics: segments emitted by the window pump.
    pub dbg_pump: u64,
    /// Diagnostics: segments emitted by retransmission paths.
    pub dbg_retx: u64,
}

impl BulkSender {
    /// A sender for connection `conn` that will push `total_bytes`.
    /// `isn_seed` keeps initial sequence numbers deterministic per flow.
    pub fn new(config: TcpConfig, conn: u64, total_bytes: u64, isn_seed: u32) -> BulkSender {
        let isn = SeqNum::new(isn_seed);
        BulkSender {
            config,
            conn,
            cc: Reno::new(1),
            rtt: RttEstimator::default(),
            state: SenderState::Closed,
            isn,
            snd_una: isn,
            snd_nxt: isn,
            data_end: isn + 1 + (total_bytes.min(u32::MAX as u64 / 2) as u32),
            total_bytes,
            timer_gen: 0,
            timeouts_in_a_row: 0,
            total_timeouts: 0,
            fast_retransmits: 0,
            recover: isn,
            frto: None,
            sacked: Vec::new(),
            holes_retransmitted: Vec::new(),
            stalled_dup_acks: 0,
            dbg_pump: 0,
            dbg_retx: 0,
        }
    }

    /// Bytes of payload acknowledged so far.
    pub fn bytes_acked(&self) -> u64 {
        // Subtract the SYN once it is acknowledged.
        let acked_seq = self.snd_una - self.isn;
        (acked_seq as u64).saturating_sub(1).min(self.total_bytes)
    }

    /// True after every byte (and the FIN) is acknowledged.
    pub fn is_complete(&self) -> bool {
        self.state == SenderState::Done
    }

    /// True if the connection was abandoned after repeated timeouts.
    pub fn is_aborted(&self) -> bool {
        self.state == SenderState::Aborted
    }

    /// Congestion window (diagnostics).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Smoothed RTT (diagnostics).
    pub fn srtt(&self) -> Option<Duration> {
        self.rtt.srtt()
    }

    /// Total RTO events (diagnostics; Fig. 8's mechanism).
    pub fn timeout_count(&self) -> u64 {
        self.total_timeouts
    }

    /// Total fast retransmits (diagnostics).
    pub fn fast_retransmit_count(&self) -> u64 {
        self.fast_retransmits
    }

    fn flight(&self) -> u64 {
        (self.snd_nxt - self.snd_una) as u64
    }

    /// Bytes currently unacknowledged (diagnostics).
    pub fn flight_bytes(&self) -> u64 {
        self.flight()
    }

    fn arm(&mut self) -> SenderAction {
        self.timer_gen += 1;
        SenderAction::ArmTimer {
            after: self.rtt.rto(),
            token: self.timer_gen,
        }
    }

    /// Open the connection: transmit SYN.
    ///
    /// # Panics
    /// Panics unless the sender is freshly constructed.
    pub fn start(&mut self, now: Instant) -> Vec<SenderAction> {
        assert_eq!(
            self.state,
            SenderState::Closed,
            "BulkSender::start: already started"
        );
        self.state = SenderState::SynSent;
        self.cc = Reno::new(self.config.mss);
        let mut syn = Segment::data(self.conn, self.isn, 0);
        syn.syn = true;
        syn.ts_us = now.as_micros();
        self.snd_nxt = self.isn + 1;
        vec![SenderAction::Transmit(syn), self.arm()]
    }

    /// Fill the window with new data segments, pushing into `out`.
    fn pump_into(&mut self, now: Instant, out: &mut Vec<SenderAction>) {
        if self.state != SenderState::Established {
            return;
        }
        let wnd = self.cc.cwnd().min(self.config.rwnd);
        while self.flight() < wnd && self.snd_nxt != self.data_end {
            // Never resend runs the receiver already holds (post-RTO
            // go-back-N with a surviving SACK scoreboard).
            if let Some(&(_, run_end)) = self
                .sacked
                .iter()
                .find(|&&(st, e)| self.snd_nxt.within(st, e - st))
            {
                self.snd_nxt = run_end;
                continue;
            }
            let remaining = self.data_end - self.snd_nxt;
            let available = (wnd - self.flight()).min(remaining as u64) as u32;
            if available == 0 {
                break;
            }
            // Nagle for bulk data: while more payload remains, wait for a
            // full MSS of window instead of dribbling tiny segments whose
            // per-frame overhead would swamp the air.
            if available < self.config.mss && remaining as u64 > available as u64 {
                break;
            }
            let len = available.min(self.config.mss);
            let mut seg = Segment::data(self.conn, self.snd_nxt, len);
            seg.ts_us = now.as_micros();
            self.snd_nxt = seg.seq_end();
            self.dbg_pump += 1;
            out.push(SenderAction::Transmit(seg));
        }
        // All payload sent: follow with FIN.
        if self.snd_nxt == self.data_end && self.flight() < wnd {
            self.state = SenderState::FinSent;
            let mut fin = Segment::data(self.conn, self.snd_nxt, 0);
            fin.fin = true;
            fin.ts_us = now.as_micros();
            self.snd_nxt = self.snd_nxt + 1;
            out.push(SenderAction::Transmit(fin));
        }
    }

    /// Merge the segment's SACK blocks into the scoreboard.
    fn absorb_sack(&mut self, seg: &Segment) {
        for &(start, len) in seg.sack.iter().flatten() {
            if len == 0 {
                continue;
            }
            let end = start + len;
            if end.distance(self.snd_una) <= 0 {
                continue; // entirely below the cumulative ACK
            }
            let start = if start.distance(self.snd_una) < 0 {
                self.snd_una
            } else {
                start
            };
            self.sacked.push((start, end));
        }
        // Normalize: clamp below snd_una, sort, merge overlaps.
        for r in &mut self.sacked {
            if r.0.distance(self.snd_una) < 0 {
                r.0 = self.snd_una;
            }
        }
        self.sacked
            .retain(|&(st, e)| e.distance(st) > 0 && e.distance(self.snd_una) > 0);
        self.sacked.sort_by_key(|r| r.0);
        let mut merged: Vec<(SeqNum, SeqNum)> = Vec::with_capacity(self.sacked.len());
        for &(st, e) in &self.sacked {
            match merged.last_mut() {
                Some(last) if st.distance(last.1) <= 0 => last.1 = last.1.max(e),
                _ => merged.push((st, e)),
            }
        }
        self.sacked = merged;
    }

    /// True if `seq` is covered by a SACKed run.
    fn is_sacked(&self, seq: SeqNum) -> bool {
        self.sacked.iter().any(|&(st, e)| seq.within(st, e - st))
    }

    /// Retransmit up to `budget` un-retransmitted MSS-sized chunks from the
    /// holes below the highest SACKed byte (the core of RFC 6675 loss
    /// recovery: repair a whole burst within about one RTT instead of one
    /// hole per RTT).
    fn sack_retransmits_into(&mut self, now: Instant, budget: usize, out: &mut Vec<SenderAction>) {
        let Some(&(_, highest)) = self.sacked.last() else {
            return;
        };
        let mss = self.config.mss;
        let mut chunk = self.snd_una;
        let mut emitted = 0usize;
        while emitted < budget && chunk.distance(highest) < 0 {
            if self.is_sacked(chunk) {
                // Jump to the end of the covering run.
                let run_end = self
                    .sacked
                    .iter()
                    .find(|&&(st, e)| chunk.within(st, e - st))
                    .map(|&(_, e)| e)
                    // simlint: allow(panic-path) — SACK scoreboard invariant: is_sacked(chunk) means some run covers it; a miss is scoreboard corruption that must be loud
                    .expect("is_sacked implies a covering run");
                chunk = run_end;
                continue;
            }
            // Hole length: up to one MSS, clipped at the next SACKed run
            // and the end of payload.
            let mut len = mss;
            for &(st, _) in &self.sacked {
                if chunk.distance(st) < 0 {
                    len = len.min(st - chunk);
                    break;
                }
            }
            if chunk.distance(self.data_end) >= 0 {
                break; // only the FIN remains; the RTO path handles it
            }
            len = len.min(self.data_end - chunk);
            if len == 0 {
                break;
            }
            if !self.holes_retransmitted.contains(&chunk) {
                let mut seg = Segment::data(self.conn, chunk, len);
                seg.ts_us = now.as_micros();
                self.holes_retransmitted.push(chunk);
                self.dbg_retx += 1;
                out.push(SenderAction::Transmit(seg));
                emitted += 1;
            }
            chunk = chunk + len;
        }
    }

    /// Retransmit the earliest unacknowledged segment.
    fn retransmit_front(&mut self, now: Instant) -> SenderAction {
        let mut seg = if self.snd_una == self.isn {
            // SYN never acknowledged.
            let mut s = Segment::data(self.conn, self.isn, 0);
            s.syn = true;
            s
        } else if self.snd_una == self.data_end {
            // Only the FIN is outstanding.
            let mut s = Segment::data(self.conn, self.snd_una, 0);
            s.fin = true;
            s
        } else {
            let remaining = self.data_end - self.snd_una;
            let len = remaining.min(self.config.mss);
            Segment::data(self.conn, self.snd_una, len)
        };
        seg.ts_us = now.as_micros();
        self.dbg_retx += 1;
        SenderAction::Transmit(seg)
    }

    /// Feed an incoming segment (an ACK from the receiver).
    pub fn on_segment(&mut self, seg: &Segment, now: Instant) -> Vec<SenderAction> {
        let mut out = Vec::new();
        self.on_segment_into(seg, now, &mut out);
        out
    }

    /// [`Self::on_segment`], pushing actions into a caller-owned buffer so
    /// the per-event hot path reuses one allocation across segments.
    pub fn on_segment_into(&mut self, seg: &Segment, now: Instant, out: &mut Vec<SenderAction>) {
        if seg.conn != self.conn {
            return;
        }
        let Some(ack) = seg.ack else {
            return;
        };
        if matches!(self.state, SenderState::Established | SenderState::FinSent) {
            self.absorb_sack(seg);
        }
        match self.state {
            SenderState::SynSent if seg.syn && ack == self.isn + 1 => {
                self.snd_una = ack;
                if let Some(echo) = seg.ts_echo_us {
                    self.rtt
                        .sample(now.saturating_since(Instant::from_micros(echo)));
                }
                self.state = SenderState::Established;
                self.timeouts_in_a_row = 0;
                out.push(SenderAction::Connected);
                // ACK the SYN-ACK so the receiver also establishes.
                out.push(SenderAction::Transmit(Segment::ack_only(
                    self.conn,
                    self.snd_nxt,
                    seg.seq_end(),
                )));
                self.pump_into(now, out);
                out.push(self.arm());
            }
            SenderState::SynSent => {}
            SenderState::Established | SenderState::FinSent => {
                if ack.distance(self.snd_una) > 0 {
                    // New cumulative ACK.
                    let acked = (ack - self.snd_una) as u64;
                    self.snd_una = ack;
                    // A post-RTO snd_nxt can sit below a jumping cumulative
                    // ACK (the receiver reassembled past it); never let the
                    // send point fall behind the ACK point.
                    self.snd_nxt = self.snd_nxt.max(self.snd_una);
                    self.timeouts_in_a_row = 0;
                    self.stalled_dup_acks = 0;
                    if let Some((prev_nxt, prev_cwnd, prev_ssthresh, retx_ts)) = self.frto {
                        match seg.ts_echo_us {
                            // The ACK was triggered by a segment sent before
                            // the RTO retransmission: the timeout was
                            // spurious. Undo the collapse and resume where
                            // the original flight left off (RFC 3522).
                            Some(echo) if echo < retx_ts => {
                                self.frto = None;
                                self.cc.undo_timeout(prev_cwnd, prev_ssthresh);
                                self.snd_nxt = self.snd_nxt.max(prev_nxt);
                                self.recover = self.snd_una;
                            }
                            // Triggered by the retransmission itself: the
                            // timeout was genuine; proceed normally.
                            Some(_) => self.frto = None,
                            None => {}
                        }
                    }
                    // RTT from the timestamp echo (RFC 7323): accurate even
                    // across retransmissions and cumulative-ACK jumps.
                    if let Some(echo) = seg.ts_echo_us {
                        self.rtt
                            .sample(now.saturating_since(Instant::from_micros(echo)));
                    }
                    let in_recovery = self.cc.phase() == crate::congestion::Phase::FastRecovery;
                    if in_recovery && ack.distance(self.recover) < 0 {
                        // NewReno partial ACK: another hole in the pre-loss
                        // window. Retransmit it now; stay in recovery.
                        self.cc.on_partial_ack(acked);
                        out.push(self.retransmit_front(now));
                        out.push(self.arm());
                        return;
                    }
                    if ack.distance(self.recover) >= 0 {
                        self.holes_retransmitted.clear();
                    }
                    self.cc.on_new_ack(acked);
                    if self.snd_una == self.data_end + 1 {
                        // FIN acknowledged: everything delivered.
                        self.state = SenderState::Done;
                        self.timer_gen += 1; // disarm
                        out.push(SenderAction::Complete);
                        return;
                    }
                    self.pump_into(now, out);
                    out.push(self.arm());
                } else if ack == self.snd_una && self.flight() > 0 {
                    // Duplicate ACK.
                    match self.cc.on_dup_ack(self.flight()) {
                        CcAction::FastRetransmit => {
                            self.fast_retransmits += 1;
                            self.frto = None;
                            self.recover = self.snd_nxt;
                            self.holes_retransmitted.clear();
                            let mark = out.len();
                            self.sack_retransmits_into(now, 2, out);
                            if out.len() == mark {
                                out.push(self.retransmit_front(now));
                            }
                            out.push(self.arm());
                        }
                        CcAction::None => {
                            // Inside recovery, each dup ACK may license the
                            // repair of a further SACK hole.
                            if self.cc.phase() == crate::congestion::Phase::FastRecovery {
                                self.stalled_dup_acks += 1;
                                if self.stalled_dup_acks >= 8 {
                                    // The cumulative ACK hasn't moved across
                                    // many dup ACKs: the front hole's
                                    // retransmission was itself lost. Clear
                                    // its mark so it goes out again.
                                    self.stalled_dup_acks = 0;
                                    let front = self.snd_una;
                                    self.holes_retransmitted.retain(|&h| h != front);
                                }
                                self.sack_retransmits_into(now, 1, out);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Feed a retransmission-timer expiry. Stale tokens are ignored.
    pub fn on_timer(&mut self, token: u64, now: Instant) -> Vec<SenderAction> {
        let mut out = Vec::new();
        self.on_timer_into(token, now, &mut out);
        out
    }

    /// [`Self::on_timer`], pushing actions into a caller-owned buffer
    /// (see [`Self::on_segment_into`]).
    pub fn on_timer_into(&mut self, token: u64, now: Instant, out: &mut Vec<SenderAction>) {
        if token != self.timer_gen
            || matches!(
                self.state,
                SenderState::Closed | SenderState::Done | SenderState::Aborted
            )
        {
            return;
        }
        if self.flight() == 0 {
            // Nothing outstanding (idle window); keep the timer parked.
            out.push(self.arm());
            return;
        }
        self.timeouts_in_a_row += 1;
        self.total_timeouts += 1;
        if self.timeouts_in_a_row > self.config.max_timeouts {
            self.state = SenderState::Aborted;
            self.timer_gen += 1;
            out.push(SenderAction::Aborted);
            return;
        }
        self.rtt.on_timeout();
        // Keep the SACK scoreboard (RFC 6675): the receiver still holds
        // those runs, and pump() skips them on the go-back-N resend.
        self.holes_retransmitted.clear();
        let saved = (self.snd_nxt, self.cc.cwnd(), self.cc.ssthresh());
        self.cc.on_timeout(self.flight());
        self.recover = self.snd_nxt;
        // Go-back-N restart: pull snd_nxt back to snd_una.
        if self.state == SenderState::FinSent && self.snd_una != self.data_end {
            self.state = SenderState::Established;
        }
        self.snd_nxt = self.snd_una;
        let mark = out.len();
        out.push(self.retransmit_front(now));
        self.snd_nxt = self.snd_una.max(out_seq_end(&out[mark]));
        // Eifel detection: if the next advancing ACK echoes a timestamp
        // taken before this retransmission, the original flight was still
        // delivering and the timeout was spurious (e.g. the receiver was
        // briefly off-channel in power-save); remember enough to undo.
        self.frto = Some((saved.0, saved.1, saved.2, now.as_micros()));
        out.push(self.arm());
    }
}

fn out_seq_end(action: &SenderAction) -> SeqNum {
    match action {
        SenderAction::Transmit(s) => s.seq_end(),
        _ => unreachable!("retransmit_front returns Transmit"),
    }
}

/// Receiver outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverAction {
    /// Put this (ACK) segment on the wire toward the sender.
    Transmit(Segment),
    /// `bytes` fresh in-order payload bytes became available to the
    /// application — the throughput metric hooks here.
    Deliver {
        /// Fresh in-order bytes.
        bytes: u64,
    },
    /// The sender's FIN arrived; the stream is complete.
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReceiverState {
    Listen,
    Established,
    Finished,
}

/// The bulk-data receiver (client side).
#[derive(Debug, Clone)]
pub struct BulkReceiver {
    conn: u64,
    state: ReceiverState,
    /// Our (arbitrary, unused-for-data) sequence number.
    local_seq: SeqNum,
    /// Next expected sequence number from the sender.
    rcv_nxt: SeqNum,
    /// Out-of-order runs `(start, len)`, disjoint, sorted by start.
    ooo: Vec<(SeqNum, u32)>,
    total_delivered: u64,
    dup_acks_sent: u64,
    fin_seen: bool,
    /// Sequence number just past the sender's FIN, once seen (in or out of
    /// order); the FIN occupies sequence space but carries no payload.
    fin_at: Option<SeqNum>,
    /// Most recent TSval seen from the sender (echoed in ACKs).
    ts_recent: Option<u64>,
}

impl BulkReceiver {
    /// A receiver for connection `conn`.
    pub fn new(conn: u64) -> BulkReceiver {
        BulkReceiver {
            conn,
            state: ReceiverState::Listen,
            local_seq: SeqNum::new(1),
            rcv_nxt: SeqNum::new(0),
            ooo: Vec::new(),
            total_delivered: 0,
            dup_acks_sent: 0,
            fin_seen: false,
            fin_at: None,
            ts_recent: None,
        }
    }

    /// Total in-order payload delivered.
    pub fn delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Duplicate ACKs generated (diagnostics).
    pub fn dup_acks_sent(&self) -> u64 {
        self.dup_acks_sent
    }

    /// True once the FIN was delivered in order.
    pub fn is_finished(&self) -> bool {
        self.state == ReceiverState::Finished
    }

    fn ack_now(&self) -> Segment {
        let mut seg = Segment::ack_only(self.conn, self.local_seq, self.rcv_nxt);
        // Advertise up to three out-of-order runs (RFC 2018).
        for (slot, &(start, len)) in seg.sack.iter_mut().zip(self.ooo.iter()) {
            *slot = Some((start, len));
        }
        seg.ts_echo_us = self.ts_recent;
        seg
    }

    /// Feed an incoming segment from the sender.
    pub fn on_segment(&mut self, seg: &Segment, now: Instant) -> Vec<ReceiverAction> {
        let mut out = Vec::new();
        self.on_segment_into(seg, now, &mut out);
        out
    }

    /// [`Self::on_segment`], pushing actions into a caller-owned buffer so
    /// the per-event hot path reuses one allocation across segments.
    pub fn on_segment_into(&mut self, seg: &Segment, _now: Instant, out: &mut Vec<ReceiverAction>) {
        if seg.conn != self.conn {
            return;
        }
        if seg.ts_us != 0 {
            self.ts_recent = Some(seg.ts_us);
        }
        match self.state {
            ReceiverState::Listen => {
                if seg.syn {
                    self.rcv_nxt = seg.seq_end();
                    self.state = ReceiverState::Established;
                    let mut synack = Segment::data(self.conn, self.local_seq, 0);
                    synack.syn = true;
                    synack.ack = Some(self.rcv_nxt);
                    synack.ts_echo_us = self.ts_recent;
                    self.local_seq = self.local_seq + 1;
                    out.push(ReceiverAction::Transmit(synack));
                }
            }
            ReceiverState::Established => {
                if seg.syn {
                    // Retransmitted SYN: re-acknowledge.
                    let mut synack = Segment::data(self.conn, self.local_seq + u32::MAX, 0);
                    synack.syn = true;
                    synack.ack = Some(self.rcv_nxt);
                    synack.ts_echo_us = self.ts_recent;
                    out.push(ReceiverAction::Transmit(synack));
                    return;
                }
                if seg.seq_len() == 0 {
                    // Pure ACK from the sender's handshake; nothing to do.
                    return;
                }
                if seg.fin {
                    // The FIN occupies one unit of sequence space but no
                    // payload; remember where it sits so reassembly does
                    // not count it as a byte.
                    self.fin_at = Some(seg.seq_end());
                }
                let delta = seg.seq.distance(self.rcv_nxt);
                if delta > 0 {
                    // A hole: stash and duplicate-ACK.
                    self.stash(seg);
                    self.dup_acks_sent += 1;
                    out.push(ReceiverAction::Transmit(self.ack_now()));
                } else if seg.seq_end().distance(self.rcv_nxt) <= 0 {
                    // Entirely old: re-ACK.
                    self.dup_acks_sent += 1;
                    out.push(ReceiverAction::Transmit(self.ack_now()));
                } else {
                    // In-order (possibly overlapping the front). Fresh bytes
                    // = total sequence advance (segment + drained OOO runs)
                    // minus the FIN's phantom unit if it was consumed.
                    let pre = self.rcv_nxt;
                    self.rcv_nxt = seg.seq_end();
                    self.drain_ooo();
                    let mut fresh = (self.rcv_nxt - pre) as u64;
                    if self.fin_at == Some(self.rcv_nxt) {
                        self.fin_seen = true;
                        fresh -= 1;
                    }
                    if fresh > 0 {
                        self.total_delivered += fresh;
                        out.push(ReceiverAction::Deliver { bytes: fresh });
                    }
                    out.push(ReceiverAction::Transmit(self.ack_now()));
                    if self.fin_seen {
                        self.state = ReceiverState::Finished;
                        out.push(ReceiverAction::Finished);
                    }
                }
            }
            ReceiverState::Finished => {
                // Re-ACK anything (e.g. retransmitted FIN).
                out.push(ReceiverAction::Transmit(self.ack_now()));
            }
        }
    }

    fn stash(&mut self, seg: &Segment) {
        let start = seg.seq;
        let len = seg.seq_len();
        // Insert keeping order; merge exact/overlapping duplicates crudely
        // (windows are small; clarity over micro-optimization).
        if self
            .ooo
            .iter()
            .any(|&(s, l)| start.within(s, l) && seg.seq_end().distance(s + l) <= 0)
        {
            return; // fully covered already
        }
        self.ooo.push((start, len));
        self.ooo.sort_by_key(|r| r.0);
    }

    /// Pull contiguous runs out of the OOO store, advancing `rcv_nxt`.
    /// Callers compute delivered bytes from the sequence advance (and
    /// subtract the FIN's phantom unit via `fin_at`).
    fn drain_ooo(&mut self) {
        loop {
            let mut advanced = false;
            let rcv_nxt = &mut self.rcv_nxt;
            self.ooo.retain(|&(start, len)| {
                if start.distance(*rcv_nxt) <= 0 {
                    let end = start + len;
                    if end.distance(*rcv_nxt) > 0 {
                        *rcv_nxt = end;
                    }
                    false
                } else {
                    true
                }
            });
            for &(start, _) in &self.ooo {
                if start == self.rcv_nxt {
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn pipe(sender: &mut BulkSender, receiver: &mut BulkReceiver, now: Instant) -> (u64, bool) {
        // Run the two machines against each other with a lossless,
        // zero-latency pipe until quiescence. Returns (delivered, complete).
        let mut to_recv: VecDeque<Segment> = VecDeque::new();
        let mut to_send: VecDeque<Segment> = VecDeque::new();
        for a in sender.start(now) {
            if let SenderAction::Transmit(s) = a {
                to_recv.push_back(s);
            }
        }
        let mut guard = 0;
        while !to_recv.is_empty() || !to_send.is_empty() {
            guard += 1;
            assert!(guard < 1_000_000, "pipe did not quiesce");
            if let Some(s) = to_recv.pop_front() {
                for a in receiver.on_segment(&s, now) {
                    if let ReceiverAction::Transmit(seg) = a {
                        to_send.push_back(seg);
                    }
                }
            }
            if let Some(s) = to_send.pop_front() {
                for a in sender.on_segment(&s, now) {
                    if let SenderAction::Transmit(seg) = a {
                        to_recv.push_back(seg);
                    }
                }
            }
        }
        (receiver.delivered(), sender.is_complete())
    }

    #[test]
    fn lossless_transfer_completes_exactly() {
        let total = 1_000_000;
        let mut s = BulkSender::new(TcpConfig::default(), 1, total, 5000);
        let mut r = BulkReceiver::new(1);
        let (delivered, complete) = pipe(&mut s, &mut r, Instant::ZERO);
        assert_eq!(delivered, total);
        assert!(complete);
        assert!(r.is_finished());
        assert_eq!(s.bytes_acked(), total);
        assert_eq!(s.timeout_count(), 0);
    }

    #[test]
    fn tiny_transfer_completes() {
        let mut s = BulkSender::new(TcpConfig::default(), 2, 100, 1);
        let mut r = BulkReceiver::new(2);
        let (delivered, complete) = pipe(&mut s, &mut r, Instant::ZERO);
        assert_eq!(delivered, 100);
        assert!(complete);
    }

    #[test]
    fn zero_byte_transfer_completes() {
        let mut s = BulkSender::new(TcpConfig::default(), 3, 0, 1);
        let mut r = BulkReceiver::new(3);
        let (delivered, complete) = pipe(&mut s, &mut r, Instant::ZERO);
        assert_eq!(delivered, 0);
        assert!(complete);
    }

    #[test]
    fn syn_timeout_retransmits_syn() {
        let mut s = BulkSender::new(TcpConfig::default(), 1, 1000, 1);
        let acts = s.start(Instant::ZERO);
        let token = match acts[1] {
            SenderAction::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        let acts = s.on_timer(token, Instant::from_secs(1));
        match &acts[0] {
            SenderAction::Transmit(seg) => assert!(seg.syn),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.timeout_count(), 1);
    }

    #[test]
    fn rto_collapses_window_and_retransmits_una() {
        let mut s = BulkSender::new(TcpConfig::default(), 1, 1_000_000, 1);
        let mut r = BulkReceiver::new(1);
        // Handshake.
        let now = Instant::ZERO;
        let syn = match &s.start(now)[0] {
            SenderAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let synack = match &r.on_segment(&syn, now)[0] {
            ReceiverAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let acts = s.on_segment(&synack, now);
        let data: Vec<Segment> = acts
            .iter()
            .filter_map(|a| match a {
                SenderAction::Transmit(seg) if seg.len > 0 => Some(*seg),
                _ => None,
            })
            .collect();
        assert!(!data.is_empty());
        let cwnd_before = s.cwnd();
        let token = acts
            .iter()
            .rev()
            .find_map(|a| match a {
                SenderAction::ArmTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        // Lose everything; fire the RTO.
        let acts = s.on_timer(token, Instant::from_secs(2));
        match &acts[0] {
            SenderAction::Transmit(seg) => {
                assert_eq!(seg.seq, data[0].seq, "retransmits from snd_una");
            }
            other => panic!("{other:?}"),
        }
        assert!(s.cwnd() < cwnd_before);
        assert_eq!(s.cwnd(), 1460);
    }

    #[test]
    fn abort_after_max_timeouts() {
        let cfg = TcpConfig {
            max_timeouts: 3,
            ..TcpConfig::default()
        };
        let mut s = BulkSender::new(cfg, 1, 1000, 1);
        let acts = s.start(Instant::ZERO);
        let mut token = match acts[1] {
            SenderAction::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        let mut now = Instant::ZERO;
        let mut aborted = false;
        for _ in 0..10 {
            now += Duration::from_secs(5);
            let acts = s.on_timer(token, now);
            if acts.iter().any(|a| matches!(a, SenderAction::Aborted)) {
                aborted = true;
                break;
            }
            token = acts
                .iter()
                .find_map(|a| match a {
                    SenderAction::ArmTimer { token, .. } => Some(*token),
                    _ => None,
                })
                .unwrap();
        }
        assert!(aborted);
        assert!(s.is_aborted());
    }

    #[test]
    fn receiver_dup_acks_on_hole_and_reassembles() {
        let mut r = BulkReceiver::new(9);
        let now = Instant::ZERO;
        // Handshake.
        let syn = {
            let mut s = Segment::data(9, SeqNum::new(100), 0);
            s.syn = true;
            s
        };
        r.on_segment(&syn, now);
        // Segment 2 arrives before segment 1.
        let seg1 = Segment::data(9, SeqNum::new(101), 1000);
        let seg2 = Segment::data(9, SeqNum::new(1101), 1000);
        let acts = r.on_segment(&seg2, now);
        match &acts[0] {
            ReceiverAction::Transmit(a) => assert_eq!(a.ack, Some(SeqNum::new(101))),
            other => panic!("{other:?}"),
        }
        assert_eq!(r.dup_acks_sent(), 1);
        assert_eq!(r.delivered(), 0);
        // The hole fills: both deliver at once.
        let acts = r.on_segment(&seg1, now);
        match &acts[0] {
            ReceiverAction::Deliver { bytes } => assert_eq!(*bytes, 2000),
            other => panic!("{other:?}"),
        }
        match &acts[1] {
            ReceiverAction::Transmit(a) => assert_eq!(a.ack, Some(SeqNum::new(2101))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn receiver_ignores_duplicate_data() {
        let mut r = BulkReceiver::new(9);
        let now = Instant::ZERO;
        let syn = {
            let mut s = Segment::data(9, SeqNum::new(0), 0);
            s.syn = true;
            s
        };
        r.on_segment(&syn, now);
        let seg = Segment::data(9, SeqNum::new(1), 500);
        r.on_segment(&seg, now);
        let acts = r.on_segment(&seg, now);
        assert!(
            acts.iter()
                .all(|a| !matches!(a, ReceiverAction::Deliver { .. })),
            "duplicate must not deliver"
        );
        assert_eq!(r.delivered(), 500);
    }

    /// Establish a sender with `n` full segments in flight; returns the
    /// data segments and the receiver.
    fn established_with_flight(total: u64) -> (BulkSender, BulkReceiver, Vec<Segment>) {
        let mut s = BulkSender::new(TcpConfig::default(), 1, total, 1);
        let mut r = BulkReceiver::new(1);
        // Non-zero epoch so every segment carries a real timestamp.
        let now = Instant::from_secs(1);
        let syn = match &s.start(now)[0] {
            SenderAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let synack = match &r.on_segment(&syn, now)[0] {
            ReceiverAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let mut data = Vec::new();
        for a in s.on_segment(&synack, now) {
            if let SenderAction::Transmit(seg) = a {
                if seg.len > 0 {
                    data.push(seg);
                }
            }
        }
        // Grow the window by ACKing the first few in order.
        let mut delivered = 0;
        while data.len() - delivered < 8 && delivered < data.len() {
            let seg = data[delivered];
            delivered += 1;
            for a in r.on_segment(&seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    for sa in s.on_segment(&ack, now) {
                        if let SenderAction::Transmit(new_seg) = sa {
                            if new_seg.len > 0 {
                                data.push(new_seg);
                            }
                        }
                    }
                }
            }
        }
        (s, r, data[delivered..].to_vec())
    }

    #[test]
    fn sack_recovery_repairs_a_burst_within_the_dup_ack_train() {
        // Drop the first TWO in-flight segments; deliver the rest. SACK
        // must retransmit both holes without waiting for an RTO.
        let (mut s, mut r, flight) = established_with_flight(1_000_000);
        assert!(
            flight.len() >= 6,
            "need a deep flight, have {}",
            flight.len()
        );
        let now = Instant::from_secs(1);
        let mut retransmitted = Vec::new();
        for seg in &flight[2..] {
            for a in r.on_segment(seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    assert!(
                        ack.sack.iter().flatten().count() > 0,
                        "dup ACKs above a hole must carry SACK blocks"
                    );
                    for sa in s.on_segment(&ack, now) {
                        if let SenderAction::Transmit(rt) = sa {
                            retransmitted.push(rt.seq);
                        }
                    }
                }
            }
        }
        assert!(
            retransmitted.contains(&flight[0].seq),
            "first hole must be retransmitted"
        );
        assert!(
            retransmitted.contains(&flight[1].seq),
            "second hole must be retransmitted in the same recovery"
        );
        assert_eq!(s.timeout_count(), 0, "no RTO needed");
    }

    #[test]
    fn eifel_undoes_a_spurious_timeout() {
        // Stall the ACKs (receiver briefly deaf), fire the RTO, then let
        // the ORIGINAL flight's ACKs arrive: their timestamp echoes predate
        // the retransmission, so the collapse must be undone.
        let (mut s, mut r, flight) = established_with_flight(1_000_000);
        let cwnd_before = s.cwnd();
        let token_time = Instant::from_secs(3);
        // Find the armed token by firing a timer expiry sweep.
        let acts = s.on_timer(u64::MAX, token_time); // stale: no-op
        assert!(acts.is_empty());
        // The real token is whatever the last arm used; brute force a few.
        let mut fired = Vec::new();
        for token in 1..200 {
            let acts = s.on_timer(token, token_time);
            if !acts.is_empty() {
                fired = acts;
                break;
            }
        }
        assert!(
            fired.iter().any(|a| matches!(a, SenderAction::Transmit(_))),
            "RTO must retransmit"
        );
        assert_eq!(s.cwnd(), 1460, "collapsed");
        // Original flight now delivers; its ACKs echo pre-RTO timestamps.
        let now = token_time + Duration::from_millis(10);
        let mut undone = false;
        for seg in &flight {
            for a in r.on_segment(seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    s.on_segment(&ack, now);
                    if s.cwnd() >= cwnd_before {
                        undone = true;
                    }
                }
            }
            if undone {
                break;
            }
        }
        assert!(undone, "spurious RTO must be undone (cwnd restored)");
    }

    #[test]
    fn nagle_pump_emits_full_mss_segments_midstream() {
        let (mut s, mut r, flight) = established_with_flight(10_000_000);
        let now = Instant::from_secs(1);
        // Deliver everything in order and collect what the sender emits.
        let mut emitted = Vec::new();
        for seg in &flight {
            for a in r.on_segment(seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    for sa in s.on_segment(&ack, now) {
                        if let SenderAction::Transmit(new_seg) = sa {
                            emitted.push(new_seg);
                        }
                    }
                }
            }
        }
        assert!(!emitted.is_empty());
        for seg in &emitted {
            assert_eq!(
                seg.len, 1460,
                "mid-stream bulk segments must be full-MSS (Nagle), got {}",
                seg.len
            );
        }
    }

    #[test]
    fn fast_retransmit_fires_on_triple_dup() {
        let mut s = BulkSender::new(TcpConfig::default(), 1, 1_000_000, 1);
        let mut r = BulkReceiver::new(1);
        let now = Instant::ZERO;
        let syn = match &s.start(now)[0] {
            SenderAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let synack = match &r.on_segment(&syn, now)[0] {
            ReceiverAction::Transmit(seg) => *seg,
            _ => panic!(),
        };
        let acts = s.on_segment(&synack, now);
        let data: Vec<Segment> = acts
            .iter()
            .filter_map(|a| match a {
                SenderAction::Transmit(seg) if seg.len > 0 => Some(*seg),
                _ => None,
            })
            .collect();
        // Grow the window first so 5+ segments are in flight: ACK the first
        // two in-order segments, each releasing more.
        let mut all = data;
        let mut delivered = 0;
        while all.len() < 6 && delivered < 2 {
            let seg = all[delivered];
            delivered += 1;
            for a in r.on_segment(&seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    for sa in s.on_segment(&ack, now) {
                        if let SenderAction::Transmit(new_seg) = sa {
                            all.push(new_seg);
                        }
                    }
                }
            }
        }
        assert!(
            all.len() >= 6,
            "need at least 6 segments released, have {}",
            all.len()
        );
        let hole = delivered; // drop all[hole]; feed the rest for dup ACKs.
        let mut retransmitted = false;
        let hole_seq = all[hole].seq;
        let followers: Vec<Segment> = all[hole + 1..].to_vec();
        for seg in &followers {
            for a in r.on_segment(seg, now) {
                if let ReceiverAction::Transmit(ack) = a {
                    for sa in s.on_segment(&ack, now) {
                        if let SenderAction::Transmit(rt) = sa {
                            if rt.seq == hole_seq {
                                retransmitted = true;
                            }
                        }
                    }
                }
            }
            if retransmitted {
                break;
            }
        }
        assert!(
            retransmitted,
            "triple dup ACK must fast-retransmit the hole"
        );
        assert_eq!(s.fast_retransmit_count(), 1);
    }
}
