//! # tcp-lite
//!
//! A lightweight but real Reno TCP for the Spider (CoNEXT 2011)
//! reproduction.
//!
//! The paper's throughput results (Figs. 7–8 and every Table 2 number) are
//! shaped by TCP mechanics interacting with the channel schedule: time
//! spent off-channel stalls ACK clocks, fires retransmission timeouts,
//! collapses congestion windows, and restarts slow start. This crate
//! implements exactly those mechanics:
//!
//! * [`seq`] — RFC 793 circular sequence arithmetic.
//! * [`segment`] — segments with virtual payloads and honest wire sizes.
//! * [`rtt`] — RFC 6298 SRTT/RTTVAR/RTO with exponential backoff.
//! * [`congestion`] — RFC 5681 Reno: slow start, congestion avoidance,
//!   fast retransmit/recovery, timeout collapse.
//! * [`connection`] — the bulk-download sender/receiver pair used by every
//!   experiment's workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod connection;
pub mod rtt;
pub mod segment;
pub mod seq;

pub use congestion::{CcAction, Phase, Reno};
pub use connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction, TcpConfig};
pub use rtt::RttEstimator;
pub use segment::Segment;
pub use seq::SeqNum;
