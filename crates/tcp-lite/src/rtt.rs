//! Round-trip-time estimation and retransmission timeout (RFC 6298).
//!
//! The paper's Figs. 7–8 hinge on exactly this machinery: a channel
//! schedule that parks the radio elsewhere for longer than the RTO makes
//! the sender time out, collapse its window, and back the timer off
//! exponentially — "10–15 TCP timeouts" fit inside one median DHCP join.

use sim_engine::time::Duration;

/// RTT estimator state.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    /// Exponential backoff multiplier applied after timeouts (reset by a
    /// fresh sample).
    backoff: u32,
    min_rto: Duration,
    max_rto: Duration,
}

impl RttEstimator {
    /// RFC 6298 initial RTO of 1 s; Linux-style 200 ms floor by default.
    pub fn new() -> RttEstimator {
        RttEstimator::with_bounds(Duration::from_millis(200), Duration::from_secs(60))
    }

    /// Estimator with explicit RTO clamps.
    pub fn with_bounds(min_rto: Duration, max_rto: Duration) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            backoff: 0,
            min_rto,
            max_rto,
        }
    }

    /// Smoothed RTT, if at least one sample was taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// The current retransmission timeout (with backoff applied).
    pub fn rto(&self) -> Duration {
        let shift = self.backoff.min(16);
        let backed_off = self.rto.checked_mul(1u64 << shift).unwrap_or(self.max_rto);
        backed_off.clamp(self.min_rto, self.max_rto)
    }

    /// Incorporate a new RTT sample (Karn-safe: callers must only sample
    /// segments that were not retransmitted). Resets timeout backoff.
    pub fn sample(&mut self, rtt: Duration) {
        let srtt = match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.rttvar = rtt / 2;
                rtt
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // SRTT = 7/8·SRTT + 1/8·R
                (srtt * 7 + rtt) / 8
            }
        };
        self.srtt = Some(srtt);
        // RTO = SRTT + max(floor, 4·RTTVAR). Like Linux, the floor applies
        // to the *margin*, not the whole RTO — otherwise a low-variance
        // flow ends up with RTO ≈ SRTT and any scheduling hiccup (e.g. a
        // PSM absence) fires a spurious timeout.
        self.rto = (srtt + (self.rttvar * 4).max(self.min_rto)).min(self.max_rto);
        self.backoff = 0;
    }

    /// Register a retransmission timeout: double the RTO (exponential
    /// backoff), up to the maximum.
    pub fn on_timeout(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }

    /// Current backoff exponent (diagnostics).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let est = RttEstimator::new();
        assert_eq!(est.rto(), Duration::from_secs(1));
        assert!(est.srtt().is_none());
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(100));
        assert_eq!(est.srtt(), Some(Duration::from_millis(100)));
        // RTO = 100 + 4·50 = 300 ms.
        assert_eq!(est.rto(), Duration::from_millis(300));
    }

    #[test]
    fn steady_rtt_keeps_margin_floor() {
        let mut est = RttEstimator::new();
        for _ in 0..100 {
            est.sample(Duration::from_millis(40));
        }
        // RTTVAR decays toward 0; the RTO keeps the 200 ms margin above
        // SRTT (Linux semantics), so RTO → 40 + 200 = 240 ms.
        assert_eq!(est.rto(), Duration::from_millis(240));
        let srtt = est.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 40).abs() <= 1);
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut est = RttEstimator::new();
        for i in 0..50 {
            let rtt = if i % 2 == 0 { 50 } else { 250 };
            est.sample(Duration::from_millis(rtt));
        }
        // High jitter ⇒ RTO well above the mean RTT.
        assert!(est.rto() > Duration::from_millis(300));
    }

    #[test]
    fn timeout_backoff_doubles_and_sample_resets() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(100)); // RTO 300 ms
        est.on_timeout();
        assert_eq!(est.rto(), Duration::from_millis(600));
        est.on_timeout();
        assert_eq!(est.rto(), Duration::from_millis(1200));
        est.sample(Duration::from_millis(100));
        // RTTVAR decayed to 37.5 ms; the margin floor holds at 200 ms:
        // RTO = 100 + max(200, 150) = 300 ms, and the backoff is gone.
        assert_eq!(est.rto(), Duration::from_millis(300));
        assert_eq!(est.backoff(), 0);
    }

    #[test]
    fn backoff_saturates_at_max_rto() {
        let mut est = RttEstimator::new();
        est.sample(Duration::from_millis(500));
        for _ in 0..40 {
            est.on_timeout();
        }
        assert_eq!(est.rto(), Duration::from_secs(60));
    }
}
