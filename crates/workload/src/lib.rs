//! # workload
//!
//! Traffic for the Spider (CoNEXT 2011) reproduction:
//!
//! * [`shaper`] — backhaul models: FIFO serializing links and token-bucket
//!   shapers (the Fig. 9 apparatus).
//! * [`downloads`] — what the vehicle fetches: saturating bulk HTTP (the
//!   evaluation workload) or segmented streaming.
//! * [`mesh`] — the §4.7 usability baseline: synthetic per-user TCP
//!   connection-duration and inter-connection distributions standing in
//!   for the paper's (unavailable) 161-user mesh capture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod downloads;
pub mod mesh;
pub mod shaper;

pub use downloads::DownloadPlan;
pub use mesh::{MeshWorkloadParams, UserFlow};
pub use shaper::{SerialLink, TokenBucket};
