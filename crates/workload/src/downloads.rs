//! Download plans: what the vehicle is trying to fetch.
//!
//! The paper's evaluation transfers "large files over HTTP" toward a sink,
//! measuring bytes per unit time. [`DownloadPlan`] describes that traffic:
//! either one endless bulk stream (the evaluation default) or a sequence
//! of finite objects with think times (a streaming/browsing flavour used
//! by the examples).

use sim_engine::rng::Rng;
use sim_engine::time::Duration;

/// A description of the client's offered load.
#[derive(Debug, Clone)]
pub enum DownloadPlan {
    /// One connection per AP, each pushing unlimited data (the paper's
    /// evaluation workload: saturate whatever the APs offer).
    Saturating,
    /// Fetch objects of `object_bytes` with `think` pauses between them
    /// (e.g. media segments — the Pandora/Netflix motivation of §1).
    Segmented {
        /// Size of each fetched object.
        object_bytes: u64,
        /// Pause between completions.
        think: Duration,
    },
    /// Fetch web-sized objects drawn from [`web_object_bytes`] with
    /// `think` pauses between them. In a fleet world each client draws
    /// from its own forked RNG stream, so per-client flow sequences are
    /// independent and stable as the fleet grows.
    WebMix {
        /// Pause between completions.
        think: Duration,
    },
}

impl DownloadPlan {
    /// Bytes for the next connection: `u64::MAX` for saturating plans.
    /// [`DownloadPlan::WebMix`] has no deterministic size; it falls back
    /// to the distribution median — use [`DownloadPlan::next_object_rng`]
    /// where a client RNG stream is available.
    pub fn next_object(&self) -> u64 {
        match self {
            DownloadPlan::Saturating => u64::MAX,
            DownloadPlan::Segmented { object_bytes, .. } => *object_bytes,
            DownloadPlan::WebMix { .. } => 16 * 1024,
        }
    }

    /// Bytes for the next connection, drawing from `rng` for plans with
    /// randomized sizes. Plans with fixed sizes draw nothing, so a world
    /// running them consumes identical RNG streams either way.
    pub fn next_object_rng(&self, rng: &mut Rng) -> u64 {
        match self {
            DownloadPlan::WebMix { .. } => web_object_bytes(rng),
            _ => self.next_object(),
        }
    }

    /// Think time before the next object (zero for saturating plans).
    pub fn think_time(&self) -> Duration {
        match self {
            DownloadPlan::Saturating => Duration::ZERO,
            DownloadPlan::Segmented { think, .. } => *think,
            DownloadPlan::WebMix { think } => *think,
        }
    }
}

/// Sizes of web-ish objects for mixed workloads: a log-normal body with a
/// clamp, approximating classic HTTP response-size distributions.
pub fn web_object_bytes(rng: &mut Rng) -> u64 {
    let kb = rng.log_normal(2.8, 1.5); // median ≈ 16 kB
    (kb * 1024.0).clamp(512.0, 50.0 * 1024.0 * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_plan_is_endless() {
        let p = DownloadPlan::Saturating;
        assert_eq!(p.next_object(), u64::MAX);
        assert_eq!(p.think_time(), Duration::ZERO);
    }

    #[test]
    fn segmented_plan_round_trips() {
        let p = DownloadPlan::Segmented {
            object_bytes: 2_000_000,
            think: Duration::from_secs(4),
        };
        assert_eq!(p.next_object(), 2_000_000);
        assert_eq!(p.think_time(), Duration::from_secs(4));
    }

    #[test]
    fn web_objects_in_clamped_range() {
        let mut rng = Rng::new(8);
        let mut small = 0;
        for _ in 0..10_000 {
            let b = web_object_bytes(&mut rng);
            assert!((512..=50 * 1024 * 1024).contains(&(b as usize)));
            if b < 100 * 1024 {
                small += 1;
            }
        }
        // Most web objects are small.
        assert!(small > 7_000, "small objects {small}/10000");
    }

    #[test]
    fn web_mix_draws_from_the_given_stream_only() {
        let p = DownloadPlan::WebMix {
            think: Duration::from_secs(2),
        };
        assert_eq!(p.think_time(), Duration::from_secs(2));
        // Same stream, same draws; the plan holds no hidden state.
        let (mut a, mut b) = (Rng::new(7), Rng::new(7));
        for _ in 0..100 {
            assert_eq!(p.next_object_rng(&mut a), p.next_object_rng(&mut b));
        }
        // Fixed-size plans never touch the stream.
        let mut c = Rng::new(7);
        let before = c.next_u64();
        let mut c = Rng::new(7);
        assert_eq!(DownloadPlan::Saturating.next_object_rng(&mut c), u64::MAX);
        assert_eq!(c.next_u64(), before, "Saturating drew from the rng");
    }
}
