//! Backhaul links and traffic shaping.
//!
//! The paper's Fig. 9 micro-benchmark used "a traffic shaper … to adjust
//! the backhaul bandwidth available through each AP", and its §4.3
//! observation that urban backhaul is rarely faster than the wireless link
//! is why multi-AP aggregation pays at all. [`SerialLink`] models a
//! store-and-forward backhaul pipe (rate + propagation delay, FIFO);
//! [`TokenBucket`] models a shaper with burst tolerance.

use sim_engine::time::{Duration, Instant};

/// A FIFO serializing link: bytes occupy the pipe at `rate_bps` and then
/// propagate for `latency`. The standard model for a DSL/cable backhaul.
///
/// The queue is **bounded**: when the backlog exceeds `max_backlog` of
/// queueing delay, new packets are dropped (drop-tail), as any real shaper
/// or modem does — an unbounded queue would let TCP inflate the RTT
/// without bound instead of finding its rate through loss.
#[derive(Debug, Clone)]
pub struct SerialLink {
    rate_bps: u64,
    latency: Duration,
    max_backlog: Duration,
    /// The instant the transmitter becomes free.
    next_free: Instant,
    bytes_carried: u64,
    drops: u64,
}

impl SerialLink {
    /// Default queue bound: 200 ms of queueing delay at line rate.
    pub const DEFAULT_BACKLOG: Duration = Duration::from_millis(200);

    /// A link of `rate_bps` with one-way propagation `latency` and the
    /// default queue bound.
    ///
    /// # Panics
    /// Panics on a zero rate.
    pub fn new(rate_bps: u64, latency: Duration) -> SerialLink {
        SerialLink::with_backlog(rate_bps, latency, Self::DEFAULT_BACKLOG)
    }

    /// A link with an explicit queue bound.
    pub fn with_backlog(rate_bps: u64, latency: Duration, max_backlog: Duration) -> SerialLink {
        assert!(rate_bps > 0, "SerialLink: zero rate");
        SerialLink {
            rate_bps,
            latency,
            max_backlog,
            next_free: Instant::ZERO,
            bytes_carried: 0,
            drops: 0,
        }
    }

    /// Link rate, bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Serialization time of `bytes` at the link rate.
    pub fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.rate_bps)
    }

    /// Number of packets a drop-tail queue holds regardless of rate (the
    /// classic 64-packet modem ring); on slow links this dominates the
    /// time-based bound, exactly the way real DSL gear bufferbloats.
    const MIN_QUEUE_PACKETS: u64 = 64;

    /// Enqueue `bytes` at `now`; returns the instant the last bit arrives
    /// at the far end, or `None` if the bounded queue drops the packet.
    /// FIFO: a busy pipe delays later arrivals.
    pub fn transmit(&mut self, now: Instant, bytes: usize) -> Option<Instant> {
        let packet_bound = self
            .serialization(bytes.max(1))
            .checked_mul(Self::MIN_QUEUE_PACKETS)
            .unwrap_or(Duration::MAX);
        if self.backlog(now) > self.max_backlog.max(packet_bound) {
            self.drops += 1;
            return None;
        }
        let start = now.max(self.next_free);
        let done = start + self.serialization(bytes);
        self.next_free = done;
        self.bytes_carried += bytes as u64;
        Some(done + self.latency)
    }

    /// Total bytes pushed through.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Packets dropped at the queue bound.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Queue backlog at `now` (how long until the pipe frees).
    pub fn backlog(&self, now: Instant) -> Duration {
        self.next_free.saturating_since(now)
    }
}

/// A token-bucket shaper: sustained `rate_bps` with a `burst_bytes`
/// allowance.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket that starts full.
    ///
    /// # Panics
    /// Panics on zero rate or zero burst.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        assert!(rate_bps > 0, "TokenBucket: zero rate");
        assert!(burst_bytes > 0, "TokenBucket: zero burst");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_refill: Instant::ZERO,
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens =
            (self.tokens + elapsed * self.rate_bps as f64 / 8.0).min(self.burst_bytes as f64);
        self.last_refill = now;
    }

    /// Try to send `bytes` at `now`: `true` consumes tokens, `false` means
    /// the packet must wait (see [`TokenBucket::earliest`]).
    pub fn try_consume(&mut self, now: Instant, bytes: usize) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// The earliest instant `bytes` could be sent.
    pub fn earliest(&mut self, now: Instant, bytes: usize) -> Instant {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            now
        } else {
            let deficit = bytes as f64 - self.tokens;
            let wait = deficit * 8.0 / self.rate_bps as f64;
            now + Duration::from_secs_f64(wait)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_is_rate_accurate() {
        let link = SerialLink::new(1_000_000, Duration::ZERO); // 1 Mb/s
        assert_eq!(link.serialization(125_000), Duration::from_secs(1));
        assert_eq!(link.serialization(1_250), Duration::from_millis(10));
    }

    #[test]
    fn fifo_backpressure_delays_later_packets() {
        let mut link =
            SerialLink::with_backlog(1_000_000, Duration::from_millis(5), Duration::from_secs(10));
        let t0 = Instant::ZERO;
        let a = link.transmit(t0, 125_000).unwrap(); // 1 s + 5 ms
        let b = link.transmit(t0, 125_000).unwrap(); // queued behind a
        assert_eq!(a, Instant::from_millis(1_005));
        assert_eq!(b, Instant::from_millis(2_005));
        assert_eq!(link.bytes_carried(), 250_000);
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut link = SerialLink::new(8_000_000, Duration::from_millis(20));
        let arrive = link.transmit(Instant::from_secs(10), 1_000).unwrap();
        // 1000 B at 8 Mb/s = 1 ms, plus 20 ms propagation.
        assert_eq!(arrive, Instant::from_secs(10) + Duration::from_millis(21));
        assert_eq!(
            link.backlog(Instant::from_secs(10) + Duration::from_millis(1)),
            Duration::ZERO
        );
    }

    #[test]
    fn bounded_queue_drops_when_backlogged() {
        // 1 Mb/s link: the 64-packet floor dominates the 200 ms bound
        // (64 × 12 ms = 768 ms of queue).
        let mut link = SerialLink::new(1_000_000, Duration::ZERO);
        let t0 = Instant::ZERO;
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..200 {
            match link.transmit(t0, 1_500) {
                Some(_) => delivered += 1,
                None => dropped += 1,
            }
        }
        assert!(dropped > 0, "bounded queue must drop under overload");
        assert!((60..70).contains(&delivered), "delivered {delivered}");
        assert_eq!(link.drops(), dropped);
        // Once the queue drains, transmission works again.
        let later = Instant::from_secs(10);
        assert!(link.transmit(later, 1_500).is_some());
    }

    #[test]
    fn fast_links_use_time_bound() {
        // 100 Mb/s link: 200 ms = 1667 packets, far above the 64-packet
        // floor; the time bound governs.
        let mut link = SerialLink::new(100_000_000, Duration::ZERO);
        let t0 = Instant::ZERO;
        let mut delivered = 0;
        for _ in 0..3_000 {
            if link.transmit(t0, 1_500).is_some() {
                delivered += 1;
            }
        }
        assert!((1_500..1_800).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles() {
        let mut tb = TokenBucket::new(1_000_000, 10_000);
        let t0 = Instant::ZERO;
        assert!(tb.try_consume(t0, 10_000)); // full burst
        assert!(!tb.try_consume(t0, 1)); // drained
                                         // After 80 ms, 10 kB·(0.08·125000/10000)… rate is 125 kB/s: 10 ms
                                         // buys 1250 B.
        assert!(tb.try_consume(t0 + Duration::from_millis(10), 1_250));
        assert!(!tb.try_consume(t0 + Duration::from_millis(10), 10));
    }

    #[test]
    fn earliest_predicts_admission() {
        let mut tb = TokenBucket::new(8_000_000, 1_000); // 1 MB/s, 1 kB burst
        let t0 = Instant::ZERO;
        assert!(tb.try_consume(t0, 1_000));
        let at = tb.earliest(t0, 500);
        // Needs 500 B at 1 MB/s = 0.5 ms.
        assert_eq!(at, t0 + Duration::from_micros(500));
        assert!(tb.try_consume(at, 500));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(1_000_000, 2_000);
        // A long idle period must not bank more than the burst.
        assert!(!tb.try_consume(Instant::from_secs(100), 2_001));
        assert!(tb.try_consume(Instant::from_secs(100), 2_000));
    }
}
