//! Synthetic mesh-user workload (the paper's §4.7 usability study).
//!
//! The paper collected one day of TCP flow data from 161 users of a
//! 25-node downtown mesh (128,587 completed connections, 13,645,161
//! packets, 1.7 GB, 68 % HTTP) and compared two distributions against
//! Spider's delivered service: **connection duration** (Fig. 13) and
//! **inter-connection time** (Fig. 14). The raw capture is not available,
//! so this module synthesizes flows from heavy-tailed distributions whose
//! CDFs have the figures' qualitative shape: most web connections are
//! seconds-short with a long tail, and inter-connection gaps cluster small
//! with a tail of minutes.

use sim_engine::rng::Rng;
use sim_engine::stats::Samples;
use sim_engine::time::Duration;

/// Headline constants of the paper's captured dataset (§4.7), kept for
/// reporting alongside synthetic results.
pub mod capture {
    /// Mesh nodes in the downtown deployment.
    pub const MESH_NODES: u32 = 25;
    /// Coverage area, km².
    pub const AREA_KM2: f64 = 0.50;
    /// Distinct wireless users in the day of capture.
    pub const USERS: u32 = 161;
    /// Completed TCP connections.
    pub const TCP_CONNECTIONS: u64 = 128_587;
    /// Connections to the HTTP port.
    pub const HTTP_CONNECTIONS: u64 = 86_838;
    /// Total packets sent by users.
    pub const PACKETS: u64 = 13_645_161;
    /// Total bytes (≈ 1.7 GB).
    pub const BYTES: u64 = 1_700_000_000;
}

/// Distribution parameters for the synthetic user workload.
#[derive(Debug, Clone)]
pub struct MeshWorkloadParams {
    /// Log-normal μ of connection duration (ln seconds).
    pub duration_mu: f64,
    /// Log-normal σ of connection duration.
    pub duration_sigma: f64,
    /// Cap on a single connection (the capture is one day, and Fig. 13's
    /// x-axis tops out near 100 s).
    pub duration_cap: Duration,
    /// Log-normal μ of inter-connection gaps (ln seconds).
    pub gap_mu: f64,
    /// Log-normal σ of inter-connection gaps.
    pub gap_sigma: f64,
    /// Cap on a gap (Fig. 14's axis tops out at 300 s).
    pub gap_cap: Duration,
}

impl Default for MeshWorkloadParams {
    /// Calibrated to the figures' anchor points: ≈ 60 % of user
    /// connections finish within 10 s and ≈ 90 % within 60 s; ≈ half of
    /// inter-connection gaps are under 20 s with a tail past 100 s.
    fn default() -> Self {
        MeshWorkloadParams {
            duration_mu: 1.8, // e^1.8 ≈ 6 s median
            duration_sigma: 1.3,
            duration_cap: Duration::from_secs(600),
            gap_mu: 2.7, // e^2.7 ≈ 15 s median
            gap_sigma: 1.4,
            gap_cap: Duration::from_secs(600),
        }
    }
}

/// One synthetic user flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserFlow {
    /// Gap since the previous connection ended.
    pub gap_before: Duration,
    /// Connection duration.
    pub duration: Duration,
}

/// Draw `n` user flows.
pub fn synthesize_flows(params: &MeshWorkloadParams, n: usize, rng: &mut Rng) -> Vec<UserFlow> {
    (0..n)
        .map(|_| UserFlow {
            gap_before: Duration::from_secs_f64(
                rng.log_normal(params.gap_mu, params.gap_sigma)
                    .min(params.gap_cap.as_secs_f64()),
            ),
            duration: Duration::from_secs_f64(
                rng.log_normal(params.duration_mu, params.duration_sigma)
                    .min(params.duration_cap.as_secs_f64()),
            ),
        })
        .collect()
}

/// The connection-duration sample set of a synthetic day (Fig. 13's "users
/// connection duration" series).
pub fn duration_samples(params: &MeshWorkloadParams, n: usize, rng: &mut Rng) -> Samples {
    let mut s = Samples::new();
    for f in synthesize_flows(params, n, rng) {
        s.record_duration(f.duration);
    }
    s
}

/// The inter-connection sample set (Fig. 14's "user inter-connection").
pub fn gap_samples(params: &MeshWorkloadParams, n: usize, rng: &mut Rng) -> Samples {
    let mut s = Samples::new();
    for f in synthesize_flows(params, n, rng) {
        s.record_duration(f.gap_before);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_cdf_matches_figure13_anchors() {
        let mut rng = Rng::new(99);
        let mut s = duration_samples(&MeshWorkloadParams::default(), 20_000, &mut rng);
        let at_10s = s.cdf_at(10.0);
        let at_60s = s.cdf_at(60.0);
        assert!((0.45..0.75).contains(&at_10s), "CDF(10 s) = {at_10s}");
        assert!((0.80..0.98).contains(&at_60s), "CDF(60 s) = {at_60s}");
        assert!(s.quantile(0.99) > 60.0, "needs a heavy tail");
    }

    #[test]
    fn gap_cdf_matches_figure14_anchors() {
        let mut rng = Rng::new(100);
        let mut s = gap_samples(&MeshWorkloadParams::default(), 20_000, &mut rng);
        let at_20s = s.cdf_at(20.0);
        let at_120s = s.cdf_at(120.0);
        assert!((0.35..0.70).contains(&at_20s), "CDF(20 s) = {at_20s}");
        assert!((0.80..0.99).contains(&at_120s), "CDF(120 s) = {at_120s}");
    }

    #[test]
    fn caps_are_respected() {
        let params = MeshWorkloadParams {
            duration_cap: Duration::from_secs(30),
            gap_cap: Duration::from_secs(40),
            ..MeshWorkloadParams::default()
        };
        let mut rng = Rng::new(5);
        for f in synthesize_flows(&params, 5_000, &mut rng) {
            assert!(f.duration <= Duration::from_secs(30));
            assert!(f.gap_before <= Duration::from_secs(40));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = MeshWorkloadParams::default();
        let a = synthesize_flows(&p, 100, &mut Rng::new(1));
        let b = synthesize_flows(&p, 100, &mut Rng::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn capture_constants_are_consistent() {
        // 68 % of connections went to the HTTP port.
        let frac = capture::HTTP_CONNECTIONS as f64 / capture::TCP_CONNECTIONS as f64;
        assert!((frac - 0.675).abs() < 0.01, "HTTP fraction {frac}");
    }
}
