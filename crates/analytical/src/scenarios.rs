//! The named scenarios of the paper's Fig. 4 and helpers for composing
//! new ones.
//!
//! §2.1.3 evaluates three two-channel bandwidth splits at a wireless
//! capacity of 11 Mb/s and a 100 m range:
//!
//! 1. `B¹ⱼ = 0.75·Bw`, `B²ₐ = 0.25·Bw`
//! 2. `B¹ⱼ = 0.25·Bw`, `B²ₐ = 0.75·Bw`
//! 3. `B¹ⱼ = 0.50·Bw`, `B²ₐ = 0.50·Bw`
//!
//! (channel 1 already joined, channel 2 still to be joined).

use crate::join_model::JoinModelParams;
use crate::optimizer::{solve, ChannelOffer, OptimizerInputs, Schedule};

/// The paper's wireless capacity, bits/s.
pub const WIRELESS_BPS: f64 = 11_000_000.0;
/// The paper's assumed Wi-Fi range, metres.
pub const RANGE_M: f64 = 100.0;

/// A named Fig. 4 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Scenario {
    /// 75 % of `Bw` already joined on channel 1; 25 % available on 2.
    JoinedHeavy,
    /// 25 % joined; 75 % available — the strongest pull toward switching.
    AvailableHeavy,
    /// The even split.
    Balanced,
}

impl Fig4Scenario {
    /// All three, in the paper's presentation order (left to right:
    /// (25, 75), (50, 50), (75, 25)).
    pub const ALL: [Fig4Scenario; 3] = [
        Fig4Scenario::AvailableHeavy,
        Fig4Scenario::Balanced,
        Fig4Scenario::JoinedHeavy,
    ];

    /// The share of `Bw` already joined on channel 1.
    pub fn joined_share(self) -> f64 {
        match self {
            Fig4Scenario::JoinedHeavy => 0.75,
            Fig4Scenario::AvailableHeavy => 0.25,
            Fig4Scenario::Balanced => 0.50,
        }
    }

    /// Display label matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            Fig4Scenario::JoinedHeavy => "(75%,25%)",
            Fig4Scenario::AvailableHeavy => "(25%,75%)",
            Fig4Scenario::Balanced => "(50%,50%)",
        }
    }

    /// Optimizer inputs for this scenario at `speed_mps` with the given
    /// `βmax` (the paper's Fig. 4 uses βmax = 10 s, βmin = 500 ms).
    pub fn inputs(self, speed_mps: f64, beta_max: f64) -> OptimizerInputs {
        assert!(speed_mps > 0.0, "non-positive speed");
        let share = self.joined_share();
        OptimizerInputs {
            channels: vec![
                ChannelOffer {
                    joined_bps: share * WIRELESS_BPS,
                    available_bps: 0.0,
                },
                ChannelOffer {
                    joined_bps: 0.0,
                    available_bps: (1.0 - share) * WIRELESS_BPS,
                },
            ],
            wireless_bps: WIRELESS_BPS,
            horizon: 2.0 * RANGE_M / speed_mps,
            join: JoinModelParams::figure2(0.0, beta_max),
            grid: 50,
        }
    }

    /// Solve the scenario at `speed_mps`.
    pub fn solve_at(self, speed_mps: f64, beta_max: f64) -> Schedule {
        solve(&self.inputs(speed_mps, beta_max))
    }
}

/// The full Fig. 4 sweep: for each scenario and each of the paper's six
/// speeds, the optimal per-channel bandwidth in bits/s.
pub fn figure4_sweep(beta_max: f64) -> Vec<(Fig4Scenario, f64, Schedule)> {
    let speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 20.0];
    let mut out = Vec::with_capacity(Fig4Scenario::ALL.len() * speeds.len());
    for scenario in Fig4Scenario::ALL {
        for &v in &speeds {
            out.push((scenario, v, scenario.solve_at(v, beta_max)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_the_papers() {
        assert_eq!(Fig4Scenario::JoinedHeavy.joined_share(), 0.75);
        assert_eq!(Fig4Scenario::AvailableHeavy.joined_share(), 0.25);
        assert_eq!(Fig4Scenario::Balanced.joined_share(), 0.50);
    }

    #[test]
    fn horizon_follows_speed() {
        let slow = Fig4Scenario::Balanced.inputs(2.5, 10.0);
        let fast = Fig4Scenario::Balanced.inputs(20.0, 10.0);
        assert!((slow.horizon - 80.0).abs() < 1e-9);
        assert!((fast.horizon - 10.0).abs() < 1e-9);
    }

    #[test]
    fn joined_channel_offer_matches_share() {
        for s in Fig4Scenario::ALL {
            let inputs = s.inputs(10.0, 10.0);
            assert!((inputs.channels[0].joined_bps - s.joined_share() * WIRELESS_BPS).abs() < 1e-6);
            assert!(
                (inputs.channels[1].available_bps - (1.0 - s.joined_share()) * WIRELESS_BPS).abs()
                    < 1e-6
            );
        }
    }

    #[test]
    fn sweep_covers_all_cells() {
        let sweep = figure4_sweep(10.0);
        assert_eq!(sweep.len(), 18);
        // Channel-2 recovery declines with speed within each scenario.
        for scenario in Fig4Scenario::ALL {
            let series: Vec<f64> = sweep
                .iter()
                .filter(|(s, _, _)| *s == scenario)
                .map(|(_, _, sched)| sched.per_channel_bps[1])
                .collect();
            assert_eq!(series.len(), 6);
            assert!(
                series.first() >= series.last(),
                "{scenario:?}: ch2 bandwidth should not grow with speed"
            );
        }
    }
}
