//! The throughput-maximization framework (§2.1.3, Eqs. 8–10) and the
//! **dividing speed**.
//!
//! The node is in range of APs for `T` seconds (at a Wi-Fi range of `R`,
//! `T = 2R / v` for speed `v`). Channel `i` offers `Bʲᵢ` end-to-end
//! bandwidth from already-joined APs plus `Bᵃᵢ` from APs still to be
//! joined; joining costs the expected join time `g_T(f_i)` from the join
//! model, during which the new bandwidth is not yet flowing. The optimizer
//! chooses the schedule fractions `f_i`:
//!
//! ```text
//! max  T · Σᵢ fᵢ·Bw
//! s.t. 0 ≤ fᵢ ≤ (Bʲᵢ + (1 − g_T(fᵢ)/T)·Bᵃᵢ) / Bw        (9)
//!      Σᵢ (fᵢ·D + ⌈fᵢ⌉·w) ≤ D                            (10)
//! ```
//!
//! Solved numerically by grid search (the feasible region is
//! low-dimensional and the objective is monotone in each `fᵢ` up to its
//! cap). The paper's Fig. 4 result: below a **dividing speed** (≈ 10 m/s
//! for typical parameters) it pays to split time across channels; above
//! it, all time belongs on one channel.

use crate::join_model::JoinModelParams;

/// One channel's bandwidth situation (all rates in bits/s).
#[derive(Debug, Clone, Copy)]
pub struct ChannelOffer {
    /// End-to-end bandwidth already joined (`Bʲᵢ`): usable from t = 0.
    pub joined_bps: f64,
    /// End-to-end bandwidth available after a successful join (`Bᵃᵢ`).
    pub available_bps: f64,
}

/// Inputs to the optimization.
#[derive(Debug, Clone)]
pub struct OptimizerInputs {
    /// Per-channel offers.
    pub channels: Vec<ChannelOffer>,
    /// Wireless channel capacity `Bw`, bits/s (the paper uses 11 Mb/s).
    pub wireless_bps: f64,
    /// Time in range `T`, seconds.
    pub horizon: f64,
    /// Join-model parameters (the `fraction` field is ignored; the
    /// optimizer sweeps it).
    pub join: JoinModelParams,
    /// Grid resolution for each `f_i`.
    pub grid: u32,
}

/// The optimal schedule found.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Optimal fraction per channel.
    pub fractions: Vec<f64>,
    /// Attained bandwidth per channel, bits/s (`fᵢ·Bw`).
    pub per_channel_bps: Vec<f64>,
    /// Total objective, bits (`T · Σ fᵢ·Bw`).
    pub total_bits: f64,
}

impl Schedule {
    /// Total attained bandwidth, bits/s.
    pub fn total_bps(&self) -> f64 {
        self.per_channel_bps.iter().sum()
    }
}

/// The per-channel cap of constraint (9) at fraction `f`.
fn fraction_cap(offer: &ChannelOffer, inputs: &OptimizerInputs, f: f64) -> f64 {
    let params = JoinModelParams {
        fraction: f,
        ..inputs.join
    };
    let g = params.expected_join_time(inputs.horizon);
    let usable = offer.joined_bps + (1.0 - g / inputs.horizon) * offer.available_bps;
    (usable / inputs.wireless_bps).clamp(0.0, 1.0)
}

/// Solve the two-channel instance by grid search. (The paper's Fig. 4
/// evaluates exactly this shape; `solve_n` below generalizes.)
pub fn solve(inputs: &OptimizerInputs) -> Schedule {
    solve_n(inputs)
}

/// Solve for any (small) number of channels by recursive grid search over
/// the simplex cut by constraint (10). Per-channel caps are precomputed —
/// constraint (9) couples `f_i` only to its own channel.
pub fn solve_n(inputs: &OptimizerInputs) -> Schedule {
    assert!(!inputs.channels.is_empty(), "solve_n: no channels");
    assert!(inputs.grid >= 2, "solve_n: grid too coarse");
    assert!(inputs.horizon > 0.0, "solve_n: non-positive horizon");
    let n = inputs.channels.len();
    let w_frac = inputs.join.switch_delay / inputs.period();
    // feasible[idx][step] = does f = step/grid satisfy constraint (9)?
    let feasible: Vec<Vec<bool>> = inputs
        .channels
        .iter()
        .map(|offer| {
            (0..=inputs.grid)
                .map(|step| {
                    let f = step as f64 / inputs.grid as f64;
                    f <= fraction_cap(offer, inputs, f) + 1e-12
                })
                .collect()
        })
        .collect();
    let mut best = Schedule {
        fractions: vec![0.0; n],
        per_channel_bps: vec![0.0; n],
        total_bits: 0.0,
    };
    let mut current = vec![0.0f64; n];
    search(inputs, &feasible, 0, 1.0, w_frac, &mut current, &mut best);
    best
}

impl OptimizerInputs {
    fn period(&self) -> f64 {
        self.join.period
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    inputs: &OptimizerInputs,
    feasible: &[Vec<bool>],
    idx: usize,
    budget: f64,
    w_frac: f64,
    current: &mut Vec<f64>,
    best: &mut Schedule,
) {
    let n = inputs.channels.len();
    if idx == n {
        let total_bps: f64 = current.iter().map(|&f| f * inputs.wireless_bps).sum();
        let total_bits = total_bps * inputs.horizon;
        if total_bits > best.total_bits {
            best.fractions = current.clone();
            best.per_channel_bps = current.iter().map(|&f| f * inputs.wireless_bps).collect();
            best.total_bits = total_bits;
        }
        return;
    }
    let steps = inputs.grid;
    for step in 0..=steps {
        let f = step as f64 / steps as f64;
        // Constraint (10): each non-zero fraction also costs w.
        let switch_cost = if f > 0.0 { w_frac } else { 0.0 };
        if f + switch_cost > budget + 1e-12 {
            break;
        }
        // Constraint (9), precomputed. (Skip rather than break: the cap
        // grows with f too, so the crossing need not be monotone.)
        if !feasible[idx][step as usize] {
            continue;
        }
        current[idx] = f;
        search(
            inputs,
            feasible,
            idx + 1,
            budget - f - switch_cost,
            w_frac,
            current,
            best,
        );
    }
    current[idx] = 0.0;
}

/// The paper's Fig. 4 scenario: 11 Mb/s wireless capacity, a 100 m range,
/// channel 1 carrying `joined_share` of `Bw` already joined and channel 2
/// offering `1 − joined_share` still to join.
pub fn figure4_inputs(joined_share: f64, speed_mps: f64, beta_max: f64) -> OptimizerInputs {
    assert!((0.0..=1.0).contains(&joined_share), "bad share");
    assert!(speed_mps > 0.0, "bad speed");
    let wireless = 11_000_000.0;
    let range_m = 100.0;
    OptimizerInputs {
        channels: vec![
            ChannelOffer {
                joined_bps: joined_share * wireless,
                available_bps: 0.0,
            },
            ChannelOffer {
                joined_bps: 0.0,
                available_bps: (1.0 - joined_share) * wireless,
            },
        ],
        wireless_bps: wireless,
        horizon: 2.0 * range_m / speed_mps,
        join: JoinModelParams::figure2(0.0, beta_max),
        grid: 50,
    }
}

/// Find the dividing speed for a Fig. 4 scenario.
///
/// Above this speed, joining APs on the second channel stops paying: the
/// expected join time `g_T` consumes the shrinking time-in-range `T`, and
/// the optimal schedule recovers less than `threshold` (e.g. 0.5 = half)
/// of the second channel's available bandwidth. Under the literal
/// Eqs. 8–10 the second channel's allocation declines *smoothly* with
/// speed rather than snapping to zero — the hard "stay on one channel"
/// rule the paper lands on also leans on the empirical DHCP/TCP penalties
/// of §2.2, which the full-system simulation reproduces — so the dividing
/// speed is defined by this recovery threshold. Binary search over
/// `[lo, hi]` m/s.
pub fn dividing_speed(joined_share: f64, beta_max: f64, lo: f64, hi: f64, threshold: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "bad speed bracket");
    assert!((0.0..=1.0).contains(&threshold), "bad threshold");
    let second_channel_worthwhile = |v: f64| -> bool {
        let inputs = figure4_inputs(joined_share, v, beta_max);
        let available = inputs.channels[1].available_bps;
        let sched = solve(&inputs);
        sched.per_channel_bps[1] > threshold * available
    };
    // If even the slowest speed can't recover the threshold, the divide is
    // below the bracket; if the fastest still can, above.
    if !second_channel_worthwhile(lo) {
        return lo;
    }
    if second_channel_worthwhile(hi) {
        return hi;
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..20 {
        let mid = 0.5 * (lo + hi);
        if second_channel_worthwhile(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_speed_splits_channels() {
        // 2.5 m/s ⇒ T = 80 s: plenty of time to pay the join cost on
        // channel 2 and harvest its 75 % of Bw.
        let sched = solve(&figure4_inputs(0.25, 2.5, 10.0));
        assert!(
            sched.fractions[1] > 0.3,
            "f2 = {} should be large",
            sched.fractions[1]
        );
        assert!(sched.fractions[0] > 0.0);
    }

    #[test]
    fn speed_erodes_second_channel_bandwidth() {
        // The Fig. 4 shape: as speed rises, the expected join time eats a
        // growing share of the time in range and the optimizer recovers
        // less and less of channel 2's available bandwidth.
        let inputs_slow = figure4_inputs(0.25, 2.5, 10.0);
        let inputs_fast = figure4_inputs(0.25, 20.0, 10.0);
        let slow = solve(&inputs_slow);
        let fast = solve(&inputs_fast);
        let available = inputs_slow.channels[1].available_bps;
        assert!(
            slow.per_channel_bps[1] > 0.6 * available,
            "at 2.5 m/s ch2 recovers {} of {available}",
            slow.per_channel_bps[1]
        );
        assert!(
            fast.per_channel_bps[1] < slow.per_channel_bps[1],
            "ch2 bandwidth must decline with speed: fast {} vs slow {}",
            fast.per_channel_bps[1],
            slow.per_channel_bps[1]
        );
    }

    #[test]
    fn joined_channel_always_fully_used_up_to_cap() {
        for share in [0.25, 0.5, 0.75] {
            for v in [2.5, 5.0, 10.0, 20.0] {
                let inputs = figure4_inputs(share, v, 10.0);
                let sched = solve(&inputs);
                // Attained on channel 1 never exceeds its offer.
                assert!(sched.per_channel_bps[0] <= share * inputs.wireless_bps + 1e-6);
                // And the schedule respects Σ f + switching ≤ 1.
                let w_frac = inputs.join.switch_delay / inputs.join.period;
                let used: f64 = sched
                    .fractions
                    .iter()
                    .map(|&f| f + if f > 0.0 { w_frac } else { 0.0 })
                    .sum();
                assert!(used <= 1.0 + 1e-9, "schedule over-committed: {used}");
            }
        }
    }

    #[test]
    fn objective_never_decreases_with_slower_speed() {
        // More time in range can only help total bits.
        let mut last = f64::INFINITY;
        for v in [2.5, 3.3, 5.0, 6.6, 10.0, 20.0] {
            let sched = solve(&figure4_inputs(0.5, v, 10.0));
            assert!(
                sched.total_bits <= last + 1e-6,
                "total bits must shrink with speed"
            );
            last = sched.total_bits;
        }
    }

    #[test]
    fn dividing_speed_in_paper_band() {
        // "Quantitatively, this speed is less than 10 m/s for most
        // scenarios" — the speed at which half of channel 2's available
        // bandwidth becomes unrecoverable sits in low vehicular speeds.
        let v = dividing_speed(0.25, 10.0, 1.0, 60.0, 0.5);
        assert!(
            (2.0..=40.0).contains(&v),
            "dividing speed {v} m/s outside plausible band"
        );
    }

    #[test]
    fn shorter_beta_extends_multi_channel_regime() {
        // Faster-responding APs (smaller βmax) keep channel 2 worthwhile up
        // to higher speeds.
        let v_slow_aps = dividing_speed(0.25, 10.0, 0.5, 60.0, 0.5);
        let v_fast_aps = dividing_speed(0.25, 2.0, 0.5, 60.0, 0.5);
        assert!(
            v_fast_aps >= v_slow_aps - 1e-6,
            "divide {v_fast_aps} (β=2) vs {v_slow_aps} (β=10)"
        );
    }

    #[test]
    fn three_channel_instance_solves() {
        let wireless = 11_000_000.0;
        let inputs = OptimizerInputs {
            channels: vec![
                ChannelOffer {
                    joined_bps: 0.4 * wireless,
                    available_bps: 0.0,
                },
                ChannelOffer {
                    joined_bps: 0.0,
                    available_bps: 0.3 * wireless,
                },
                ChannelOffer {
                    joined_bps: 0.0,
                    available_bps: 0.3 * wireless,
                },
            ],
            wireless_bps: wireless,
            horizon: 60.0,
            join: JoinModelParams::figure2(0.0, 5.0),
            grid: 20,
        };
        let sched = solve_n(&inputs);
        assert_eq!(sched.fractions.len(), 3);
        assert!(sched.total_bps() > 0.0);
        let sum: f64 = sched.fractions.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn zero_offer_gets_zero_fraction() {
        let wireless = 11_000_000.0;
        let inputs = OptimizerInputs {
            channels: vec![
                ChannelOffer {
                    joined_bps: 0.5 * wireless,
                    available_bps: 0.0,
                },
                ChannelOffer {
                    joined_bps: 0.0,
                    available_bps: 0.0,
                },
            ],
            wireless_bps: wireless,
            horizon: 30.0,
            join: JoinModelParams::figure2(0.0, 5.0),
            grid: 40,
        };
        let sched = solve(&inputs);
        assert_eq!(sched.fractions[1], 0.0);
        assert!((sched.fractions[0] - 0.5).abs() < 0.03);
    }
}
