//! # analytical
//!
//! The analytical framework of the Spider paper (CoNEXT 2011, §2.1):
//!
//! * [`join_model`] — Eqs. 1–7: the probability a mobile node under a
//!   fractional channel schedule obtains a DHCP lease within its time in
//!   range, plus the expected join time `g_T(f)`.
//! * [`join_sim`] — the Monte-Carlo corroborator behind Fig. 2's
//!   "Simulation" series.
//! * [`optimizer`] — Eqs. 8–10: the throughput-maximization framework and
//!   the **dividing speed** above which a mobile client should stay on a
//!   single channel.
//! * [`scenarios`] — the three named Fig. 4 scenarios and the full sweep.
//! * [`sensitivity`] — which of the model's constants (`h`, `c`, `D`,
//!   `w`, `βmin`) actually move the answer.
//! * [`capacity`] — the §4.7 back-of-envelope: encounters, usable seconds,
//!   and long-run rate as closed forms over speed/density/join cost.
//! * [`cell`] — the Panda & Kumar / Bianchi saturation cell model: per-AP
//!   capacity as a function of co-channel degree, the analytical side of
//!   the metro channel-assignment experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod cell;
pub mod join_model;
pub mod join_sim;
pub mod optimizer;
pub mod scenarios;
pub mod sensitivity;

pub use capacity::CapacityPlan;
pub use cell::CellModel;
pub use join_model::JoinModelParams;
pub use join_sim::{simulate_join_probability, simulate_runs};
pub use optimizer::{
    dividing_speed, figure4_inputs, solve, ChannelOffer, OptimizerInputs, Schedule,
};
pub use scenarios::{figure4_sweep, Fig4Scenario};
pub use sensitivity::{panel, Sensitivity};
