//! Sensitivity analysis of the join model.
//!
//! The paper fixes `D = 500 ms`, `c = 100 ms`, `w = 7 ms`, `h = 10 %` and
//! varies only `f` and `βmax`. This module asks the follow-up questions a
//! systems reader has — *which* of those constants actually moves the
//! answer — by sweeping each parameter around the paper's operating point
//! and reporting the change in join probability and in the expected join
//! time `g_T`.

use crate::join_model::JoinModelParams;

/// One parameter's sensitivity around the operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Parameter name.
    pub parameter: &'static str,
    /// The swept values.
    pub values: Vec<f64>,
    /// `p_join(t)` at each value.
    pub p_join: Vec<f64>,
    /// `g_T` (expected join time, truncated at the horizon) at each value.
    pub expected_join_time: Vec<f64>,
}

impl Sensitivity {
    /// Total swing of `p_join` across the sweep (max − min).
    pub fn p_swing(&self) -> f64 {
        let max = self
            .p_join
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.p_join.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }
}

fn evaluate(params: &JoinModelParams, t: f64) -> (f64, f64) {
    (params.p_join(t), params.expected_join_time(t))
}

/// Sweep one field of the operating point.
fn sweep(
    base: &JoinModelParams,
    t: f64,
    parameter: &'static str,
    values: Vec<f64>,
    apply: impl Fn(&JoinModelParams, f64) -> JoinModelParams,
) -> Sensitivity {
    let mut p_join = Vec::with_capacity(values.len());
    let mut g = Vec::with_capacity(values.len());
    for &v in &values {
        let params = apply(base, v);
        let (p, gt) = evaluate(&params, t);
        p_join.push(p);
        g.push(gt);
    }
    Sensitivity {
        parameter,
        values,
        p_join,
        expected_join_time: g,
    }
}

/// The full sensitivity panel around the paper's operating point
/// (`fraction`, `βmax` fixed by the caller; `t` the time in range).
pub fn panel(fraction: f64, beta_max: f64, t: f64) -> Vec<Sensitivity> {
    let base = JoinModelParams::figure2(fraction, beta_max);
    vec![
        sweep(
            &base,
            t,
            "loss h",
            vec![0.0, 0.05, 0.10, 0.20, 0.35, 0.50],
            |b, v| JoinModelParams { loss: v, ..*b },
        ),
        sweep(
            &base,
            t,
            "request interval c (s)",
            vec![0.05, 0.10, 0.20, 0.40],
            |b, v| JoinModelParams {
                request_interval: v,
                ..*b
            },
        ),
        sweep(
            &base,
            t,
            "scheduling period D (s)",
            vec![0.25, 0.50, 1.00, 2.00],
            |b, v| JoinModelParams { period: v, ..*b },
        ),
        // Realistic hardware range (Table 1 measures ≈ 5 ms; 20 ms is a
        // pessimistic chipset). Beyond that, w starts eating whole request
        // slots and stops being second-order.
        sweep(
            &base,
            t,
            "switch delay w (s)",
            vec![0.0, 0.004, 0.007, 0.014, 0.020],
            |b, v| JoinModelParams {
                switch_delay: v,
                ..*b
            },
        ),
        sweep(
            &base,
            t,
            "beta_min (s)",
            vec![0.1, 0.5, 1.0, 2.0],
            |b, v| JoinModelParams { beta_min: v, ..*b },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel_at_op_point() -> Vec<Sensitivity> {
        panel(0.3, 10.0, 4.0)
    }

    #[test]
    fn panel_covers_five_parameters() {
        let p = panel_at_op_point();
        let names: Vec<&str> = p.iter().map(|s| s.parameter).collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"loss h"));
        assert!(names.contains(&"switch delay w (s)"));
    }

    #[test]
    fn all_probabilities_valid() {
        for s in panel_at_op_point() {
            for (&p, &g) in s.p_join.iter().zip(&s.expected_join_time) {
                assert!((0.0..=1.0).contains(&p), "{}: p = {p}", s.parameter);
                assert!((0.0..=4.0 + 1e-9).contains(&g), "{}: g = {g}", s.parameter);
            }
        }
    }

    #[test]
    fn loss_hurts_monotonically() {
        let p = panel_at_op_point();
        let loss = p.iter().find(|s| s.parameter == "loss h").unwrap();
        for w in loss.p_join.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "more loss cannot help joining");
        }
    }

    #[test]
    fn switch_delay_is_second_order() {
        // The paper's Fig. 3 remark: w barely matters next to β and the
        // schedule. Its swing must be small compared to the loss swing.
        let p = panel_at_op_point();
        let w = p
            .iter()
            .find(|s| s.parameter == "switch delay w (s)")
            .unwrap();
        let loss = p.iter().find(|s| s.parameter == "loss h").unwrap();
        assert!(
            w.p_swing() < loss.p_swing(),
            "w swing {} should be below loss swing {}",
            w.p_swing(),
            loss.p_swing()
        );
        assert!(
            w.p_swing() < 0.2,
            "w swing {} should be second-order",
            w.p_swing()
        );
    }

    #[test]
    fn expected_join_time_moves_opposite_to_p() {
        // Within each sweep, higher join probability should not come with a
        // (much) higher expected join time.
        for s in panel_at_op_point() {
            for i in 1..s.values.len() {
                if s.p_join[i] > s.p_join[i - 1] + 0.05 {
                    assert!(
                        s.expected_join_time[i] <= s.expected_join_time[i - 1] + 1e-6,
                        "{}: p rose but g rose too",
                        s.parameter
                    );
                }
            }
        }
    }
}
