//! Monte-Carlo corroboration of the join model (the "Simulation" series of
//! the paper's Fig. 2).
//!
//! The simulator makes the same assumptions as the closed form — one-shot
//! join, uniform `β`, per-message loss `h`, round-robin schedule — but
//! plays out the physical process draw by draw, which internally validates
//! the derivation of Eq. 7 exactly as the paper does.

use sim_engine::rng::Rng;

use crate::join_model::JoinModelParams;

/// One simulated stay of `t` seconds in range: did any join request
/// complete inside an on-channel window?
pub fn simulate_one_stay(params: &JoinModelParams, t: f64, rng: &mut Rng) -> bool {
    let d = params.period;
    let fi = params.fraction;
    let w = params.switch_delay;
    let c = params.request_interval;
    let rounds = (t / d).ceil() as u32;
    let requests = params.requests_per_round();
    let on_window = |n: u32| {
        // Round n (0-based) is on-channel during [n·D + w, n·D + fi·D].
        let start = n as f64 * d + w;
        let end = n as f64 * d + fi * d;
        (start, end)
    };
    for m in 0..rounds {
        for k in 0..requests {
            let (win_start, win_end) = on_window(m);
            let send = win_start + k as f64 * c;
            if send > win_end || send > t {
                continue;
            }
            // Both the request and the response must survive loss.
            if !rng.chance((1.0 - params.loss) * (1.0 - params.loss)) {
                continue;
            }
            let beta = rng.range_f64(
                params.beta_min,
                params.beta_max.max(params.beta_min + 1e-12),
            );
            let arrival = send + beta;
            if arrival > t {
                continue;
            }
            // Does the response land inside some later on-channel window?
            let n = (arrival / d).floor() as u32;
            let (ws, we) = on_window(n);
            if arrival >= ws && arrival <= we {
                return true;
            }
        }
    }
    false
}

/// Monte-Carlo estimate of the join probability over `trials` stays.
pub fn simulate_join_probability(
    params: &JoinModelParams,
    t: f64,
    trials: u32,
    rng: &mut Rng,
) -> f64 {
    assert!(trials > 0, "simulate_join_probability: zero trials");
    let mut successes = 0u32;
    for _ in 0..trials {
        if simulate_one_stay(params, t, rng) {
            successes += 1;
        }
    }
    successes as f64 / trials as f64
}

/// Replication of the paper's Fig. 2 protocol: `runs` independent estimates
/// of `trials` stays each; returns `(mean, std_dev)` of the estimates.
pub fn simulate_runs(
    params: &JoinModelParams,
    t: f64,
    runs: u32,
    trials: u32,
    rng: &mut Rng,
) -> (f64, f64) {
    let mut stats = sim_engine::stats::Summary::new();
    for _ in 0..runs {
        stats.record(simulate_join_probability(params, t, trials, rng));
    }
    (stats.mean(), stats.std_dev())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline internal-validation property: simulation ≈ model
    /// (Fig. 2). Checked across the fraction axis for both βmax values the
    /// paper plots.
    #[test]
    fn simulation_matches_model_across_fractions() {
        let mut rng = Rng::new(2024);
        for beta_max in [5.0, 10.0] {
            for f in [0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0] {
                let params = JoinModelParams::figure2(f, beta_max);
                let model = params.p_join(4.0);
                let (sim, _sd) = simulate_runs(&params, 4.0, 20, 100, &mut rng);
                assert!(
                    (model - sim).abs() < 0.08,
                    "model {model:.3} vs sim {sim:.3} at f={f}, βmax={beta_max}"
                );
            }
        }
    }

    #[test]
    fn zero_fraction_never_joins_in_simulation() {
        let params = JoinModelParams::figure2(0.0, 5.0);
        let mut rng = Rng::new(1);
        assert_eq!(simulate_join_probability(&params, 4.0, 200, &mut rng), 0.0);
    }

    #[test]
    fn lossless_full_time_short_beta_always_joins() {
        let params = JoinModelParams {
            loss: 0.0,
            ..JoinModelParams::figure2(1.0, 0.6)
        };
        let mut rng = Rng::new(2);
        // β ∈ [0.5, 0.6] s, 4 s in range, always on channel.
        let p = simulate_join_probability(&params, 4.0, 200, &mut rng);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let params = JoinModelParams::figure2(0.4, 5.0);
        let a = simulate_join_probability(&params, 4.0, 500, &mut Rng::new(7));
        let b = simulate_join_probability(&params, 4.0, 500, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn run_spread_is_reported() {
        let params = JoinModelParams::figure2(0.3, 5.0);
        let mut rng = Rng::new(3);
        let (mean, sd) = simulate_runs(&params, 4.0, 30, 100, &mut rng);
        assert!((0.0..=1.0).contains(&mean));
        assert!(sd > 0.0, "independent runs must show sampling spread");
        assert!(
            sd < 0.2,
            "spread of 100-trial estimates should be modest: {sd}"
        );
    }
}
