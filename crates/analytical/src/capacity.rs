//! Back-of-envelope capacity planning for vehicular open-Wi-Fi service.
//!
//! The paper's closing question (§4.7) is whether open Wi-Fi, as delivered
//! by a Spider-class client, can cover real users' needs. This module
//! turns the geometry and protocol costs into the planner's quantities:
//! encounters per kilometre, usable seconds per encounter after the join,
//! expected bytes per encounter, and the long-run average rate — as
//! closed-form functions of speed, AP density, range, join time, and
//! per-AP bandwidth.
//!
//! The model is deliberately first-order (it is the envelope the full
//! simulator is checked against): encounters are independent, chords are
//! averaged over a uniform lateral offset, and a join consumes a fixed
//! expected time at the start of each encounter.

/// Inputs to the planner.
#[derive(Debug, Clone, Copy)]
pub struct CapacityPlan {
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Usable (joinable) open APs per kilometre of road.
    pub aps_per_km: f64,
    /// Radio range, metres.
    pub range_m: f64,
    /// Maximum lateral offset of APs from the road, metres (< range).
    pub lateral_max_m: f64,
    /// Expected time from entering range to flowing data (join cost), s.
    pub join_time_s: f64,
    /// Probability a join attempt succeeds within the encounter.
    pub join_success: f64,
    /// Mean end-to-end bandwidth per joined AP, bytes/s.
    pub per_ap_bps: f64,
}

impl CapacityPlan {
    fn validate(&self) {
        assert!(self.speed_mps > 0.0, "speed must be positive");
        assert!(self.aps_per_km >= 0.0, "negative density");
        assert!(self.range_m > 0.0, "range must be positive");
        assert!(
            (0.0..self.range_m).contains(&self.lateral_max_m),
            "lateral offset must be within range"
        );
        assert!(self.join_time_s >= 0.0, "negative join time");
        assert!(
            (0.0..=1.0).contains(&self.join_success),
            "bad success probability"
        );
        assert!(self.per_ap_bps >= 0.0, "negative bandwidth");
    }

    /// Mean chord length through an AP's coverage disc, averaged over a
    /// uniform lateral offset in `[0, lateral_max]`:
    /// `E[2·√(r² − y²)]`.
    pub fn mean_chord_m(&self) -> f64 {
        self.validate();
        let r = self.range_m;
        let w = self.lateral_max_m;
        if w == 0.0 {
            return 2.0 * r;
        }
        // ∫₀ʷ 2√(r²−y²) dy / w  =  [y√(r²−y²) + r²·asin(y/r)]₀ʷ / w
        (w * (r * r - w * w).sqrt() + r * r * (w / r).asin()) / w
    }

    /// Mean encounter duration, seconds.
    pub fn mean_encounter_s(&self) -> f64 {
        self.mean_chord_m() / self.speed_mps
    }

    /// Encounters per hour of driving.
    pub fn encounters_per_hour(&self) -> f64 {
        self.validate();
        self.speed_mps * 3.6 * self.aps_per_km
    }

    /// Usable seconds per *successful* encounter (after paying the join).
    pub fn usable_seconds(&self) -> f64 {
        (self.mean_encounter_s() - self.join_time_s).max(0.0)
    }

    /// Expected bytes per encounter (join success × usable time × rate).
    pub fn bytes_per_encounter(&self) -> f64 {
        self.join_success * self.usable_seconds() * self.per_ap_bps
    }

    /// Long-run average delivered rate, bytes/s of wall-clock driving.
    pub fn average_rate_bps(&self) -> f64 {
        self.bytes_per_encounter() * self.encounters_per_hour() / 3600.0
    }

    /// Coverage fraction: share of drive time spent inside *some* AP's
    /// range (capped at 1; overlaps make it an upper bound).
    pub fn coverage_fraction(&self) -> f64 {
        (self.mean_chord_m() * self.aps_per_km / 1000.0).min(1.0)
    }

    /// The speed at which the mean encounter equals the join time — beyond
    /// it, the average encounter yields nothing. The planner's version of
    /// the paper's dividing-speed intuition.
    pub fn breakeven_speed_mps(&self) -> f64 {
        self.validate();
        if self.join_time_s == 0.0 {
            return f64::INFINITY;
        }
        self.mean_chord_m() / self.join_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> CapacityPlan {
        CapacityPlan {
            speed_mps: 10.0,
            aps_per_km: 3.5,
            range_m: 90.0,
            lateral_max_m: 45.0,
            join_time_s: 2.0,
            join_success: 0.85,
            per_ap_bps: 150_000.0,
        }
    }

    #[test]
    fn chord_bounds() {
        let p = plan();
        let chord = p.mean_chord_m();
        // Between the chord at the max offset and the full diameter.
        let min_chord = 2.0 * (90.0f64 * 90.0 - 45.0 * 45.0).sqrt();
        assert!(chord > min_chord && chord < 180.0, "chord {chord}");
        // Zero offset degenerates to the diameter.
        let on_road = CapacityPlan {
            lateral_max_m: 0.0,
            ..p
        };
        assert_eq!(on_road.mean_chord_m(), 180.0);
    }

    #[test]
    fn chord_matches_numeric_integration() {
        let p = plan();
        let (r, w) = (p.range_m, p.lateral_max_m);
        let n = 100_000;
        let numeric: f64 = (0..n)
            .map(|i| {
                let y = w * (i as f64 + 0.5) / n as f64;
                2.0 * (r * r - y * y).sqrt()
            })
            .sum::<f64>()
            / n as f64;
        assert!((p.mean_chord_m() - numeric).abs() < 0.01);
    }

    #[test]
    fn faster_is_worse_per_encounter_but_not_per_hour_count() {
        let slow = plan();
        let fast = CapacityPlan {
            speed_mps: 25.0,
            ..plan()
        };
        assert!(fast.mean_encounter_s() < slow.mean_encounter_s());
        assert!(fast.encounters_per_hour() > slow.encounters_per_hour());
        assert!(fast.bytes_per_encounter() < slow.bytes_per_encounter());
    }

    #[test]
    fn join_cost_vanishes_at_breakeven() {
        let p = plan();
        let v = p.breakeven_speed_mps();
        let at_breakeven = CapacityPlan { speed_mps: v, ..p };
        assert!(at_breakeven.usable_seconds() < 1e-9);
        // Just below it, something is usable again.
        let below = CapacityPlan {
            speed_mps: v * 0.9,
            ..p
        };
        assert!(below.usable_seconds() > 0.0);
    }

    #[test]
    fn average_rate_is_consistent() {
        let p = plan();
        // rate = bytes/encounter × encounters/second.
        let per_sec = p.encounters_per_hour() / 3600.0;
        assert!((p.average_rate_bps() - p.bytes_per_encounter() * per_sec).abs() < 1e-9);
        // And lands in the simulator's observed decade (tens of kB/s).
        let kbps = p.average_rate_bps() / 1000.0;
        assert!((5.0..200.0).contains(&kbps), "planned {kbps} kB/s");
    }

    #[test]
    fn coverage_fraction_saturates() {
        let dense = CapacityPlan {
            aps_per_km: 50.0,
            ..plan()
        };
        assert_eq!(dense.coverage_fraction(), 1.0);
        let sparse = CapacityPlan {
            aps_per_km: 1.0,
            ..plan()
        };
        assert!(sparse.coverage_fraction() < 0.2);
    }

    #[test]
    fn instant_joins_have_infinite_breakeven() {
        let p = CapacityPlan {
            join_time_s: 0.0,
            ..plan()
        };
        assert!(p.breakeven_speed_mps().is_infinite());
    }
}
