//! The multi-AP saturation cell model (Panda & Kumar / Bianchi).
//!
//! A spatial cell with `n` co-channel saturated transmitters behaves as
//! one CSMA/CA collision domain. Bianchi's two-equation fixed point —
//! the backbone of Panda & Kumar's multi-cell WLAN model — gives the
//! per-station attempt probability `τ` and conditional collision
//! probability `p`:
//!
//! ```text
//! τ = 2 / (W + 1 + p·W·Σ_{i=0}^{m-1} (2p)^i)      (non-singular form)
//! p = 1 − (1 − τ)^(n−1)
//! ```
//!
//! with `W` the minimum contention window (in slots) and `m` the number
//! of backoff stages. Slot-time analysis then yields the aggregate
//! saturation throughput of the cell and the per-AP share.
//!
//! The `geo::contention` co-channel degree is exactly this model's `n`:
//! the `channel-assignment` experiment uses the pair to score assignment
//! policies analytically before simulating them.

/// Timing and protocol parameters of one CSMA/CA cell.
///
/// All airtimes are microseconds; the defaults in [`CellModel::dsss_11b`]
/// follow 802.11b DSSS long-preamble timing, matching the paper's
/// hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct CellModel {
    /// Minimum contention window `W` in slots (DSSS: 32).
    pub cw_min: u32,
    /// Backoff stages `m` (window doubles up to `2^m · W`; DSSS: 5).
    pub backoff_stages: u32,
    /// Idle slot time σ in µs.
    pub slot_us: f64,
    /// DIFS in µs.
    pub difs_us: f64,
    /// SIFS in µs.
    pub sifs_us: f64,
    /// PHY + MAC header airtime per frame in µs.
    pub header_us: f64,
    /// ACK airtime in µs.
    pub ack_us: f64,
    /// Payload size per frame in bits.
    pub payload_bits: f64,
    /// Data rate in bits/sec.
    pub rate_bps: f64,
}

impl CellModel {
    /// 802.11b DSSS long-preamble parameters at 11 Mbit/s with a
    /// 1500-byte payload.
    pub fn dsss_11b() -> CellModel {
        CellModel {
            cw_min: 32,
            backoff_stages: 5,
            slot_us: 20.0,
            difs_us: 50.0,
            sifs_us: 10.0,
            // 192 µs PHY preamble+header (1 Mbit/s) + 34-byte MAC
            // header/FCS at 11 Mbit/s.
            header_us: 192.0 + 34.0 * 8.0 / 11.0,
            // ACK: PHY preamble + 14 bytes at 11 Mbit/s.
            ack_us: 192.0 + 14.0 * 8.0 / 11.0,
            payload_bits: 1_500.0 * 8.0,
            rate_bps: 11e6,
        }
    }

    /// τ as a function of the collision probability `p` — the
    /// non-singular form of Bianchi's Eq. 7 (finite at `p = 1/2`).
    fn tau_of_p(&self, p: f64) -> f64 {
        let w = self.cw_min as f64;
        let geom: f64 = (0..self.backoff_stages)
            .map(|i| (2.0 * p).powi(i as i32))
            .sum();
        2.0 / (1.0 + w + p * w * geom)
    }

    /// The per-station attempt probability τ for `n` saturated
    /// co-channel stations: the unique fixed point of the two-equation
    /// system, found by bisection (the composite map is strictly
    /// decreasing in τ, so the root is unique).
    pub fn attempt_probability(&self, n: usize) -> f64 {
        assert!(n >= 1, "a cell models at least one station");
        if n == 1 {
            // p = 0 exactly: τ = 2 / (W + 1).
            return self.tau_of_p(0.0);
        }
        let excess = |tau: f64| {
            let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
            self.tau_of_p(p) - tau
        };
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if excess(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The conditional collision probability `p` seen by each of `n`
    /// stations.
    pub fn collision_probability(&self, n: usize) -> f64 {
        let tau = self.attempt_probability(n);
        1.0 - (1.0 - tau).powi(n as i32 - 1)
    }

    /// Aggregate saturation throughput of a cell with `n` co-channel
    /// stations, in bits/sec (Bianchi's slot-time analysis).
    pub fn saturation_throughput_bps(&self, n: usize) -> f64 {
        let tau = self.attempt_probability(n);
        let nf = n as f64;
        // Probability some station transmits in a slot, and that a
        // transmission is a success given one happened.
        let p_tr = 1.0 - (1.0 - tau).powi(n as i32);
        if p_tr <= 0.0 {
            return 0.0;
        }
        let p_s = nf * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr;
        let payload_us = self.payload_bits / self.rate_bps * 1e6;
        let t_success = self.header_us + payload_us + self.sifs_us + self.ack_us + self.difs_us;
        let t_collision = self.header_us + payload_us + self.difs_us;
        let e_slot =
            (1.0 - p_tr) * self.slot_us + p_tr * p_s * t_success + p_tr * (1.0 - p_s) * t_collision;
        p_tr * p_s * self.payload_bits / e_slot * 1e6
    }

    /// The long-run per-AP share of the cell's saturation throughput,
    /// in bits/sec. This is what one AP in a cell of co-channel degree
    /// `n` can actually deliver — the analytical score the
    /// channel-assignment experiment compares policies with.
    pub fn per_ap_throughput_bps(&self, n: usize) -> f64 {
        self.saturation_throughput_bps(n) / n as f64
    }

    /// Offered-load extension: the goodput one of `n` co-channel
    /// stations achieves when each offers `offered_bps` of traffic.
    ///
    /// Below saturation the cell carries everything that is offered;
    /// once the aggregate offer exceeds the Bianchi saturation point the
    /// stations split the saturation throughput evenly (the long-run
    /// fairness of the binary-exponential backoff). This is the curve
    /// the `fleet-contention` experiment checks the DES against: it is
    /// monotone non-increasing in `n` for any fixed offer.
    pub fn per_station_goodput_bps(&self, n: usize, offered_bps: f64) -> f64 {
        assert!(offered_bps >= 0.0, "negative offered load {offered_bps}");
        offered_bps.min(self.saturation_throughput_bps(n) / n as f64)
    }

    /// Aggregate carried load of a cell of `n` stations each offering
    /// `offered_bps`: `n` times [`CellModel::per_station_goodput_bps`].
    pub fn carried_load_bps(&self, n: usize, offered_bps: f64) -> f64 {
        n as f64 * self.per_station_goodput_bps(n, offered_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_tau_is_two_over_w_plus_one() {
        let m = CellModel::dsss_11b();
        let tau = m.attempt_probability(1);
        assert!((tau - 2.0 / 33.0).abs() < 1e-12, "τ(1) = {tau}");
        assert_eq!(m.collision_probability(1), 0.0);
    }

    #[test]
    fn fixed_point_satisfies_both_equations() {
        let m = CellModel::dsss_11b();
        for n in [2, 3, 5, 10, 25, 50] {
            let tau = m.attempt_probability(n);
            assert!((0.0..1.0).contains(&tau), "τ({n}) = {tau}");
            let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
            assert!(
                (m.tau_of_p(p) - tau).abs() < 1e-9,
                "fixed point drifted at n = {n}: τ = {tau}, τ(p(τ)) = {}",
                m.tau_of_p(p)
            );
        }
    }

    #[test]
    fn tau_and_per_ap_share_fall_as_the_cell_fills() {
        let m = CellModel::dsss_11b();
        let mut last_tau = f64::INFINITY;
        let mut last_share = f64::INFINITY;
        for n in 1..=30 {
            let tau = m.attempt_probability(n);
            let share = m.per_ap_throughput_bps(n);
            assert!(tau < last_tau, "τ not decreasing at n = {n}");
            assert!(share < last_share, "per-AP share not decreasing at n = {n}");
            last_tau = tau;
            last_share = share;
        }
    }

    #[test]
    fn throughput_is_bounded_by_the_channel() {
        let m = CellModel::dsss_11b();
        for n in 1..=50 {
            let s = m.saturation_throughput_bps(n);
            assert!(s > 0.0, "S({n}) = {s}");
            assert!(s < m.rate_bps, "S({n}) = {s} exceeds the data rate");
        }
        // One saturated 11 Mbit/s station with DSSS overhead lands in
        // the well-known 5–8 Mbit/s goodput band.
        let one = m.saturation_throughput_bps(1);
        assert!((5e6..8e6).contains(&one), "S(1) = {one}");
    }

    #[test]
    fn offered_load_is_carried_until_saturation_then_shared() {
        let m = CellModel::dsss_11b();
        // A light offer is carried in full regardless of cell size.
        for n in 1..=10 {
            let g = m.per_station_goodput_bps(n, 100e3);
            assert!(
                (g - 100e3).abs() < 1e-6,
                "light offer clipped at n={n}: {g}"
            );
        }
        // A saturating offer gets exactly the fair share.
        let g = m.per_station_goodput_bps(4, 50e6);
        assert!((g - m.saturation_throughput_bps(4) / 4.0).abs() < 1e-6);
        // Carried load is station count times the per-station goodput.
        assert!((m.carried_load_bps(4, 50e6) - 4.0 * g).abs() < 1e-6);
    }

    #[test]
    fn per_station_goodput_is_monotone_non_increasing_in_n() {
        let m = CellModel::dsss_11b();
        for &offered in &[50e3, 500e3, 2e6, 20e6] {
            let mut last = f64::INFINITY;
            for n in 1..=64 {
                let g = m.per_station_goodput_bps(n, offered);
                assert!(
                    g <= last + 1e-9,
                    "goodput rose at n={n}, offer={offered}: {g} > {last}"
                );
                last = g;
            }
            // And it eventually bites: by n=64 a 2 Mb/s offer cannot fit.
            if offered >= 2e6 {
                assert!(last < offered, "offer {offered} never saturated");
            }
        }
    }
}
