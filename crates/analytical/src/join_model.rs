//! The paper's analytical join model (§2.1.1, Eqs. 1–7).
//!
//! Setting: a mobile node runs a round-robin channel schedule with period
//! `D`, spending a fraction `f_i` of each round on the AP's channel `i`
//! and paying a switch delay `w` per round. While on-channel it fires join
//! requests every `c` seconds; a request answered after `β ~ U[βmin, βmax]`
//! succeeds only if the response lands inside one of the node's future
//! on-channel windows. Messages are lost independently with probability
//! `h`, and a join needs both directions: factor `(1 − h)²`.
//!
//! Eq. 5 gives the probability `q(m, n, k)` that the `k`-th request of
//! round `m` is answered inside round `n`'s window; Eq. 6 aggregates over a
//! round's requests; Eq. 7 over all round pairs within the time `t` the
//! node stays in range.
//!
//! Implementation note: `q` depends on rounds only through the gap
//! `d = n − m`, so the no-join probability after `s` rounds is
//! `∏_d Q(d)^(s−d)` with `Q` computed once per gap — this makes the
//! optimizer's repeated evaluations cheap.

/// Parameters of the join model (all times in seconds).
#[derive(Debug, Clone, Copy)]
pub struct JoinModelParams {
    /// Scheduling period `D`.
    pub period: f64,
    /// Fraction of the period spent on the AP's channel, `f_i ∈ [0, 1]`.
    pub fraction: f64,
    /// Channel switch delay `w`.
    pub switch_delay: f64,
    /// Interval between consecutive join requests, `c`.
    pub request_interval: f64,
    /// Fastest AP response, `βmin`.
    pub beta_min: f64,
    /// Slowest AP response, `βmax`.
    pub beta_max: f64,
    /// Per-message loss probability `h`.
    pub loss: f64,
}

impl JoinModelParams {
    /// The parameterization of the paper's Fig. 2 (with `βmax` variable):
    /// `D` = 500 ms, `βmin` = 500 ms, `w` = 7 ms, `c` = 100 ms, `h` = 10 %.
    pub fn figure2(fraction: f64, beta_max: f64) -> JoinModelParams {
        JoinModelParams {
            period: 0.5,
            fraction,
            switch_delay: 0.007,
            request_interval: 0.1,
            beta_min: 0.5,
            beta_max,
            loss: 0.1,
        }
    }

    fn validate(&self) {
        assert!(self.period > 0.0, "period must be positive");
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "fraction out of [0,1]"
        );
        assert!(self.switch_delay >= 0.0, "negative switch delay");
        assert!(
            self.request_interval > 0.0,
            "request interval must be positive"
        );
        assert!(
            self.beta_min >= 0.0 && self.beta_max >= self.beta_min,
            "bad beta range"
        );
        assert!((0.0..=1.0).contains(&self.loss), "loss out of [0,1]");
    }

    /// Maximum join requests per round: `⌈(D·f_i − w)/c⌉` (Eq. 6's product
    /// bound), clamped at 0 when the on-channel window is shorter than the
    /// switch delay.
    pub fn requests_per_round(&self) -> u32 {
        let window = self.period * self.fraction - self.switch_delay;
        if window <= 0.0 {
            0
        } else {
            (window / self.request_interval).ceil() as u32
        }
    }

    /// Eq. 5: probability that the request sent in segment `k` (1-based) of
    /// a round is answered within the on-channel window `gap` rounds later.
    pub fn q(&self, gap: u32, k: u32) -> f64 {
        self.validate();
        let d = self.period;
        let c = self.request_interval;
        let w = self.switch_delay;
        let fi = self.fraction;
        let kf = k as f64;
        let alpha_min = kf * c + self.beta_min;
        let alpha_max = kf * c + self.beta_max;
        let delta_min = gap as f64 * d + c - w;
        let delta_max = (gap as f64 + fi) * d + c - w;
        if delta_min > alpha_max || delta_max < alpha_min {
            return 0.0;
        }
        if alpha_max <= alpha_min {
            // Degenerate β distribution (βmin == βmax): point mass.
            return f64::from(alpha_min >= delta_min && alpha_min <= delta_max);
        }
        (alpha_max.min(delta_max) - alpha_min.max(delta_min)) / (alpha_max - alpha_min)
    }

    /// Eq. 6: probability that *no* request of a round succeeds with its
    /// response `gap` rounds later, in a channel with loss `h`.
    pub fn q_bar(&self, gap: u32) -> f64 {
        let succ = (1.0 - self.loss) * (1.0 - self.loss);
        let mut prod = 1.0;
        for k in 1..=self.requests_per_round() {
            prod *= 1.0 - self.q(gap, k) * succ;
        }
        prod
    }

    /// The largest gap at which a response can still land on-channel:
    /// beyond it `q_bar(gap) = 1` exactly.
    fn max_gap(&self) -> u32 {
        // Response to the last request arrives by K·c + βmax; window for gap
        // d starts at d·D + c − w.
        let latest = self.requests_per_round() as f64 * self.request_interval + self.beta_max;
        ((latest + self.switch_delay) / self.period).ceil() as u32 + 1
    }

    /// Eq. 7: probability of obtaining at least one lease within `t`
    /// seconds in range.
    pub fn p_join(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "negative time in range");
        let rounds = (t / self.period).ceil() as u32;
        1.0 - self.p_no_join_rounds(rounds)
    }

    /// Probability of *not* joining within `rounds` scheduling rounds.
    pub fn p_no_join_rounds(&self, rounds: u32) -> f64 {
        if rounds == 0 || self.fraction == 0.0 {
            return 1.0;
        }
        let max_gap = self.max_gap().min(rounds.saturating_sub(1));
        let mut log_p = 0.0f64;
        for gap in 0..=max_gap {
            let q = self.q_bar(gap);
            if q <= 0.0 {
                return 0.0;
            }
            // Pairs (m, n) with n − m = gap and 1 ≤ m ≤ n ≤ rounds.
            let pairs = (rounds - gap) as f64;
            log_p += pairs * q.ln();
        }
        log_p.exp()
    }

    /// Expected time to obtain a lease, truncated at `horizon`:
    /// `g_T(f_i) = ∫₀ᵀ P(no join by t) dt`, evaluated as a round-level sum.
    /// This is the `g_T` of the paper's optimization constraint (Eq. 9).
    pub fn expected_join_time(&self, horizon: f64) -> f64 {
        assert!(horizon >= 0.0, "negative horizon");
        let rounds = (horizon / self.period).ceil() as u32;
        let mut acc = 0.0;
        for s in 0..rounds {
            // P(no join during rounds 1..=s) holds for t ∈ [s·D, (s+1)·D).
            let step = self.period.min(horizon - s as f64 * self.period);
            acc += self.p_no_join_rounds(s) * step.max(0.0);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(fraction: f64) -> JoinModelParams {
        JoinModelParams::figure2(fraction, 5.0)
    }

    #[test]
    fn q_is_a_probability_everywhere() {
        for f in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let p = params(f);
            for gap in 0..30 {
                for k in 1..=p.requests_per_round() {
                    let q = p.q(gap, k);
                    assert!((0.0..=1.0).contains(&q), "q({gap},{k}) = {q} at f = {f}");
                }
            }
        }
    }

    #[test]
    fn requests_per_round_ceiling() {
        // D·f − w = 500·0.2 − 7 = 93 ms; c = 100 ms → ⌈0.93⌉ = 1.
        assert_eq!(params(0.2).requests_per_round(), 1);
        // f = 0.5: (250 − 7)/100 = 2.43 → 3.
        assert_eq!(params(0.5).requests_per_round(), 3);
        // f = 1: (500 − 7)/100 = 4.93 → 5.
        assert_eq!(params(1.0).requests_per_round(), 5);
        // Window smaller than the switch delay: no requests fit.
        assert_eq!(params(0.01).requests_per_round(), 0);
    }

    #[test]
    fn p_join_monotone_in_fraction() {
        let t = 4.0;
        let mut last = -1.0;
        for f in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let p = params(f).p_join(t);
            assert!((0.0..=1.0).contains(&p));
            assert!(
                p >= last - 1e-9,
                "p_join must not decrease with fraction: f={f} p={p} last={last}"
            );
            last = p;
        }
    }

    #[test]
    fn p_join_monotone_in_time() {
        let p = params(0.4);
        let mut last = -1.0;
        for t in [0.0, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let v = p.p_join(t);
            assert!(v >= last - 1e-12, "p_join must grow with t: t={t} v={v}");
            last = v;
        }
    }

    #[test]
    fn zero_fraction_never_joins() {
        assert_eq!(params(0.0).p_join(100.0), 0.0);
    }

    #[test]
    fn full_time_with_short_beta_joins_reliably() {
        // f = 1, βmax = 1 s, 4 s in range: nearly certain.
        let p = JoinModelParams::figure2(1.0, 1.0);
        assert!(p.p_join(4.0) > 0.99, "p = {}", p.p_join(4.0));
    }

    #[test]
    fn figure2_anchor_points() {
        // The anchors the paper quotes in §2.1.2: "the probability of
        // getting a lease during the first t = 4 seconds falls from 75% to
        // 20% when the percentage of time devoted to the AP reduces from
        // 30% to 10%" — these figures correspond to βmax = 5 s.
        let lo = JoinModelParams::figure2(0.1, 5.0).p_join(4.0);
        assert!((0.12..0.32).contains(&lo), "p(f=0.1) = {lo}, paper ≈ 0.20");
        let mid = JoinModelParams::figure2(0.3, 5.0).p_join(4.0);
        assert!(
            (0.65..0.88).contains(&mid),
            "p(f=0.3) = {mid}, paper ≈ 0.75"
        );
        let hi = JoinModelParams::figure2(1.0, 5.0).p_join(4.0);
        assert!(
            hi > 0.95,
            "p(f=1) = {hi}: full time on channel assures the join"
        );
    }

    #[test]
    fn shorter_beta_max_joins_faster() {
        // Fig. 3's message: smaller βmax ⇒ higher join probability at a
        // fixed fraction.
        let mut last = 2.0;
        for beta_max in [1.0f64, 2.0, 5.0, 10.0] {
            let p = JoinModelParams::figure2(0.25, beta_max).p_join(4.0);
            assert!(
                p <= last + 1e-9,
                "p must fall as βmax grows: βmax={beta_max} p={p}"
            );
            last = p;
        }
    }

    #[test]
    fn switch_delay_has_minor_effect() {
        // Fig. 3 also notes w = 0 barely helps: β and the schedule dominate.
        let with_w = JoinModelParams::figure2(0.5, 10.0).p_join(4.0);
        let without_w = JoinModelParams {
            switch_delay: 0.0,
            ..JoinModelParams::figure2(0.5, 10.0)
        }
        .p_join(4.0);
        assert!(without_w >= with_w);
        assert!(
            (without_w - with_w) < 0.15,
            "switch delay should be a second-order effect: Δ = {}",
            without_w - with_w
        );
    }

    #[test]
    fn expected_join_time_decreases_with_fraction() {
        let t = 20.0;
        let g_low = params(0.1).expected_join_time(t);
        let g_high = params(0.9).expected_join_time(t);
        assert!(g_high < g_low, "g({t}) low-f {g_low} vs high-f {g_high}");
        assert!(g_low <= t + 1e-9);
        assert!(g_high > 0.0);
    }

    #[test]
    fn expected_join_time_zero_fraction_is_horizon() {
        let g = params(0.0).expected_join_time(12.0);
        assert!((g - 12.0).abs() < 1e-9);
    }

    #[test]
    fn q_bar_is_one_beyond_max_gap() {
        let p = params(0.5);
        let far = p.max_gap() + 5;
        assert_eq!(p.q_bar(far), 1.0);
    }
}
