//! # mobility
//!
//! Vehicular mobility and AP deployment for the Spider (CoNEXT 2011)
//! reproduction: the substitute for the paper's five cars driving Amherst
//! and Boston.
//!
//! * [`geometry`] — points, distances, segment–circle intersection.
//! * [`route`] — polyline routes (the paper's repeated fixed loops) and
//!   constant-speed vehicles.
//! * [`deployment`] — open-AP placement with the paper's measured channel
//!   mixes (Amherst 28/33/34 % on 1/6/11; Boston per Cabernet), per-AP
//!   backhaul and DHCP-responsiveness draws.
//! * [`encounter`] — analytic in-range windows; the paper's town yields a
//!   median ≈ 8 s / mean ≈ 22 s encounter, which calibrations target.
//! * [`metro`] — metro-scale street-grid deployments (thousands of APs)
//!   with pluggable channel plans, for the channel-assignment experiment.
//! * [`waypoints`] — plain-text route import/export, so real street
//!   polylines can be driven.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod encounter;
pub mod geometry;
pub mod metro;
pub mod route;
pub mod waypoints;

pub use deployment::{
    deploy_along, deploy_custom, deploy_evenly, ApSite, ChannelMix, CustomDeployment,
    DeploymentConfig,
};
pub use encounter::{encounters, range_intervals, Encounter, EncounterStats};
pub use geometry::Point;
pub use metro::{metro_deployment, metro_route, MetroChannelPlan, MetroConfig};
pub use route::{Route, SpeedProfile, Vehicle};
pub use waypoints::{format_route, parse_route, WaypointError};
