//! Route import/export as plain waypoint text.
//!
//! The paper's vehicles drove real streets; users reproducing on their own
//! maps want to feed their own polylines in. The format is as small as a
//! format can be — one `x,y` pair per line (metres, `#` comments, blank
//! lines ignored), with an optional `loop` directive:
//!
//! ```text
//! # downtown circuit
//! loop
//! 0, 0
//! 1000, 0
//! 1000, 500
//! 0, 500
//! ```

use core::fmt;

use crate::geometry::Point;
use crate::route::Route;

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaypointError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for WaypointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "waypoint parse error on line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for WaypointError {}

/// Parse waypoint text into a [`Route`].
pub fn parse_route(text: &str) -> Result<Route, WaypointError> {
    let mut looped = false;
    let mut points = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("loop") {
            looped = true;
            continue;
        }
        let mut parts = line.split(',');
        let x = parts.next().map(str::trim).ok_or_else(|| WaypointError {
            line: line_no,
            reason: "missing x".into(),
        })?;
        let y = parts.next().map(str::trim).ok_or_else(|| WaypointError {
            line: line_no,
            reason: "missing y".into(),
        })?;
        if parts.next().is_some() {
            return Err(WaypointError {
                line: line_no,
                reason: "too many fields".into(),
            });
        }
        let parse = |s: &str, which: &str| {
            s.parse::<f64>().map_err(|_| WaypointError {
                line: line_no,
                reason: format!("bad {which} coordinate {s:?}"),
            })
        };
        let (x, y) = (parse(x, "x")?, parse(y, "y")?);
        if !x.is_finite() || !y.is_finite() {
            return Err(WaypointError {
                line: line_no,
                reason: "non-finite coordinate".into(),
            });
        }
        points.push(Point::new(x, y));
    }
    if points.len() < 2 {
        return Err(WaypointError {
            line: text.lines().count().max(1),
            reason: format!("need at least 2 waypoints, found {}", points.len()),
        });
    }
    Ok(Route::new(points, looped))
}

/// Render a [`Route`] back to waypoint text (a parse/format round-trip is
/// identity up to whitespace).
pub fn format_route(route: &Route) -> String {
    let mut out = String::new();
    if route.is_loop() {
        out.push_str("loop\n");
    }
    for p in route.vertices() {
        out.push_str(&format!("{}, {}\n", p.x, p.y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let text = "# downtown circuit\nloop\n0, 0\n1000, 0\n1000, 500\n0, 500\n";
        let route = parse_route(text).unwrap();
        assert!(route.is_loop());
        assert_eq!(route.vertices().len(), 4);
        assert_eq!(route.length(), 3_000.0);
    }

    #[test]
    fn comments_blank_lines_and_inline_comments_ignored() {
        let text = "\n# header\n0,0   # start\n\n100, 0\n";
        let route = parse_route(text).unwrap();
        assert_eq!(route.vertices().len(), 2);
        assert!(!route.is_loop());
    }

    #[test]
    fn roundtrip_is_identity() {
        let text = "loop\n0, 0\n250, 0\n250, 125\n";
        let route = parse_route(text).unwrap();
        let again = parse_route(&format_route(&route)).unwrap();
        assert_eq!(again.vertices(), route.vertices());
        assert_eq!(again.is_loop(), route.is_loop());
        assert_eq!(again.length(), route.length());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_route("0,0\nnonsense,5\n10,10\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("bad x"));

        let err = parse_route("0,0\n1,2,3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("too many"));

        let err = parse_route("0,0\n").unwrap_err();
        assert!(err.reason.contains("at least 2"));

        let err = parse_route("0,0\n1,inf\n").unwrap_err();
        assert!(err.reason.contains("non-finite") || err.reason.contains("bad y"));
    }

    #[test]
    fn loop_directive_is_case_insensitive() {
        let route = parse_route("LOOP\n0,0\n10,0\n10,10\n").unwrap();
        assert!(route.is_loop());
    }
}
