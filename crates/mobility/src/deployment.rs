//! AP deployment generators: place open APs along a road the way a dense
//! urban area (the paper's Amherst/Boston environments) does.
//!
//! The measured channel distributions the paper reports:
//!
//! * Amherst: 28 % on channel 1, 33 % on channel 6, 34 % on channel 11
//!   (≈ 5 % elsewhere);
//! * Boston (via Cabernet): 83 % on the three orthogonal channels overall,
//!   39 % on channel 6.
//!
//! Backhaul links are drawn per AP; the paper's Fig. 10c observation that
//! "in urban regions the backhaul bandwidth is rarely greater than the
//! wireless bandwidth" motivates the default DSL/cable-like range. DHCP
//! responsiveness also varies per AP, which is exactly why Spider's
//! join-history AP selection has something to learn.

use sim_engine::dist::Dist;
use sim_engine::rng::Rng;
use sim_engine::time::Duration;
use wifi_mac::channel::Channel;

use crate::geometry::Point;
use crate::route::Route;

/// Probability mix over channels for a deployment.
#[derive(Debug, Clone)]
pub struct ChannelMix {
    /// `(channel, weight)` pairs; weights need not sum to 1.
    pub weights: Vec<(Channel, f64)>,
}

impl ChannelMix {
    /// The Amherst mix measured by the paper (§4.1). The ~5 % of APs on
    /// other channels are folded into channel 3 as a representative
    /// non-orthogonal straggler.
    pub fn amherst() -> ChannelMix {
        ChannelMix {
            weights: vec![
                (Channel::CH1, 0.28),
                (Channel::CH6, 0.33),
                (Channel::CH11, 0.34),
                (Channel::from_number(3), 0.05),
            ],
        }
    }

    /// The Boston mix reported by Cabernet: 83 % on 1/6/11 with 39 % on
    /// channel 6.
    pub fn boston() -> ChannelMix {
        ChannelMix {
            weights: vec![
                (Channel::CH1, 0.22),
                (Channel::CH6, 0.39),
                (Channel::CH11, 0.22),
                (Channel::from_number(3), 0.17),
            ],
        }
    }

    /// Everything on a single channel (for controlled micro-benchmarks).
    pub fn single(channel: Channel) -> ChannelMix {
        ChannelMix {
            weights: vec![(channel, 1.0)],
        }
    }

    /// Draw a channel.
    pub fn draw(&self, rng: &mut Rng) -> Channel {
        let ws: Vec<f64> = self.weights.iter().map(|&(_, w)| w).collect();
        self.weights[rng.weighted_index(&ws)].0
    }
}

/// One deployed access point.
#[derive(Debug, Clone)]
pub struct ApSite {
    /// Unique id within the deployment.
    pub id: u32,
    /// Location.
    pub position: Point,
    /// Operating channel.
    pub channel: Channel,
    /// End-to-end backhaul bandwidth, bits/s.
    pub backhaul_bps: u64,
    /// DHCP server response delay floor.
    pub dhcp_delay_min: Duration,
    /// DHCP server response delay ceiling.
    pub dhcp_delay_max: Duration,
}

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Open APs per kilometre of road.
    pub density_per_km: f64,
    /// Maximum lateral offset of an AP from the road centreline, m
    /// (buildings flanking the street).
    pub lateral_offset_max: f64,
    /// Channel assignment mix.
    pub channel_mix: ChannelMix,
    /// Backhaul draw, bits/s, uniform in `[min, max)`.
    pub backhaul_bps_min: u64,
    /// See `backhaul_bps_min`.
    pub backhaul_bps_max: u64,
    /// Per-AP DHCP delay floor, uniform in `[min, max)`.
    pub dhcp_floor_min: Duration,
    /// See `dhcp_floor_min`.
    pub dhcp_floor_max: Duration,
    /// Per-AP DHCP delay ceiling, uniform in `[min, max)`. Heterogeneous
    /// ceilings (some APs answer in under a second, some take many) are
    /// what make join-history AP selection worthwhile.
    pub dhcp_ceiling_min: Duration,
    /// See `dhcp_ceiling_min`.
    pub dhcp_ceiling_max: Duration,
}

impl DeploymentConfig {
    /// An Amherst-like downtown: a modest density of *open* APs (most of
    /// the town's APs are encrypted and invisible to Spider), set back
    /// from the curb — calibrated so encounters match the paper's median
    /// ≈ 8 s / mean ≈ 22 s at 10 m/s and coverage is far from continuous.
    pub fn amherst() -> DeploymentConfig {
        DeploymentConfig {
            density_per_km: 3.5,
            lateral_offset_max: 45.0,
            channel_mix: ChannelMix::amherst(),
            backhaul_bps_min: 512_000,   // DSL-era downlinks
            backhaul_bps_max: 4_000_000, // entry cable
            dhcp_floor_min: Duration::from_millis(100),
            dhcp_floor_max: Duration::from_millis(400),
            dhcp_ceiling_min: Duration::from_millis(400),
            dhcp_ceiling_max: Duration::from_millis(2_200),
        }
    }

    /// A denser Boston-like corridor.
    pub fn boston() -> DeploymentConfig {
        DeploymentConfig {
            density_per_km: 6.0,
            channel_mix: ChannelMix::boston(),
            ..DeploymentConfig::amherst()
        }
    }
}

/// Deploy APs along a route: a Poisson-like process at the configured
/// density, with lateral offsets and per-AP channel/backhaul/DHCP draws.
pub fn deploy_along(route: &Route, config: &DeploymentConfig, rng: &mut Rng) -> Vec<ApSite> {
    assert!(
        config.density_per_km > 0.0,
        "deploy_along: non-positive density"
    );
    let mean_gap_m = 1_000.0 / config.density_per_km;
    let mut sites = Vec::new();
    let mut along = rng.exp(mean_gap_m);
    let mut id = 0u32;
    while along < route.length() {
        let centre = route.position_at_distance(along);
        // Lateral offset perpendicular-ish: a uniform square offset is fine
        // at these scales.
        let dx = rng.range_f64(-config.lateral_offset_max, config.lateral_offset_max);
        let dy = rng.range_f64(-config.lateral_offset_max, config.lateral_offset_max);
        let floor = rng.duration_between(config.dhcp_floor_min, config.dhcp_floor_max);
        let ceiling = rng
            .duration_between(config.dhcp_ceiling_min, config.dhcp_ceiling_max)
            .max(floor + Duration::from_millis(100));
        sites.push(ApSite {
            id,
            position: Point::new(centre.x + dx, centre.y + dy),
            channel: config.channel_mix.draw(rng),
            backhaul_bps: rng.range_u64(config.backhaul_bps_min, config.backhaul_bps_max),
            dhcp_delay_min: floor,
            dhcp_delay_max: ceiling,
        });
        id += 1;
        along += rng.exp(mean_gap_m);
    }
    sites
}

/// Place `n` APs evenly along a route (controlled experiments).
pub fn deploy_evenly(
    route: &Route,
    n: usize,
    config: &DeploymentConfig,
    rng: &mut Rng,
) -> Vec<ApSite> {
    assert!(n > 0, "deploy_evenly: zero APs");
    (0..n)
        .map(|i| {
            let along = route.length() * i as f64 / n as f64;
            let floor = rng.duration_between(config.dhcp_floor_min, config.dhcp_floor_max);
            let ceiling = rng
                .duration_between(config.dhcp_ceiling_min, config.dhcp_ceiling_max)
                .max(floor + Duration::from_millis(100));
            ApSite {
                id: i as u32,
                position: route.position_at_distance(along),
                channel: config.channel_mix.draw(rng),
                backhaul_bps: rng.range_u64(config.backhaul_bps_min, config.backhaul_bps_max),
                dhcp_delay_min: floor,
                dhcp_delay_max: ceiling,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_road() -> Route {
        Route::straight(Point::new(0.0, 0.0), Point::new(10_000.0, 0.0))
    }

    #[test]
    fn density_is_respected() {
        let route = long_road(); // 10 km
        let cfg = DeploymentConfig::amherst(); // 3.5 APs/km → ~35 expected
        let mut rng = Rng::new(42);
        let mut total = 0usize;
        let runs = 40;
        for _ in 0..runs {
            total += deploy_along(&route, &cfg, &mut rng).len();
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (28.0..42.0).contains(&mean),
            "mean APs {mean}, expected ≈ 35"
        );
    }

    #[test]
    fn amherst_channel_mix_matches_paper() {
        let route = long_road();
        let cfg = DeploymentConfig::amherst();
        let mut rng = Rng::new(7);
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for _ in 0..50 {
            for site in deploy_along(&route, &cfg, &mut rng) {
                total += 1;
                match site.channel.number() {
                    1 => counts[0] += 1,
                    6 => counts[1] += 1,
                    11 => counts[2] += 1,
                    _ => {}
                }
            }
        }
        let f1 = counts[0] as f64 / total as f64;
        let f6 = counts[1] as f64 / total as f64;
        let f11 = counts[2] as f64 / total as f64;
        assert!((f1 - 0.28).abs() < 0.03, "ch1 fraction {f1}");
        assert!((f6 - 0.33).abs() < 0.03, "ch6 fraction {f6}");
        assert!((f11 - 0.34).abs() < 0.03, "ch11 fraction {f11}");
    }

    #[test]
    fn sites_near_road() {
        let route = long_road();
        let cfg = DeploymentConfig::amherst();
        let mut rng = Rng::new(9);
        for site in deploy_along(&route, &cfg, &mut rng) {
            assert!(site.position.y.abs() <= cfg.lateral_offset_max + 1e-9);
            assert!((-30.0..10_030.0).contains(&site.position.x));
        }
    }

    #[test]
    fn dhcp_delays_well_formed() {
        let route = long_road();
        let cfg = DeploymentConfig::amherst();
        let mut rng = Rng::new(10);
        for site in deploy_along(&route, &cfg, &mut rng) {
            assert!(site.dhcp_delay_min < site.dhcp_delay_max);
            assert!(site.dhcp_delay_min >= cfg.dhcp_floor_min);
        }
    }

    #[test]
    fn backhaul_in_configured_band() {
        let route = long_road();
        let cfg = DeploymentConfig::amherst();
        let mut rng = Rng::new(11);
        for site in deploy_along(&route, &cfg, &mut rng) {
            assert!((cfg.backhaul_bps_min..cfg.backhaul_bps_max).contains(&site.backhaul_bps));
        }
    }

    #[test]
    fn even_deployment_spacing() {
        let route = long_road();
        let cfg = DeploymentConfig {
            channel_mix: ChannelMix::single(Channel::CH1),
            ..DeploymentConfig::amherst()
        };
        let mut rng = Rng::new(12);
        let sites = deploy_evenly(&route, 10, &cfg, &mut rng);
        assert_eq!(sites.len(), 10);
        assert!(sites.iter().all(|s| s.channel == Channel::CH1));
        assert_eq!(sites[0].position.x, 0.0);
        assert_eq!(sites[5].position.x, 5_000.0);
    }

    #[test]
    fn single_mix_draws_only_that_channel() {
        let mix = ChannelMix::single(Channel::CH6);
        let mut rng = Rng::new(13);
        for _ in 0..100 {
            assert_eq!(mix.draw(&mut rng), Channel::CH6);
        }
    }
}

/// A fully distribution-parameterized deployment, for environments beyond
/// the built-in Amherst/Boston presets. Every knob is a [`Dist`], so a
/// user can model e.g. Pareto-spaced APs with log-normal backhauls.
#[derive(Debug, Clone)]
pub struct CustomDeployment {
    /// Gap between consecutive APs along the road, metres.
    pub spacing_m: Dist,
    /// Unsigned lateral offset from the centreline, metres (sign drawn
    /// separately).
    pub lateral_m: Dist,
    /// Channel assignment.
    pub channel_mix: ChannelMix,
    /// Backhaul bandwidth, bits/s.
    pub backhaul_bps: Dist,
    /// DHCP response-delay floor, seconds.
    pub dhcp_floor_s: Dist,
    /// DHCP response-delay ceiling, seconds (clamped above the floor).
    pub dhcp_ceiling_s: Dist,
}

impl CustomDeployment {
    fn validate(&self) {
        for (name, d) in [
            ("spacing_m", &self.spacing_m),
            ("lateral_m", &self.lateral_m),
            ("backhaul_bps", &self.backhaul_bps),
            ("dhcp_floor_s", &self.dhcp_floor_s),
            ("dhcp_ceiling_s", &self.dhcp_ceiling_s),
        ] {
            if let Err(e) = d.validate() {
                // simlint: allow(panic-path) — config validation at deployment construction: an invalid distribution is a caller error that must abort before any AP is placed
                panic!("CustomDeployment.{name}: {e}");
            }
        }
    }
}

/// Deploy APs along `route` from distribution-valued parameters.
pub fn deploy_custom(route: &Route, config: &CustomDeployment, rng: &mut Rng) -> Vec<ApSite> {
    config.validate();
    let mut sites = Vec::new();
    let mut along = config.spacing_m.sample(rng).max(1.0);
    let mut id = 0u32;
    while along < route.length() {
        let centre = route.position_at_distance(along);
        let lateral = config.lateral_m.sample(rng);
        let side = if rng.chance(0.5) { 1.0 } else { -1.0 };
        let floor = config.dhcp_floor_s.sample(rng).max(0.001);
        let ceiling = config.dhcp_ceiling_s.sample(rng).max(floor + 0.05);
        sites.push(ApSite {
            id,
            position: Point::new(centre.x, centre.y + side * lateral),
            channel: config.channel_mix.draw(rng),
            backhaul_bps: (config.backhaul_bps.sample(rng).max(64_000.0)) as u64,
            dhcp_delay_min: Duration::from_secs_f64(floor),
            dhcp_delay_max: Duration::from_secs_f64(ceiling),
        });
        id += 1;
        along += config.spacing_m.sample(rng).max(1.0);
    }
    sites
}

#[cfg(test)]
mod custom_tests {
    use super::*;

    fn custom() -> CustomDeployment {
        CustomDeployment {
            spacing_m: Dist::Exponential { mean: 250.0 },
            lateral_m: Dist::Uniform { lo: 0.0, hi: 60.0 },
            channel_mix: ChannelMix::amherst(),
            backhaul_bps: Dist::LogNormal {
                mu: 14.2,
                sigma: 0.6,
            }, // ≈ 1.8 Mb/s median
            dhcp_floor_s: Dist::Uniform { lo: 0.1, hi: 0.4 },
            dhcp_ceiling_s: Dist::Uniform { lo: 0.4, hi: 2.0 },
        }
    }

    #[test]
    fn custom_deployment_produces_wellformed_sites() {
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(20_000.0, 0.0));
        let mut rng = Rng::new(42);
        let sites = deploy_custom(&route, &custom(), &mut rng);
        assert!(sites.len() > 30, "expected ≈ 80 sites, got {}", sites.len());
        for s in &sites {
            assert!(s.dhcp_delay_min < s.dhcp_delay_max);
            assert!(s.backhaul_bps >= 64_000);
            assert!(s.position.y.abs() <= 60.0 + 1e-9);
        }
        // Both sides of the road are used.
        assert!(sites.iter().any(|s| s.position.y > 0.0));
        assert!(sites.iter().any(|s| s.position.y < 0.0));
    }

    #[test]
    fn custom_deployment_is_deterministic() {
        let route = Route::rectangle(2_000.0, 1_000.0);
        let a = deploy_custom(&route, &custom(), &mut Rng::new(9));
        let b = deploy_custom(&route, &custom(), &mut Rng::new(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.backhaul_bps, y.backhaul_bps);
        }
    }

    #[test]
    #[should_panic(expected = "CustomDeployment.spacing_m")]
    fn invalid_distribution_panics() {
        let mut bad = custom();
        bad.spacing_m = Dist::Exponential { mean: -1.0 };
        let route = Route::rectangle(100.0, 100.0);
        deploy_custom(&route, &bad, &mut Rng::new(1));
    }
}
