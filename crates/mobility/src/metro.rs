//! Metro-scale deployments: thousands of APs on a street grid.
//!
//! The road deployments in [`crate::deployment`] model what one car sees
//! along one route. A metro world models the whole downtown: a
//! `blocks_x × blocks_y` street grid with `aps_per_block` open APs per
//! block, under a configurable **channel plan** — the knob the
//! `channel-assignment` experiment sweeps.
//!
//! Determinism contract: `metro_deployment` forks the caller's RNG into
//! independent placement / channel / network-parameter streams, so two
//! configs that differ **only in channel plan** produce byte-identical AP
//! positions, backhauls, and DHCP draws for the same seed. Policy
//! comparisons therefore measure the plan, not placement noise.

use sim_engine::rng::Rng;
use sim_engine::time::Duration;
use wifi_mac::channel::{Channel, ORTHOGONAL};

use crate::deployment::{ApSite, ChannelMix};
use crate::geometry::Point;
use crate::route::Route;

/// How a metro deployment assigns channels to APs.
#[derive(Debug, Clone)]
pub enum MetroChannelPlan {
    /// Every AP on one channel (the worst case a planner can do).
    Single(Channel),
    /// Orthogonal channels round-robin by AP id, blind to geometry.
    RoundRobin,
    /// A proper 3-coloring of the block grid: block `(bx, by)` gets
    /// `ORTHOGONAL[(bx + 2·by) mod 3]`, so no two adjacent blocks (N/S,
    /// E/W, or diagonal neighbours in one axis) share a channel.
    GridColor,
    /// Channels drawn from a measured mix (what an unplanned city does).
    Mix(ChannelMix),
}

impl MetroChannelPlan {
    /// Short stable name for tables and RunRecord labels.
    pub fn name(&self) -> &'static str {
        match self {
            MetroChannelPlan::Single(_) => "single",
            MetroChannelPlan::RoundRobin => "round-robin",
            MetroChannelPlan::GridColor => "grid-color",
            MetroChannelPlan::Mix(_) => "measured-mix",
        }
    }
}

/// Parameters of a street-grid metro deployment.
#[derive(Debug, Clone)]
pub struct MetroConfig {
    /// Blocks east–west.
    pub blocks_x: u32,
    /// Blocks north–south.
    pub blocks_y: u32,
    /// Block edge length, metres.
    pub block_m: f64,
    /// Open APs per block, spread along the block perimeter.
    pub aps_per_block: u32,
    /// Maximum per-axis placement jitter, metres (buildings are not
    /// surveyed to the curb).
    pub jitter_m: f64,
    /// Channel plan.
    pub plan: MetroChannelPlan,
    /// Backhaul draw, bits/s, uniform in `[min, max)`.
    pub backhaul_bps_min: u64,
    /// See `backhaul_bps_min`.
    pub backhaul_bps_max: u64,
    /// Per-AP DHCP delay floor, uniform in `[min, max)`.
    pub dhcp_floor_min: Duration,
    /// See `dhcp_floor_min`.
    pub dhcp_floor_max: Duration,
    /// Per-AP DHCP delay ceiling, uniform in `[min, max)`.
    pub dhcp_ceiling_min: Duration,
    /// See `dhcp_ceiling_min`.
    pub dhcp_ceiling_max: Duration,
}

impl MetroConfig {
    /// A dense downtown: 16 × 16 blocks of 80 m with 4 open APs per
    /// block — 1024 APs over ≈ 1.6 km², with Amherst-like backhaul and
    /// DHCP heterogeneity.
    pub fn downtown() -> MetroConfig {
        MetroConfig {
            blocks_x: 16,
            blocks_y: 16,
            block_m: 80.0,
            aps_per_block: 4,
            jitter_m: 6.0,
            plan: MetroChannelPlan::Mix(ChannelMix::amherst()),
            backhaul_bps_min: 512_000,
            backhaul_bps_max: 4_000_000,
            dhcp_floor_min: Duration::from_millis(100),
            dhcp_floor_max: Duration::from_millis(400),
            dhcp_ceiling_min: Duration::from_millis(400),
            dhcp_ceiling_max: Duration::from_millis(2_200),
        }
    }

    /// Total APs the config will place.
    pub fn ap_count(&self) -> usize {
        self.blocks_x as usize * self.blocks_y as usize * self.aps_per_block as usize
    }

    /// The same config under a different channel plan (placement and
    /// network draws stay byte-identical for the same seed).
    pub fn with_plan(mut self, plan: MetroChannelPlan) -> MetroConfig {
        self.plan = plan;
        self
    }
}

/// Generate the metro deployment: ids are monotone from 0, blocks in
/// row-major `(by, bx)` order, APs spread along each block's perimeter.
pub fn metro_deployment(config: &MetroConfig, rng: &mut Rng) -> Vec<ApSite> {
    assert!(
        config.blocks_x >= 1 && config.blocks_y >= 1 && config.aps_per_block >= 1,
        "metro_deployment: empty grid"
    );
    assert!(
        config.block_m > 0.0 && config.jitter_m >= 0.0,
        "metro_deployment: bad geometry"
    );
    // Independent streams: differing channel plans must not perturb
    // placement or network parameters.
    let mut place_rng = rng.fork(1);
    let mut chan_rng = rng.fork(2);
    let mut net_rng = rng.fork(3);

    let per_ap_step = 4.0 * config.block_m / config.aps_per_block as f64;
    let mut sites = Vec::with_capacity(config.ap_count());
    let mut id = 0u32;
    for by in 0..config.blocks_y {
        for bx in 0..config.blocks_x {
            let x0 = bx as f64 * config.block_m;
            let y0 = by as f64 * config.block_m;
            for k in 0..config.aps_per_block {
                // Walk the block perimeter counter-clockwise from the
                // south-west corner.
                let along = (k as f64 + 0.5) * per_ap_step;
                let b = config.block_m;
                let (px, py) = if along < b {
                    (x0 + along, y0)
                } else if along < 2.0 * b {
                    (x0 + b, y0 + (along - b))
                } else if along < 3.0 * b {
                    (x0 + b - (along - 2.0 * b), y0 + b)
                } else {
                    (x0, y0 + b - (along - 3.0 * b))
                };
                let dx = place_rng.range_f64(-config.jitter_m, config.jitter_m);
                let dy = place_rng.range_f64(-config.jitter_m, config.jitter_m);
                let channel = match &config.plan {
                    MetroChannelPlan::Single(ch) => *ch,
                    MetroChannelPlan::RoundRobin => ORTHOGONAL[id as usize % ORTHOGONAL.len()],
                    MetroChannelPlan::GridColor => {
                        ORTHOGONAL[(bx as usize + 2 * by as usize) % ORTHOGONAL.len()]
                    }
                    MetroChannelPlan::Mix(mix) => mix.draw(&mut chan_rng),
                };
                let floor = net_rng.duration_between(config.dhcp_floor_min, config.dhcp_floor_max);
                let ceiling = net_rng
                    .duration_between(config.dhcp_ceiling_min, config.dhcp_ceiling_max)
                    .max(floor + Duration::from_millis(100));
                sites.push(ApSite {
                    id,
                    position: Point::new(px + dx, py + dy),
                    channel,
                    backhaul_bps: net_rng
                        .range_u64(config.backhaul_bps_min, config.backhaul_bps_max),
                    dhcp_delay_min: floor,
                    dhcp_delay_max: ceiling,
                });
                id += 1;
            }
        }
    }
    sites
}

/// The canonical metro drive: a rectangular lap inset one block from the
/// grid's edge, so the car passes dense interior blocks on both sides.
///
/// # Panics
/// Panics when the grid is smaller than 3 × 3 blocks (no interior lap).
pub fn metro_route(config: &MetroConfig) -> Route {
    assert!(
        config.blocks_x >= 3 && config.blocks_y >= 3,
        "metro_route: grid too small for an interior lap"
    );
    let b = config.block_m;
    Route::new(
        vec![
            Point::new(b, b),
            Point::new((config.blocks_x - 1) as f64 * b, b),
            Point::new(
                (config.blocks_x - 1) as f64 * b,
                (config.blocks_y - 1) as f64 * b,
            ),
            Point::new(b, (config.blocks_y - 1) as f64 * b),
        ],
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtown_places_1024_aps_in_bounds() {
        let cfg = MetroConfig::downtown();
        assert_eq!(cfg.ap_count(), 1024);
        let sites = metro_deployment(&cfg, &mut Rng::new(1));
        assert_eq!(sites.len(), 1024);
        let extent_x = cfg.blocks_x as f64 * cfg.block_m + cfg.jitter_m;
        let extent_y = cfg.blocks_y as f64 * cfg.block_m + cfg.jitter_m;
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id, i as u32, "ids monotone from 0");
            assert!((-cfg.jitter_m..=extent_x).contains(&s.position.x));
            assert!((-cfg.jitter_m..=extent_y).contains(&s.position.y));
            assert!(s.dhcp_delay_min < s.dhcp_delay_max);
        }
    }

    #[test]
    fn placement_is_invariant_under_channel_plan() {
        let base = MetroConfig::downtown();
        let a = metro_deployment(&base, &mut Rng::new(77));
        let b = metro_deployment(
            &base.clone().with_plan(MetroChannelPlan::GridColor),
            &mut Rng::new(77),
        );
        let c = metro_deployment(
            &base.with_plan(MetroChannelPlan::Single(Channel::CH6)),
            &mut Rng::new(77),
        );
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.position, z.position);
            assert_eq!(x.backhaul_bps, y.backhaul_bps);
            assert_eq!(x.dhcp_delay_min, z.dhcp_delay_min);
            assert_eq!(x.dhcp_delay_max, z.dhcp_delay_max);
        }
        assert!(c.iter().all(|s| s.channel == Channel::CH6));
    }

    #[test]
    fn grid_color_gives_adjacent_blocks_distinct_channels() {
        let cfg = MetroConfig::downtown().with_plan(MetroChannelPlan::GridColor);
        let sites = metro_deployment(&cfg, &mut Rng::new(5));
        let per_block = cfg.aps_per_block as usize;
        let block_channel =
            |bx: usize, by: usize| sites[(by * cfg.blocks_x as usize + bx) * per_block].channel;
        for by in 0..cfg.blocks_y as usize {
            for bx in 0..cfg.blocks_x as usize {
                let ch = block_channel(bx, by);
                assert!(ORTHOGONAL.contains(&ch));
                if bx + 1 < cfg.blocks_x as usize {
                    assert_ne!(ch, block_channel(bx + 1, by), "E/W neighbours share");
                }
                if by + 1 < cfg.blocks_y as usize {
                    assert_ne!(ch, block_channel(bx, by + 1), "N/S neighbours share");
                }
            }
        }
    }

    #[test]
    fn round_robin_is_balanced() {
        let cfg = MetroConfig::downtown().with_plan(MetroChannelPlan::RoundRobin);
        let sites = metro_deployment(&cfg, &mut Rng::new(2));
        for ch in ORTHOGONAL {
            let n = sites.iter().filter(|s| s.channel == ch).count();
            assert!((341..=342).contains(&n), "{ch:?}: {n}");
        }
    }

    #[test]
    fn route_laps_the_interior() {
        let cfg = MetroConfig::downtown();
        let route = metro_route(&cfg);
        // 14 blocks a side, 4 sides.
        assert!((route.length() - 4.0 * 14.0 * 80.0).abs() < 1e-9);
    }
}
