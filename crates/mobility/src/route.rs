//! Vehicle routes: polylines driven at a (piecewise-constant) speed.
//!
//! The paper's outdoor experiments drove fixed loops around Amherst and
//! Boston for 30–60 minutes ("the node repeatedly following the same
//! route"), so the canonical route here is a closed loop traversed
//! repeatedly.

use sim_engine::time::Instant;

use crate::geometry::Point;

/// A polyline route, optionally closed into a loop.
#[derive(Debug, Clone)]
pub struct Route {
    points: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] = 0`.
    cum: Vec<f64>,
    looped: bool,
}

impl Route {
    /// A route along the given vertices. `looped` appends the implicit
    /// closing segment back to the first vertex and makes distance wrap.
    ///
    /// # Panics
    /// Panics with fewer than 2 vertices or zero total length.
    pub fn new(points: Vec<Point>, looped: bool) -> Route {
        assert!(points.len() >= 2, "Route::new: need at least 2 vertices");
        let mut cum = Vec::with_capacity(points.len() + 1);
        let mut total = 0.0;
        cum.push(total);
        for w in points.windows(2) {
            total += w[0].distance(w[1]);
            cum.push(total);
        }
        if looped {
            total += points[points.len() - 1].distance(points[0]);
            cum.push(total);
        }
        assert!(total > 0.0, "Route::new: zero-length route");
        Route {
            points,
            cum,
            looped,
        }
    }

    /// A straight road from `a` to `b` (driven once, then parked at `b`).
    pub fn straight(a: Point, b: Point) -> Route {
        Route::new(vec![a, b], false)
    }

    /// A rectangular city-block loop anchored at the origin.
    pub fn rectangle(width: f64, height: f64) -> Route {
        Route::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(width, 0.0),
                Point::new(width, height),
                Point::new(0.0, height),
            ],
            true,
        )
    }

    /// Total length of one traversal, m.
    pub fn length(&self) -> f64 {
        // `cum` always holds at least the leading 0.0.
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// True if the route loops.
    pub fn is_loop(&self) -> bool {
        self.looped
    }

    /// The vertices (without the implicit closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.points
    }

    fn vertex(&self, i: usize) -> Point {
        // With `looped`, index len() refers back to vertex 0.
        if i < self.points.len() {
            self.points[i]
        } else {
            self.points[0]
        }
    }

    /// Number of segments (including the closing one when looped).
    pub fn segment_count(&self) -> usize {
        self.cum.len() - 1
    }

    /// Segment `i` as `(start, end, start_distance, length)`.
    pub fn segment(&self, i: usize) -> (Point, Point, f64, f64) {
        let a = self.vertex(i);
        let b = self.vertex(i + 1);
        (a, b, self.cum[i], self.cum[i + 1] - self.cum[i])
    }

    /// Position after driving `dist` metres from the start. Loops wrap;
    /// open routes clamp at the final vertex.
    pub fn position_at_distance(&self, dist: f64) -> Point {
        let total = self.length();
        let d = if self.looped {
            dist.rem_euclid(total)
        } else if dist >= total {
            return self.vertex(self.points.len() - 1);
        } else {
            dist.max(0.0)
        };
        // Find the segment containing d.
        let idx = match self.cum.binary_search_by(|c| c.total_cmp(&d)) {
            Ok(i) => i.min(self.cum.len() - 2),
            Err(i) => i - 1,
        };
        let (a, b, start, len) = self.segment(idx);
        if len == 0.0 {
            return a;
        }
        a.lerp(b, (d - start) / len)
    }
}

/// How a vehicle's speed evolves along its drive.
#[derive(Debug, Clone)]
pub enum SpeedProfile {
    /// Constant cruising speed, m/s.
    Constant(f64),
    /// Urban stop-and-go: cruise at `cruise` m/s, but every `stop_every`
    /// metres of road, dwell stationary for `stop_for` seconds (traffic
    /// lights, stop signs). This is what skews real encounter-duration
    /// distributions: a stop inside an AP's footprint makes a long
    /// encounter, while the cruising majority graze past.
    StopAndGo {
        /// Cruising speed, m/s.
        cruise: f64,
        /// Metres of road between stops.
        stop_every: f64,
        /// Dwell per stop, seconds.
        stop_for: f64,
    },
}

impl SpeedProfile {
    fn validate(&self) {
        match *self {
            SpeedProfile::Constant(v) => {
                assert!(v > 0.0 && v.is_finite(), "SpeedProfile: bad speed {v}")
            }
            SpeedProfile::StopAndGo {
                cruise,
                stop_every,
                stop_for,
            } => {
                assert!(cruise > 0.0 && cruise.is_finite(), "bad cruise {cruise}");
                assert!(stop_every > 0.0, "bad stop spacing {stop_every}");
                assert!(stop_for >= 0.0, "bad stop dwell {stop_for}");
            }
        }
    }

    /// Distance covered after `t` seconds of driving.
    pub fn distance_after(&self, t: f64) -> f64 {
        match *self {
            SpeedProfile::Constant(v) => v * t,
            SpeedProfile::StopAndGo {
                cruise,
                stop_every,
                stop_for,
            } => {
                // One cycle = drive `stop_every` metres, then dwell.
                let cycle_t = stop_every / cruise + stop_for;
                let cycles = (t / cycle_t).floor();
                let rem = t - cycles * cycle_t;
                let within = (rem * cruise).min(stop_every);
                cycles * stop_every + within
            }
        }
    }

    /// Seconds of driving needed to cover `d` metres (the inverse of
    /// [`SpeedProfile::distance_after`]; stops count toward the time).
    pub fn time_to_distance(&self, d: f64) -> f64 {
        match *self {
            SpeedProfile::Constant(v) => d / v,
            SpeedProfile::StopAndGo {
                cruise,
                stop_every,
                stop_for,
            } => {
                let cycle_t = stop_every / cruise + stop_for;
                let cycles = (d / stop_every).floor();
                let rem = d - cycles * stop_every;
                cycles * cycle_t + rem / cruise
            }
        }
    }

    /// Long-run average speed, m/s.
    pub fn mean_speed(&self) -> f64 {
        match *self {
            SpeedProfile::Constant(v) => v,
            SpeedProfile::StopAndGo {
                cruise,
                stop_every,
                stop_for,
            } => stop_every / (stop_every / cruise + stop_for),
        }
    }
}

/// A vehicle driving a route under a speed profile.
#[derive(Debug, Clone)]
pub struct Vehicle {
    route: Route,
    profile: SpeedProfile,
    /// When the drive started.
    departed: Instant,
}

impl Vehicle {
    /// A vehicle that starts driving `route` at a constant `speed` m/s at
    /// `departed`.
    ///
    /// # Panics
    /// Panics on non-positive speed.
    pub fn new(route: Route, speed: f64, departed: Instant) -> Vehicle {
        Vehicle::with_profile(route, SpeedProfile::Constant(speed), departed)
    }

    /// A vehicle with an arbitrary speed profile.
    pub fn with_profile(route: Route, profile: SpeedProfile, departed: Instant) -> Vehicle {
        profile.validate();
        Vehicle {
            route,
            profile,
            departed,
        }
    }

    /// The route being driven.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The speed profile.
    pub fn profile(&self) -> &SpeedProfile {
        &self.profile
    }

    /// When the drive started.
    pub fn departed(&self) -> Instant {
        self.departed
    }

    /// Long-run average speed, m/s (equals the constant speed for
    /// [`SpeedProfile::Constant`]).
    pub fn speed(&self) -> f64 {
        self.profile.mean_speed()
    }

    /// Distance driven by `now`, m.
    pub fn distance_at(&self, now: Instant) -> f64 {
        self.profile
            .distance_after(now.saturating_since(self.departed).as_secs_f64())
    }

    /// The instant the vehicle reaches `d` metres along its drive.
    pub fn time_at_distance(&self, d: f64) -> Instant {
        self.departed + sim_engine::time::Duration::from_secs_f64(self.profile.time_to_distance(d))
    }

    /// Position at `now`.
    pub fn position_at(&self, now: Instant) -> Point {
        self.route.position_at_distance(self.distance_at(now))
    }

    /// The same drive shifted `by` later: identical route and profile,
    /// departure delayed. `delayed(ZERO)` is the vehicle itself — this is
    /// the per-client route offset a client fleet staggers a convoy with.
    pub fn delayed(&self, by: sim_engine::time::Duration) -> Vehicle {
        Vehicle {
            route: self.route.clone(),
            profile: self.profile.clone(),
            departed: self.departed + by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_route_positions() {
        let r = Route::straight(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        assert_eq!(r.length(), 100.0);
        assert_eq!(r.position_at_distance(0.0), Point::new(0.0, 0.0));
        assert_eq!(r.position_at_distance(50.0), Point::new(50.0, 0.0));
        // Open route clamps at the end.
        assert_eq!(r.position_at_distance(150.0), Point::new(100.0, 0.0));
    }

    #[test]
    fn rectangle_loop_wraps() {
        let r = Route::rectangle(100.0, 50.0);
        assert_eq!(r.length(), 300.0);
        assert!(r.is_loop());
        assert_eq!(r.position_at_distance(0.0), Point::new(0.0, 0.0));
        assert_eq!(r.position_at_distance(100.0), Point::new(100.0, 0.0));
        assert_eq!(r.position_at_distance(150.0), Point::new(100.0, 50.0));
        // One full lap later, back at a known point.
        assert_eq!(
            r.position_at_distance(300.0 + 150.0),
            Point::new(100.0, 50.0)
        );
        // Closing segment: from (0,50) back to (0,0).
        assert_eq!(r.position_at_distance(275.0), Point::new(0.0, 25.0));
    }

    #[test]
    fn multi_segment_interpolation() {
        let r = Route::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
            ],
            false,
        );
        assert_eq!(r.length(), 20.0);
        assert_eq!(r.position_at_distance(15.0), Point::new(10.0, 5.0));
        assert_eq!(r.segment_count(), 2);
    }

    #[test]
    fn vehicle_kinematics() {
        let r = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        let v = Vehicle::new(r, 10.0, Instant::from_secs(5));
        assert_eq!(v.position_at(Instant::from_secs(5)), Point::new(0.0, 0.0));
        assert_eq!(
            v.position_at(Instant::from_secs(15)),
            Point::new(100.0, 0.0)
        );
        // Before departure: still at the start.
        assert_eq!(v.position_at(Instant::ZERO), Point::new(0.0, 0.0));
    }

    #[test]
    fn vehicle_laps_a_loop() {
        let r = Route::rectangle(100.0, 50.0); // 300 m lap
        let v = Vehicle::new(r, 30.0, Instant::ZERO); // 10 s lap
        let p1 = v.position_at(Instant::from_secs(3));
        let p2 = v.position_at(Instant::from_secs(13));
        assert!((p1.x - p2.x).abs() < 1e-9 && (p1.y - p2.y).abs() < 1e-9);
    }

    #[test]
    fn stop_and_go_distance_and_inverse_agree() {
        let p = SpeedProfile::StopAndGo {
            cruise: 10.0,
            stop_every: 200.0,
            stop_for: 15.0,
        };
        // One cycle: 20 s driving + 15 s stopped = 35 s per 200 m.
        assert!((p.distance_after(35.0) - 200.0).abs() < 1e-9);
        assert!((p.distance_after(20.0) - 200.0).abs() < 1e-9); // parked
        assert!((p.distance_after(30.0) - 200.0).abs() < 1e-9); // still parked
        assert!((p.distance_after(45.0) - 300.0).abs() < 1e-9);
        // Inverse round-trips at non-stop points.
        for d in [0.0, 50.0, 199.0, 201.0, 777.0] {
            let t = p.time_to_distance(d);
            assert!(
                (p.distance_after(t) - d).abs() < 1e-6,
                "round-trip failed at {d} m"
            );
        }
        // Mean speed: 200 m / 35 s ≈ 5.71 m/s.
        assert!((p.mean_speed() - 200.0 / 35.0).abs() < 1e-9);
    }

    #[test]
    fn stop_and_go_vehicle_dwells() {
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(5_000.0, 0.0));
        let v = Vehicle::with_profile(
            route,
            SpeedProfile::StopAndGo {
                cruise: 10.0,
                stop_every: 100.0,
                stop_for: 10.0,
            },
            Instant::ZERO,
        );
        // After 10 s: reached the 100 m stop line; stays there until 20 s.
        assert_eq!(
            v.position_at(Instant::from_secs(12)),
            Point::new(100.0, 0.0)
        );
        assert_eq!(
            v.position_at(Instant::from_secs(19)),
            Point::new(100.0, 0.0)
        );
        assert_eq!(
            v.position_at(Instant::from_secs(25)),
            Point::new(150.0, 0.0)
        );
        // Mean speed halves (10 s driving + 10 s stopped per 100 m).
        assert!((v.speed() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_vertex_panics() {
        Route::new(vec![Point::ORIGIN], false);
    }

    #[test]
    #[should_panic(expected = "bad speed")]
    fn zero_speed_panics() {
        Vehicle::new(Route::rectangle(1.0, 1.0), 0.0, Instant::ZERO);
    }

    #[test]
    fn delayed_vehicle_trails_by_exactly_the_offset() {
        let r = Route::straight(Point::new(0.0, 0.0), Point::new(1_000.0, 0.0));
        let lead = Vehicle::new(r, 10.0, Instant::ZERO);
        let tail = lead.delayed(sim_engine::time::Duration::from_secs(5));
        // Zero offset is the identity.
        let same = lead.delayed(sim_engine::time::Duration::ZERO);
        let t = Instant::ZERO + sim_engine::time::Duration::from_secs(20);
        assert_eq!(same.position_at(t), lead.position_at(t));
        // Before its departure the trailer sits at the route start.
        let early = Instant::ZERO + sim_engine::time::Duration::from_secs(3);
        assert_eq!(tail.position_at(early), Point::new(0.0, 0.0));
        // Afterwards it is exactly 5 s behind the leader.
        assert_eq!(
            tail.position_at(t),
            lead.position_at(t - sim_engine::time::Duration::from_secs(5))
        );
    }
}
