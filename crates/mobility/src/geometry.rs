//! Plane geometry for vehicle positions and AP sites (metres).

use core::fmt;
use core::ops::{Add, Mul, Sub};

/// A point (or vector) in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate, m.
    pub x: f64,
    /// North coordinate, m.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the sqrt in comparisons).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length.
    pub fn norm(self) -> f64 {
        self.distance(Point::ORIGIN)
    }

    /// Dot product.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point {
            x: self.x * rhs,
            y: self.y * rhs,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// Intersection of the segment `a→b` (parameterized by `t ∈ [0, 1]`) with a
/// circle of radius `r` around `c`: the sub-interval of `t` inside the
/// circle, if any.
pub fn segment_circle_overlap(a: Point, b: Point, c: Point, r: f64) -> Option<(f64, f64)> {
    let d = b - a; // direction
    let f = a - c; // from centre to start
    let qa = d.dot(d);
    if qa == 0.0 {
        // Degenerate segment: a point.
        return (a.distance(c) <= r).then_some((0.0, 1.0));
    }
    let qb = 2.0 * f.dot(d);
    let qc = f.dot(f) - r * r;
    let disc = qb * qb - 4.0 * qa * qc;
    if disc < 0.0 {
        return None;
    }
    let sqrt_disc = disc.sqrt();
    let t0 = (-qb - sqrt_disc) / (2.0 * qa);
    let t1 = (-qb + sqrt_disc) / (2.0 * qa);
    let lo = t0.max(0.0);
    let hi = t1.min(1.0);
    (lo < hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn segment_through_circle() {
        // Horizontal segment passing straight through a circle at origin.
        let a = Point::new(-10.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let (lo, hi) = segment_circle_overlap(a, b, Point::ORIGIN, 5.0).unwrap();
        assert!((lo - 0.25).abs() < 1e-9);
        assert!((hi - 0.75).abs() < 1e-9);
    }

    #[test]
    fn segment_missing_circle() {
        let a = Point::new(-10.0, 8.0);
        let b = Point::new(10.0, 8.0);
        assert!(segment_circle_overlap(a, b, Point::ORIGIN, 5.0).is_none());
    }

    #[test]
    fn segment_starting_inside() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(20.0, 0.0);
        let (lo, hi) = segment_circle_overlap(a, b, Point::ORIGIN, 5.0).unwrap();
        assert_eq!(lo, 0.0);
        assert!((hi - 0.25).abs() < 1e-9);
    }

    #[test]
    fn tangent_grazing_is_empty() {
        // Line tangent at distance exactly r: zero-width interval → None.
        let a = Point::new(-10.0, 5.0);
        let b = Point::new(10.0, 5.0);
        assert!(segment_circle_overlap(a, b, Point::ORIGIN, 5.0).is_none());
    }

    #[test]
    fn degenerate_point_segment() {
        let p = Point::new(1.0, 1.0);
        assert!(segment_circle_overlap(p, p, Point::ORIGIN, 5.0).is_some());
        assert!(segment_circle_overlap(p, p, Point::ORIGIN, 0.5).is_none());
    }
}
