//! Encounter windows: when is the vehicle within Wi-Fi range of an AP?
//!
//! The paper's town gives a median AP encounter of ≈ 8 s and a mean of
//! ≈ 22 s at vehicular speed (§2.3); every join and throughput result
//! plays out inside these windows. This module computes the windows
//! analytically (segment–circle intersection per route segment, merged and
//! unrolled across laps) so experiments don't have to sample positions.

use sim_engine::time::{Duration, Instant};

use crate::geometry::{segment_circle_overlap, Point};
use crate::route::{Route, Vehicle};

/// One contiguous in-range window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encounter {
    /// The vehicle enters range.
    pub enter: Instant,
    /// The vehicle leaves range.
    pub exit: Instant,
}

impl Encounter {
    /// Window length.
    pub fn duration(&self) -> Duration {
        self.exit.since(self.enter)
    }

    /// True if `t` falls inside the window.
    pub fn contains(&self, t: Instant) -> bool {
        t >= self.enter && t < self.exit
    }
}

/// The in-range *distance* intervals `[lo, hi)` (metres along the route,
/// within one traversal) for a circle of `range` around `centre`.
pub fn range_intervals(route: &Route, centre: Point, range: f64) -> Vec<(f64, f64)> {
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for i in 0..route.segment_count() {
        let (a, b, start, len) = route.segment(i);
        if len == 0.0 {
            continue;
        }
        if let Some((t0, t1)) = segment_circle_overlap(a, b, centre, range) {
            intervals.push((start + t0 * len, start + t1 * len));
        }
    }
    intervals.sort_by(|x, y| x.0.total_cmp(&y.0));
    // Merge touching intervals (shared vertices produce abutting pieces).
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (lo, hi) in intervals {
        match merged.last_mut() {
            Some(last) if lo <= last.1 + 1e-9 => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    // On a loop, a window that spans the wrap point appears as one interval
    // ending at L and one starting at 0: merge them by extending the last
    // past L (callers unroll per lap).
    if route.is_loop() && merged.len() >= 2 {
        let total = route.length();
        let first = merged[0];
        let last = merged[merged.len() - 1];
        if first.0 <= 1e-9 && (last.1 - total).abs() <= 1e-9 {
            merged.pop();
            merged.remove(0);
            merged.push((last.0, total + first.1));
        }
    }
    merged
}

/// All encounters between `vehicle` and the circle of `range` around
/// `centre`, within `[from, until)`.
pub fn encounters(
    vehicle: &Vehicle,
    centre: Point,
    range: f64,
    from: Instant,
    until: Instant,
) -> Vec<Encounter> {
    assert!(until > from, "encounters: empty horizon");
    let route = vehicle.route();
    let intervals = range_intervals(route, centre, range);
    if intervals.is_empty() {
        return Vec::new();
    }
    let total = route.length();
    let mut out = Vec::new();
    if route.is_loop() {
        let horizon_m = vehicle.distance_at(until);
        let mut lap = 0u64;
        'outer: loop {
            let base = lap as f64 * total;
            if base > horizon_m {
                break;
            }
            for &(lo, hi) in &intervals {
                let (d0, d1) = (base + lo, base + hi);
                if d0 > horizon_m {
                    break 'outer;
                }
                push_window(&mut out, vehicle, d0, d1, from, until);
            }
            lap += 1;
        }
    } else {
        for &(lo, hi) in &intervals {
            push_window(&mut out, vehicle, lo, hi, from, until);
        }
    }
    out
}

fn push_window(
    out: &mut Vec<Encounter>,
    vehicle: &Vehicle,
    d0: f64,
    d1: f64,
    from: Instant,
    until: Instant,
) {
    // Convert road distance to time through the speed profile's inverse —
    // a stop-and-go dwell inside the window stretches the encounter.
    let enter = vehicle.time_at_distance(d0).max(from);
    let exit = vehicle.time_at_distance(d1).min(until);
    if exit > enter {
        out.push(Encounter { enter, exit });
    }
}

/// Aggregate encounter statistics for a set of APs over a horizon.
#[derive(Debug, Clone, Default)]
pub struct EncounterStats {
    durations: Vec<Duration>,
}

impl EncounterStats {
    /// Collect windows for every `(centre, range)` site.
    pub fn collect(
        vehicle: &Vehicle,
        sites: impl IntoIterator<Item = Point>,
        range: f64,
        horizon: Instant,
    ) -> EncounterStats {
        let mut durations = Vec::new();
        for centre in sites {
            for e in encounters(vehicle, centre, range, Instant::ZERO, horizon) {
                durations.push(e.duration());
            }
        }
        EncounterStats { durations }
    }

    /// Number of encounters.
    pub fn count(&self) -> usize {
        self.durations.len()
    }

    /// Median window length.
    pub fn median(&self) -> Duration {
        if self.durations.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.durations.clone();
        v.sort();
        v[v.len() / 2]
    }

    /// Mean window length.
    pub fn mean(&self) -> Duration {
        if self.durations.is_empty() {
            return Duration::ZERO;
        }
        let sum: f64 = self.durations.iter().map(|d| d.as_secs_f64()).sum();
        Duration::from_secs_f64(sum / self.durations.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_drivethrough_window_length() {
        // AP on the road: the chord is the full diameter.
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let es = encounters(
            &vehicle,
            Point::new(500.0, 0.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(200),
        );
        assert_eq!(es.len(), 1);
        let e = es[0];
        // In range from 400 m to 600 m at 10 m/s: t = 40 s..60 s.
        assert_eq!(e.enter, Instant::from_secs(40));
        assert_eq!(e.exit, Instant::from_secs(60));
        assert_eq!(e.duration(), Duration::from_secs(20));
    }

    #[test]
    fn offset_ap_has_shorter_chord() {
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let on_road = encounters(
            &vehicle,
            Point::new(500.0, 0.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(200),
        );
        let offset = encounters(
            &vehicle,
            Point::new(500.0, 80.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(200),
        );
        assert_eq!(offset.len(), 1);
        assert!(offset[0].duration() < on_road[0].duration());
        // Chord at 80 m offset with r = 100: 2·√(100²−80²) = 120 m → 12 s.
        assert!((offset[0].duration().as_secs_f64() - 12.0).abs() < 0.01);
    }

    #[test]
    fn out_of_range_ap_never_encountered() {
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let es = encounters(
            &vehicle,
            Point::new(500.0, 200.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(200),
        );
        assert!(es.is_empty());
    }

    #[test]
    fn loop_produces_one_encounter_per_lap() {
        let route = Route::rectangle(400.0, 200.0); // 1200 m lap
        let vehicle = Vehicle::new(route, 12.0, Instant::ZERO); // 100 s lap
        let es = encounters(
            &vehicle,
            Point::new(200.0, 0.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(350),
        );
        // Laps at t≈[8.3,25], [108.3,125], [208.3,225], [308.3,325].
        assert_eq!(es.len(), 4);
        let gap = es[1].enter.since(es[0].enter);
        assert!((gap.as_secs_f64() - 100.0).abs() < 0.01, "lap period {gap}");
    }

    #[test]
    fn wrap_spanning_window_is_single_encounter() {
        // AP near the loop's start/end corner: the window spans the wrap.
        let route = Route::rectangle(400.0, 200.0);
        let vehicle = Vehicle::new(route, 12.0, Instant::ZERO);
        let es = encounters(
            &vehicle,
            Point::new(0.0, 0.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(300),
        );
        // Must not double-count the corner as two encounters per lap.
        // Expect ~3 encounters in 3 laps (plus the initial partial one).
        assert!(es.len() <= 4, "wrap corner split into {} windows", es.len());
        for w in es.windows(2) {
            assert!(w[1].enter > w[0].exit, "windows must be disjoint");
        }
    }

    #[test]
    fn horizon_clips_windows() {
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let es = encounters(
            &vehicle,
            Point::new(500.0, 0.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(50),
        );
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].exit, Instant::from_secs(50));
    }

    #[test]
    fn faster_vehicle_shorter_encounters() {
        let mk = |speed| {
            let route = Route::straight(Point::new(0.0, 0.0), Point::new(2000.0, 0.0));
            Vehicle::new(route, speed, Instant::ZERO)
        };
        let slow = encounters(
            &mk(5.0),
            Point::new(1000.0, 30.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(1000),
        );
        let fast = encounters(
            &mk(20.0),
            Point::new(1000.0, 30.0),
            100.0,
            Instant::ZERO,
            Instant::from_secs(1000),
        );
        assert_eq!(slow[0].duration(), fast[0].duration() * 4);
    }

    #[test]
    fn stop_inside_the_window_stretches_the_encounter() {
        use crate::route::SpeedProfile;
        let route = Route::straight(Point::new(0.0, 0.0), Point::new(1000.0, 0.0));
        // Stop line at 500 m — dead centre of the AP's footprint — for 30 s.
        let stopper = Vehicle::with_profile(
            route.clone(),
            SpeedProfile::StopAndGo {
                cruise: 10.0,
                stop_every: 500.0,
                stop_for: 30.0,
            },
            Instant::ZERO,
        );
        let cruiser = Vehicle::new(route, 10.0, Instant::ZERO);
        let horizon = Instant::from_secs(400);
        let stopped = encounters(
            &stopper,
            Point::new(500.0, 0.0),
            100.0,
            Instant::ZERO,
            horizon,
        );
        let cruised = encounters(
            &cruiser,
            Point::new(500.0, 0.0),
            100.0,
            Instant::ZERO,
            horizon,
        );
        assert_eq!(stopped.len(), 1);
        assert_eq!(cruised.len(), 1);
        // The cruiser gets the 20 s chord; the stopper adds its 30 s dwell.
        assert_eq!(cruised[0].duration(), Duration::from_secs(20));
        assert_eq!(stopped[0].duration(), Duration::from_secs(50));
    }

    #[test]
    fn stats_match_paper_scale_at_town_parameters() {
        // A 10 m/s vehicle on a loop with laterally-offset APs should see
        // medians on the order of the paper's 8–22 s encounters.
        let route = Route::rectangle(2000.0, 1000.0); // 6 km lap
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let mut rng = sim_engine::rng::Rng::new(3);
        let sites: Vec<Point> = (0..40)
            .map(|_| {
                let along = rng.range_f64(0.0, 6000.0);
                let p = vehicle.route().position_at_distance(along);
                Point::new(
                    p.x + rng.range_f64(-60.0, 60.0),
                    p.y + rng.range_f64(-60.0, 60.0),
                )
            })
            .collect();
        let stats = EncounterStats::collect(&vehicle, sites, 100.0, Instant::from_secs(600));
        assert!(stats.count() > 10);
        let med = stats.median().as_secs_f64();
        assert!((5.0..25.0).contains(&med), "median encounter {med} s");
    }
}
