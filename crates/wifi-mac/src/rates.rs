//! 802.11b multi-rate support and Auto Rate Fallback (ARF).
//!
//! The paper's analysis assumes the 11 Mb/s DSSS rate throughout
//! (`Bw = 11 Mbps`), which the simulator's default PHY mirrors. Real
//! MadWiFi, however, ran a rate-adaptation algorithm, and a vehicular
//! client spends much of each encounter at ranges where 11 Mb/s barely
//! decodes while 1–2 Mb/s still would. This module provides the machinery
//! to study that: the four DSSS/CCK rates with their differing SNR
//! requirements and airtimes, plus the classic ARF controller (step down
//! after consecutive failures, probe upward after a success run).
//!
//! Kept separate from the default experiment pipeline so the paper's
//! fixed-rate assumption stays intact; `examples` and future experiments
//! can opt in.

use sim_engine::time::Duration;

use crate::phy::PhyConfig;

/// The 802.11b DSSS/CCK rate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rate {
    /// 1 Mb/s DBPSK — the most robust.
    R1,
    /// 2 Mb/s DQPSK.
    R2,
    /// 5.5 Mb/s CCK.
    R5_5,
    /// 11 Mb/s CCK — the paper's assumed rate.
    R11,
}

impl Rate {
    /// All rates, slowest first (the ARF ladder).
    pub const LADDER: [Rate; 4] = [Rate::R1, Rate::R2, Rate::R5_5, Rate::R11];

    /// Payload bit rate, bits/s.
    pub const fn bps(self) -> u64 {
        match self {
            Rate::R1 => 1_000_000,
            Rate::R2 => 2_000_000,
            Rate::R5_5 => 5_500_000,
            Rate::R11 => 11_000_000,
        }
    }

    /// How many dB *less* SNR this rate needs than 11 Mb/s for the same
    /// error probability (DSSS robustness of the slower modulations).
    pub const fn snr_relief_db(self) -> f64 {
        match self {
            Rate::R1 => 8.0,
            Rate::R2 => 6.0,
            Rate::R5_5 => 3.0,
            Rate::R11 => 0.0,
        }
    }

    /// The next faster rate, if any.
    pub fn up(self) -> Option<Rate> {
        match self {
            Rate::R1 => Some(Rate::R2),
            Rate::R2 => Some(Rate::R5_5),
            Rate::R5_5 => Some(Rate::R11),
            Rate::R11 => None,
        }
    }

    /// The next slower rate, if any.
    pub fn down(self) -> Option<Rate> {
        match self {
            Rate::R1 => None,
            Rate::R2 => Some(Rate::R1),
            Rate::R5_5 => Some(Rate::R2),
            Rate::R11 => Some(Rate::R5_5),
        }
    }
}

/// Rate-aware PHY queries, layered over [`PhyConfig`].
pub trait RatedPhy {
    /// Per-attempt frame error probability at `rate`.
    fn frame_error_prob_at(&self, distance_m: f64, len: usize, rate: Rate) -> f64;
    /// Single-attempt airtime at `rate` (preamble is always 1 Mb/s DSSS,
    /// so only the payload time scales).
    fn airtime_at(&self, len: usize, rate: Rate) -> Duration;
    /// Expected goodput of `len`-byte frames at `rate` and `distance_m`,
    /// bits/s, accounting for error probability and airtime.
    fn goodput_at(&self, distance_m: f64, len: usize, rate: Rate) -> f64 {
        let p = 1.0 - self.frame_error_prob_at(distance_m, len, rate);
        let t = self.airtime_at(len, rate).as_secs_f64();
        p * (len as f64 * 8.0) / t
    }
    /// The rate with the highest expected goodput at `distance_m` — the
    /// target a good adaptation algorithm converges to.
    fn best_rate(&self, distance_m: f64, len: usize) -> Rate {
        *Rate::LADDER
            .iter()
            .max_by(|a, b| {
                self.goodput_at(distance_m, len, **a)
                    .total_cmp(&self.goodput_at(distance_m, len, **b))
            })
            .unwrap_or(&Rate::LADDER[0])
    }
}

impl RatedPhy for PhyConfig {
    fn frame_error_prob_at(&self, distance_m: f64, len: usize, rate: Rate) -> f64 {
        // Shift the logistic's midpoint down by the rate's SNR relief.
        let q = self.link_at(distance_m);
        let mid = self.per_midpoint_snr_db - rate.snr_relief_db();
        let per = 1.0 / (1.0 + ((q.snr_db - mid) / self.per_slope_db).exp());
        let exponent = len as f64 / self.reference_frame_len as f64;
        1.0 - (1.0 - per).powf(exponent)
    }

    fn airtime_at(&self, len: usize, rate: Rate) -> Duration {
        let payload_ns = (len as u64 * 8).saturating_mul(1_000_000_000) / rate.bps();
        self.difs + self.mean_backoff + self.preamble + Duration::from_nanos(payload_ns)
    }
}

/// Auto Rate Fallback: the adaptation algorithm of the era's drivers.
///
/// Step down after `down_after` consecutive failures; after `up_after`
/// consecutive successes, probe one rate up — and fall straight back if
/// the probe's first transmission fails.
#[derive(Debug, Clone)]
pub struct Arf {
    rate: Rate,
    successes: u32,
    failures: u32,
    /// The last transition was an upward probe; one failure reverts it.
    probing: bool,
    up_after: u32,
    down_after: u32,
}

impl Arf {
    /// Standard ARF: probe up after 10 successes, drop after 2 failures.
    pub fn new(initial: Rate) -> Arf {
        Arf {
            rate: initial,
            successes: 0,
            failures: 0,
            probing: false,
            up_after: 10,
            down_after: 2,
        }
    }

    /// The current transmission rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Record a delivered frame.
    pub fn on_success(&mut self) {
        self.failures = 0;
        self.probing = false;
        self.successes += 1;
        if self.successes >= self.up_after {
            if let Some(up) = self.rate.up() {
                self.rate = up;
                self.probing = true;
            }
            self.successes = 0;
        }
    }

    /// Record a failed frame (all MAC retries exhausted).
    pub fn on_failure(&mut self) {
        self.successes = 0;
        if self.probing {
            // The upward probe failed immediately: revert. A probe is only
            // armed after a successful `up()`, so a lower rate exists; stay
            // put if that invariant ever breaks rather than panicking.
            self.rate = self.rate.down().unwrap_or(self.rate);
            self.probing = false;
            self.failures = 0;
            return;
        }
        self.failures += 1;
        if self.failures >= self.down_after {
            if let Some(down) = self.rate.down() {
                self.rate = down;
            }
            self.failures = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::rng::Rng;

    #[test]
    fn ladder_is_ordered() {
        for pair in Rate::LADDER.windows(2) {
            assert!(pair[0].bps() < pair[1].bps());
            assert!(pair[0].snr_relief_db() > pair[1].snr_relief_db());
        }
        assert_eq!(Rate::R11.up(), None);
        assert_eq!(Rate::R1.down(), None);
        assert_eq!(Rate::R2.up(), Some(Rate::R5_5));
    }

    #[test]
    fn slower_rates_survive_longer_ranges() {
        let phy = PhyConfig::default();
        for d in [60.0, 100.0, 140.0] {
            let e11 = phy.frame_error_prob_at(d, 1000, Rate::R11);
            let e1 = phy.frame_error_prob_at(d, 1000, Rate::R1);
            assert!(e1 < e11, "at {d} m: 1 Mb/s {e1} must beat 11 Mb/s {e11}");
        }
        // The 11 Mb/s column matches the base PHY (zero relief).
        let base = phy.frame_error_prob(90.0, 1000);
        let at11 = phy.frame_error_prob_at(90.0, 1000, Rate::R11);
        assert!((base - at11).abs() < 1e-12);
    }

    #[test]
    fn airtime_orders_inversely_with_rate() {
        let phy = PhyConfig::default();
        let mut last = Duration::MAX;
        for r in Rate::LADDER {
            let t = phy.airtime_at(1500, r);
            assert!(t < last, "{r:?} airtime must shrink as rate grows");
            last = t;
        }
    }

    #[test]
    fn best_rate_falls_with_distance() {
        let phy = PhyConfig::default();
        let near = phy.best_rate(10.0, 1500);
        let far = phy.best_rate(130.0, 1500);
        assert_eq!(near, Rate::R11, "close range should pick 11 Mb/s");
        assert!(far < near, "far range must pick a slower rate, got {far:?}");
    }

    #[test]
    fn arf_steps_down_after_two_failures() {
        let mut arf = Arf::new(Rate::R11);
        arf.on_failure();
        assert_eq!(arf.rate(), Rate::R11);
        arf.on_failure();
        assert_eq!(arf.rate(), Rate::R5_5);
    }

    #[test]
    fn arf_probes_up_after_ten_successes_and_reverts_on_probe_failure() {
        let mut arf = Arf::new(Rate::R2);
        for _ in 0..10 {
            arf.on_success();
        }
        assert_eq!(arf.rate(), Rate::R5_5, "should probe upward");
        arf.on_failure();
        assert_eq!(arf.rate(), Rate::R2, "failed probe reverts immediately");
        // A successful probe sticks.
        for _ in 0..10 {
            arf.on_success();
        }
        assert_eq!(arf.rate(), Rate::R5_5);
        arf.on_success();
        assert_eq!(arf.rate(), Rate::R5_5);
    }

    #[test]
    fn arf_converges_near_the_goodput_optimal_rate() {
        // Drive ARF with stochastic successes drawn from the PHY at a
        // mid-range distance; its steady-state rate should sit at (or one
        // step around) the goodput-optimal rate.
        let phy = PhyConfig::default();
        let d = 115.0;
        let best = phy.best_rate(d, 1500);
        let mut arf = Arf::new(Rate::R11);
        let mut rng = Rng::new(99);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            let e = phy.frame_error_prob_at(d, 1500, arf.rate());
            if rng.chance(e) {
                arf.on_failure();
            } else {
                arf.on_success();
            }
            let idx = Rate::LADDER
                .iter()
                .position(|r| *r == arf.rate())
                .expect("in ladder");
            counts[idx] += 1;
        }
        let modal = Rate::LADDER[counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("non-empty")
            .0];
        let best_idx = Rate::LADDER.iter().position(|r| *r == best).unwrap() as i32;
        let modal_idx = Rate::LADDER.iter().position(|r| *r == modal).unwrap() as i32;
        assert!(
            (best_idx - modal_idx).abs() <= 1,
            "ARF modal rate {modal:?} should be within one step of optimal {best:?} ({counts:?})"
        );
    }
}
