//! 802.11 frame formats: the subset a vehicular multi-AP client exercises.
//!
//! Frames round-trip through real byte layouts (an 802.11 header subset with
//! information elements) so the substrate is a protocol implementation
//! rather than a label-passing toy. The supported set covers everything the
//! paper's join and data paths need:
//!
//! * management: beacon, probe request/response, open-system authentication,
//!   association request/response, disassociation, deauthentication;
//! * control: PS-Poll (power-save delivery poll) and ACK;
//! * data: data frames and the null-data frame whose *power management* bit
//!   is how Spider (and Virtual Wi-Fi/FatVAP/Juggler before it) asks an AP
//!   to buffer traffic while the radio serves another channel.
//!
//! Layout notes: frames are little-endian as on the air. Control frames use
//! their genuine short headers (PS-Poll carries the association id in the
//! duration field; ACK has only a receiver address). FCS is not carried —
//! frame loss is the PHY model's job, not a checksum's.

use core::fmt;
use sim_engine::wire::{Bytes, Reader, WireError, Writer};

use crate::addr::MacAddr;
use crate::channel::Channel;

/// Frame type field values (2 bits).
mod ftype {
    pub const MGMT: u8 = 0;
    pub const CTRL: u8 = 1;
    pub const DATA: u8 = 2;
}

/// Frame subtype field values (4 bits) for the frames we implement.
mod subtype {
    pub const ASSOC_REQ: u8 = 0;
    pub const ASSOC_RESP: u8 = 1;
    pub const PROBE_REQ: u8 = 4;
    pub const PROBE_RESP: u8 = 5;
    pub const BEACON: u8 = 8;
    pub const DISASSOC: u8 = 10;
    pub const AUTH: u8 = 11;
    pub const DEAUTH: u8 = 12;
    pub const PS_POLL: u8 = 10; // control
    pub const ACK: u8 = 13; // control
    pub const DATA: u8 = 0;
    pub const NULL: u8 = 4;
}

/// Information-element ids.
mod ie {
    pub const SSID: u8 = 0;
    pub const DS_PARAMS: u8 = 3;
}

/// Capability-field bits advertised in beacons and probe responses.
pub mod capability {
    /// Infrastructure BSS.
    pub const ESS: u16 = 1 << 0;
    /// WEP/WPA required. The paper uses *open* APs only; Spider filters on
    /// this bit when selecting candidates.
    pub const PRIVACY: u16 = 1 << 4;
}

/// 802.11 open-system authentication algorithm number.
pub const AUTH_ALGORITHM_OPEN: u16 = 0;

/// Status code: success.
pub const STATUS_SUCCESS: u16 = 0;
/// Status code: unspecified failure.
pub const STATUS_FAILURE: u16 = 1;
/// Status code: AP association table is full.
pub const STATUS_AP_FULL: u16 = 17;

/// Reason code: leaving BSS (disassociation/deauth).
pub const REASON_LEAVING: u16 = 3;
/// Reason code: inactivity timeout.
pub const REASON_INACTIVITY: u16 = 4;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer ended before the layout said it should.
    Truncated,
    /// Frame type/subtype combination we do not implement.
    Unsupported {
        /// 2-bit type field.
        ftype: u8,
        /// 4-bit subtype field.
        subtype: u8,
    },
    /// A malformed information element.
    BadElement,
    /// SSID longer than the 32-byte limit.
    SsidTooLong,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Unsupported { ftype, subtype } => {
                write!(f, "unsupported frame type {ftype}/subtype {subtype}")
            }
            FrameError::BadElement => write!(f, "malformed information element"),
            FrameError::SsidTooLong => write!(f, "SSID exceeds 32 bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(_: WireError) -> FrameError {
        FrameError::Truncated
    }
}

/// An SSID: up to 32 octets, conventionally UTF-8.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ssid(Vec<u8>);

impl Ssid {
    /// Construct from text.
    ///
    /// # Panics
    /// Panics if longer than 32 bytes (caller bug, not wire input).
    pub fn new(s: &str) -> Ssid {
        assert!(s.len() <= 32, "SSID too long: {s:?}");
        Ssid(s.as_bytes().to_vec())
    }

    /// Construct from raw octets (wire input).
    pub fn from_bytes(b: &[u8]) -> Result<Ssid, FrameError> {
        if b.len() > 32 {
            return Err(FrameError::SsidTooLong);
        }
        Ok(Ssid(b.to_vec()))
    }

    /// The wildcard (zero-length) SSID used in broadcast probe requests.
    pub fn wildcard() -> Ssid {
        Ssid(Vec::new())
    }

    /// True for the wildcard SSID.
    pub fn is_wildcard(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw octets.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            write!(f, "<wildcard>")
        } else {
            write!(f, "{}", String::from_utf8_lossy(&self.0))
        }
    }
}

/// Body of a beacon or probe response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconBody {
    /// TSF timestamp in microseconds.
    pub timestamp_us: u64,
    /// Beacon interval in time units (1 TU = 1024 µs).
    pub interval_tu: u16,
    /// Capability field; see [`capability`].
    pub capability: u16,
    /// Network name.
    pub ssid: Ssid,
    /// The channel the AP operates on (DS parameter set).
    pub channel: Channel,
}

/// Body of an authentication frame (open system only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthBody {
    /// Authentication algorithm; 0 = open system.
    pub algorithm: u16,
    /// Transaction sequence: 1 = request, 2 = response.
    pub transaction: u16,
    /// Status code (responses; 0 in requests).
    pub status: u16,
}

/// Body of an association request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocReqBody {
    /// Capability field the station claims.
    pub capability: u16,
    /// Listen interval in beacon intervals (relevant to PSM buffering).
    pub listen_interval: u16,
    /// The SSID the station associates to.
    pub ssid: Ssid,
}

/// Body of an association response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocRespBody {
    /// Capability field.
    pub capability: u16,
    /// Status code; [`STATUS_SUCCESS`] grants the association.
    pub status: u16,
    /// Association id (AID) assigned by the AP; used in PS-Poll.
    pub aid: u16,
}

/// The typed payload of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// Periodic AP advertisement.
    Beacon(BeaconBody),
    /// Active-scan solicitation (body carries the sought SSID).
    ProbeReq {
        /// Sought SSID; wildcard asks every AP in range to respond.
        ssid: Ssid,
    },
    /// Unicast reply to a probe request; same layout as a beacon.
    ProbeResp(BeaconBody),
    /// Open-system authentication request/response.
    Auth(AuthBody),
    /// Association request.
    AssocReq(AssocReqBody),
    /// Association response.
    AssocResp(AssocRespBody),
    /// Disassociation notice with a reason code.
    Disassoc {
        /// Reason code; see [`REASON_LEAVING`].
        reason: u16,
    },
    /// Deauthentication notice with a reason code.
    Deauth {
        /// Reason code.
        reason: u16,
    },
    /// A data frame with an opaque payload (an IP packet in this workspace).
    Data(Bytes),
    /// Null-data frame: no payload, exists to carry the power-management
    /// bit. Spider sends one with `power_mgmt = true` to every associated AP
    /// on a channel right before switching away.
    Null,
    /// Power-save poll: asks the AP to release one buffered frame.
    PsPoll {
        /// The association id assigned at association time.
        aid: u16,
    },
    /// Link-layer acknowledgement.
    Ack,
}

impl FrameBody {
    fn type_subtype(&self) -> (u8, u8) {
        match self {
            FrameBody::AssocReq(_) => (ftype::MGMT, subtype::ASSOC_REQ),
            FrameBody::AssocResp(_) => (ftype::MGMT, subtype::ASSOC_RESP),
            FrameBody::ProbeReq { .. } => (ftype::MGMT, subtype::PROBE_REQ),
            FrameBody::ProbeResp(_) => (ftype::MGMT, subtype::PROBE_RESP),
            FrameBody::Beacon(_) => (ftype::MGMT, subtype::BEACON),
            FrameBody::Disassoc { .. } => (ftype::MGMT, subtype::DISASSOC),
            FrameBody::Auth(_) => (ftype::MGMT, subtype::AUTH),
            FrameBody::Deauth { .. } => (ftype::MGMT, subtype::DEAUTH),
            FrameBody::PsPoll { .. } => (ftype::CTRL, subtype::PS_POLL),
            FrameBody::Ack => (ftype::CTRL, subtype::ACK),
            FrameBody::Data(_) => (ftype::DATA, subtype::DATA),
            FrameBody::Null => (ftype::DATA, subtype::NULL),
        }
    }

    /// Short human-readable tag for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            FrameBody::Beacon(_) => "beacon",
            FrameBody::ProbeReq { .. } => "probe-req",
            FrameBody::ProbeResp(_) => "probe-resp",
            FrameBody::Auth(a) if a.transaction == 1 => "auth-req",
            FrameBody::Auth(_) => "auth-resp",
            FrameBody::AssocReq(_) => "assoc-req",
            FrameBody::AssocResp(_) => "assoc-resp",
            FrameBody::Disassoc { .. } => "disassoc",
            FrameBody::Deauth { .. } => "deauth",
            FrameBody::Data(_) => "data",
            FrameBody::Null => "null",
            FrameBody::PsPoll { .. } => "ps-poll",
            FrameBody::Ack => "ack",
        }
    }
}

/// A complete 802.11 frame.
///
/// For management and data frames `addr1` is the receiver, `addr2` the
/// transmitter and `addr3` the BSSID. Control frames carry fewer addresses
/// on the wire; on decode the missing fields are filled from the present
/// ones (documented on [`Frame::decode`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Receiver address.
    pub addr1: MacAddr,
    /// Transmitter address.
    pub addr2: MacAddr,
    /// BSSID.
    pub addr3: MacAddr,
    /// Sequence number (12 bits used).
    pub seq: u16,
    /// Duration field (µs); PS-Poll reuses it for the AID on the wire.
    pub duration: u16,
    /// Power-management bit: station is entering power-save mode. The
    /// centrepiece of virtualized Wi-Fi.
    pub power_mgmt: bool,
    /// More-data bit: the AP holds further buffered frames for this station.
    pub more_data: bool,
    /// Retransmission bit.
    pub retry: bool,
    /// To-DS bit (station → distribution system).
    pub to_ds: bool,
    /// From-DS bit (distribution system → station).
    pub from_ds: bool,
    /// Typed payload.
    pub body: FrameBody,
}

impl Frame {
    /// Base constructor with flag defaults; prefer the specific helpers.
    pub fn new(addr1: MacAddr, addr2: MacAddr, addr3: MacAddr, body: FrameBody) -> Frame {
        Frame {
            addr1,
            addr2,
            addr3,
            seq: 0,
            duration: 0,
            power_mgmt: false,
            more_data: false,
            retry: false,
            to_ds: false,
            from_ds: false,
            body,
        }
    }

    /// A broadcast beacon from `bssid`.
    pub fn beacon(bssid: MacAddr, ssid: Ssid, channel: Channel, timestamp_us: u64) -> Frame {
        Frame::new(
            MacAddr::BROADCAST,
            bssid,
            bssid,
            FrameBody::Beacon(BeaconBody {
                timestamp_us,
                interval_tu: 100, // the ubiquitous 102.4 ms default
                capability: capability::ESS,
                ssid,
                channel,
            }),
        )
    }

    /// A broadcast (wildcard) probe request from `station`.
    pub fn probe_request(station: MacAddr) -> Frame {
        Frame::new(
            MacAddr::BROADCAST,
            station,
            MacAddr::BROADCAST,
            FrameBody::ProbeReq {
                ssid: Ssid::wildcard(),
            },
        )
    }

    /// A unicast probe response from `bssid` to `station`.
    pub fn probe_response(
        bssid: MacAddr,
        station: MacAddr,
        ssid: Ssid,
        channel: Channel,
        timestamp_us: u64,
    ) -> Frame {
        Frame::new(
            station,
            bssid,
            bssid,
            FrameBody::ProbeResp(BeaconBody {
                timestamp_us,
                interval_tu: 100,
                capability: capability::ESS,
                ssid,
                channel,
            }),
        )
    }

    /// An open-system authentication request from `station` to `bssid`.
    pub fn auth_request(station: MacAddr, bssid: MacAddr) -> Frame {
        Frame::new(
            bssid,
            station,
            bssid,
            FrameBody::Auth(AuthBody {
                algorithm: AUTH_ALGORITHM_OPEN,
                transaction: 1,
                status: STATUS_SUCCESS,
            }),
        )
    }

    /// The AP's authentication response.
    pub fn auth_response(bssid: MacAddr, station: MacAddr, status: u16) -> Frame {
        Frame::new(
            station,
            bssid,
            bssid,
            FrameBody::Auth(AuthBody {
                algorithm: AUTH_ALGORITHM_OPEN,
                transaction: 2,
                status,
            }),
        )
    }

    /// An association request from `station` to `bssid`.
    pub fn assoc_request(station: MacAddr, bssid: MacAddr, ssid: Ssid) -> Frame {
        Frame::new(
            bssid,
            station,
            bssid,
            FrameBody::AssocReq(AssocReqBody {
                capability: capability::ESS,
                listen_interval: 10,
                ssid,
            }),
        )
    }

    /// The AP's association response granting (or refusing) AID `aid`.
    pub fn assoc_response(bssid: MacAddr, station: MacAddr, status: u16, aid: u16) -> Frame {
        Frame::new(
            station,
            bssid,
            bssid,
            FrameBody::AssocResp(AssocRespBody {
                capability: capability::ESS,
                status,
                aid,
            }),
        )
    }

    /// A station→AP data frame (to-DS set).
    pub fn data_to_ap(station: MacAddr, bssid: MacAddr, payload: Bytes) -> Frame {
        let mut f = Frame::new(bssid, station, bssid, FrameBody::Data(payload));
        f.to_ds = true;
        f
    }

    /// An AP→station data frame (from-DS set).
    pub fn data_from_ap(bssid: MacAddr, station: MacAddr, payload: Bytes) -> Frame {
        let mut f = Frame::new(station, bssid, bssid, FrameBody::Data(payload));
        f.from_ds = true;
        f
    }

    /// The null-data frame announcing entry into power-save mode. Sending
    /// this is how a virtualized client asks the AP to buffer its downlink
    /// traffic before the radio leaves the channel.
    pub fn psm_enter(station: MacAddr, bssid: MacAddr) -> Frame {
        let mut f = Frame::new(bssid, station, bssid, FrameBody::Null);
        f.power_mgmt = true;
        f.to_ds = true;
        f
    }

    /// The null-data frame announcing exit from power-save mode (radio is
    /// back on this AP's channel; resume normal delivery).
    pub fn psm_exit(station: MacAddr, bssid: MacAddr) -> Frame {
        let mut f = Frame::new(bssid, station, bssid, FrameBody::Null);
        f.power_mgmt = false;
        f.to_ds = true;
        f
    }

    /// A PS-Poll requesting one buffered frame for `aid`.
    pub fn ps_poll(station: MacAddr, bssid: MacAddr, aid: u16) -> Frame {
        Frame::new(bssid, station, bssid, FrameBody::PsPoll { aid })
    }

    /// A link-layer ACK addressed to `to`.
    ///
    /// ACK carries only a receiver address on the wire; `addr2`/`addr3` are
    /// set to `to` as placeholders.
    pub fn ack(to: MacAddr) -> Frame {
        Frame::new(to, to, to, FrameBody::Ack)
    }

    /// True if this frame is addressed to `me` (or broadcast).
    pub fn is_for(&self, me: MacAddr) -> bool {
        self.addr1 == me || self.addr1.is_broadcast()
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = Writer::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encode into an existing [`Writer`], appending exactly
    /// [`Frame::wire_len`] bytes. Hot paths keep one scratch `Writer` and
    /// call this between [`Writer::clear`]s to avoid a per-frame buffer
    /// allocation.
    pub fn encode_into(&self, buf: &mut Writer) {
        let (t, s) = self.body.type_subtype();
        let mut fc: u16 = ((t as u16) << 2) | ((s as u16) << 4);
        if self.to_ds {
            fc |= 1 << 8;
        }
        if self.from_ds {
            fc |= 1 << 9;
        }
        if self.retry {
            fc |= 1 << 11;
        }
        if self.power_mgmt {
            fc |= 1 << 12;
        }
        if self.more_data {
            fc |= 1 << 13;
        }
        buf.put_u16_le(fc);

        match &self.body {
            FrameBody::PsPoll { aid } => {
                // PS-Poll: FC, AID (in the duration field), BSSID, TA.
                buf.put_u16_le(*aid | 0xC000); // two MSBs set per the standard
                buf.put_slice(&self.addr1.octets());
                buf.put_slice(&self.addr2.octets());
                return;
            }
            FrameBody::Ack => {
                // ACK: FC, duration, RA.
                buf.put_u16_le(self.duration);
                buf.put_slice(&self.addr1.octets());
                return;
            }
            _ => {}
        }

        buf.put_u16_le(self.duration);
        buf.put_slice(&self.addr1.octets());
        buf.put_slice(&self.addr2.octets());
        buf.put_slice(&self.addr3.octets());
        buf.put_u16_le(self.seq << 4); // fragment number 0

        match &self.body {
            FrameBody::Beacon(b) | FrameBody::ProbeResp(b) => {
                buf.put_u64_le(b.timestamp_us);
                buf.put_u16_le(b.interval_tu);
                buf.put_u16_le(b.capability);
                put_ssid_ie(buf, &b.ssid);
                buf.put_u8(ie::DS_PARAMS);
                buf.put_u8(1);
                buf.put_u8(b.channel.number());
            }
            FrameBody::ProbeReq { ssid } => {
                put_ssid_ie(buf, ssid);
            }
            FrameBody::Auth(a) => {
                buf.put_u16_le(a.algorithm);
                buf.put_u16_le(a.transaction);
                buf.put_u16_le(a.status);
            }
            FrameBody::AssocReq(a) => {
                buf.put_u16_le(a.capability);
                buf.put_u16_le(a.listen_interval);
                put_ssid_ie(buf, &a.ssid);
            }
            FrameBody::AssocResp(a) => {
                buf.put_u16_le(a.capability);
                buf.put_u16_le(a.status);
                buf.put_u16_le(a.aid);
            }
            FrameBody::Disassoc { reason } | FrameBody::Deauth { reason } => {
                buf.put_u16_le(*reason);
            }
            FrameBody::Data(payload) => {
                buf.put_slice(payload);
            }
            FrameBody::Null => {}
            FrameBody::PsPoll { .. } | FrameBody::Ack => unreachable!("handled above"),
        }
    }

    /// Decode from wire bytes.
    ///
    /// Control frames fill their absent address fields from the present
    /// ones: a decoded ACK has `addr2 == addr3 == addr1`, and a decoded
    /// PS-Poll has `addr3 == addr1` (the BSSID).
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        let mut buf = Reader::new(bytes);
        let fc = buf.get_u16_le()?;
        let t = ((fc >> 2) & 0x3) as u8;
        let s = ((fc >> 4) & 0xF) as u8;
        let to_ds = fc & (1 << 8) != 0;
        let from_ds = fc & (1 << 9) != 0;
        let retry = fc & (1 << 11) != 0;
        let power_mgmt = fc & (1 << 12) != 0;
        let more_data = fc & (1 << 13) != 0;

        if t == ftype::CTRL {
            return match s {
                subtype::PS_POLL => {
                    let aid = buf.get_u16_le()? & 0x3FFF;
                    let bssid = take_addr(&mut buf)?;
                    let ta = take_addr(&mut buf)?;
                    Ok(Frame {
                        addr1: bssid,
                        addr2: ta,
                        addr3: bssid,
                        seq: 0,
                        duration: 0,
                        power_mgmt,
                        more_data,
                        retry,
                        to_ds,
                        from_ds,
                        body: FrameBody::PsPoll { aid },
                    })
                }
                subtype::ACK => {
                    let duration = buf.get_u16_le()?;
                    let ra = take_addr(&mut buf)?;
                    Ok(Frame {
                        addr1: ra,
                        addr2: ra,
                        addr3: ra,
                        seq: 0,
                        duration,
                        power_mgmt,
                        more_data,
                        retry,
                        to_ds,
                        from_ds,
                        body: FrameBody::Ack,
                    })
                }
                _ => Err(FrameError::Unsupported {
                    ftype: t,
                    subtype: s,
                }),
            };
        }

        let duration = buf.get_u16_le()?;
        let addr1 = take_addr(&mut buf)?;
        let addr2 = take_addr(&mut buf)?;
        let addr3 = take_addr(&mut buf)?;
        let seq = buf.get_u16_le()? >> 4;

        let body = match (t, s) {
            (ftype::MGMT, subtype::BEACON) => FrameBody::Beacon(decode_beacon_body(&mut buf)?),
            (ftype::MGMT, subtype::PROBE_RESP) => {
                FrameBody::ProbeResp(decode_beacon_body(&mut buf)?)
            }
            (ftype::MGMT, subtype::PROBE_REQ) => {
                let elements = decode_elements(buf.rest())?;
                FrameBody::ProbeReq {
                    ssid: elements.ssid.unwrap_or_else(Ssid::wildcard),
                }
            }
            (ftype::MGMT, subtype::AUTH) => FrameBody::Auth(AuthBody {
                algorithm: buf.get_u16_le()?,
                transaction: buf.get_u16_le()?,
                status: buf.get_u16_le()?,
            }),
            (ftype::MGMT, subtype::ASSOC_REQ) => {
                let cap = buf.get_u16_le()?;
                let li = buf.get_u16_le()?;
                let elements = decode_elements(buf.rest())?;
                FrameBody::AssocReq(AssocReqBody {
                    capability: cap,
                    listen_interval: li,
                    ssid: elements.ssid.ok_or(FrameError::BadElement)?,
                })
            }
            (ftype::MGMT, subtype::ASSOC_RESP) => FrameBody::AssocResp(AssocRespBody {
                capability: buf.get_u16_le()?,
                status: buf.get_u16_le()?,
                aid: buf.get_u16_le()?,
            }),
            (ftype::MGMT, subtype::DISASSOC) => FrameBody::Disassoc {
                reason: buf.get_u16_le()?,
            },
            (ftype::MGMT, subtype::DEAUTH) => FrameBody::Deauth {
                reason: buf.get_u16_le()?,
            },
            (ftype::DATA, subtype::DATA) => FrameBody::Data(Bytes::copy_from_slice(buf.rest())),
            (ftype::DATA, subtype::NULL) => FrameBody::Null,
            _ => {
                return Err(FrameError::Unsupported {
                    ftype: t,
                    subtype: s,
                })
            }
        };

        Ok(Frame {
            addr1,
            addr2,
            addr3,
            seq,
            duration,
            power_mgmt,
            more_data,
            retry,
            to_ds,
            from_ds,
            body,
        })
    }

    /// The frame's size on the wire in bytes (header + body, no FCS).
    ///
    /// Computed arithmetically from the layout — no encode, no allocation —
    /// so airtime accounting can ask for frame sizes on the per-event hot
    /// path. Kept in lockstep with [`Frame::encode`] by a property test
    /// (`wire_len() == encode().len()` over generated frames).
    pub fn wire_len(&self) -> usize {
        // SSID information element: type byte, length byte, then the bytes.
        let ssid_ie = |ssid: &Ssid| 2 + ssid.as_bytes().len();
        match &self.body {
            // Control frames carry short headers.
            FrameBody::PsPoll { .. } => 2 + 2 + 6 + 6, // FC, AID, BSSID, TA
            FrameBody::Ack => 2 + 2 + 6,               // FC, duration, RA
            // Everything else: 24-byte header (FC, duration, three
            // addresses, sequence control) plus the typed body.
            body => {
                24 + match body {
                    FrameBody::Beacon(b) | FrameBody::ProbeResp(b) => {
                        // Timestamp, interval, capability, SSID IE, DS IE.
                        8 + 2 + 2 + ssid_ie(&b.ssid) + 3
                    }
                    FrameBody::ProbeReq { ssid } => ssid_ie(ssid),
                    FrameBody::Auth(_) => 6,
                    FrameBody::AssocReq(a) => 2 + 2 + ssid_ie(&a.ssid),
                    FrameBody::AssocResp(_) => 6,
                    FrameBody::Disassoc { .. } | FrameBody::Deauth { .. } => 2,
                    FrameBody::Data(payload) => payload.len(),
                    FrameBody::Null => 0,
                    FrameBody::PsPoll { .. } | FrameBody::Ack => unreachable!("handled above"),
                }
            }
        }
    }
}

fn take_addr(buf: &mut Reader<'_>) -> Result<MacAddr, FrameError> {
    let mut octets = [0u8; 6];
    buf.read_exact(&mut octets)?;
    Ok(MacAddr(octets))
}

fn put_ssid_ie(buf: &mut Writer, ssid: &Ssid) {
    buf.put_u8(ie::SSID);
    buf.put_u8(ssid.as_bytes().len() as u8);
    buf.put_slice(ssid.as_bytes());
}

struct Elements {
    ssid: Option<Ssid>,
    channel: Option<Channel>,
}

fn decode_elements(bytes: &[u8]) -> Result<Elements, FrameError> {
    let mut buf = Reader::new(bytes);
    let mut out = Elements {
        ssid: None,
        channel: None,
    };
    while buf.remaining() >= 2 {
        let id = buf.get_u8()?;
        let len = buf.get_u8()? as usize;
        let payload = buf.take(len).map_err(|_| FrameError::BadElement)?;
        match id {
            ie::SSID => out.ssid = Some(Ssid::from_bytes(payload)?),
            ie::DS_PARAMS => {
                if len != 1 {
                    return Err(FrameError::BadElement);
                }
                out.channel = Channel::new(payload[0]);
                if out.channel.is_none() {
                    return Err(FrameError::BadElement);
                }
            }
            _ => {} // unknown IEs are skipped, as on real hardware
        }
    }
    if buf.remaining() != 0 {
        return Err(FrameError::BadElement);
    }
    Ok(out)
}

fn decode_beacon_body(buf: &mut Reader<'_>) -> Result<BeaconBody, FrameError> {
    let timestamp_us = buf.get_u64_le()?;
    let interval_tu = buf.get_u16_le()?;
    let capability = buf.get_u16_le()?;
    let elements = decode_elements(buf.rest())?;
    Ok(BeaconBody {
        timestamp_us,
        interval_tu,
        capability,
        ssid: elements.ssid.ok_or(FrameError::BadElement)?,
        channel: elements.channel.ok_or(FrameError::BadElement)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta() -> MacAddr {
        MacAddr::local(1)
    }
    fn ap() -> MacAddr {
        MacAddr::ap(7)
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = frame.encode();
        Frame::decode(&bytes).expect("decode of encoded frame")
    }

    #[test]
    fn beacon_roundtrip() {
        let f = Frame::beacon(ap(), Ssid::new("open-net"), Channel::CH6, 123_456);
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn probe_pair_roundtrip() {
        let req = Frame::probe_request(sta());
        assert_eq!(roundtrip(&req), req);
        let resp = Frame::probe_response(ap(), sta(), Ssid::new("x"), Channel::CH1, 9);
        assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn auth_pair_roundtrip() {
        let req = Frame::auth_request(sta(), ap());
        assert_eq!(roundtrip(&req), req);
        let resp = Frame::auth_response(ap(), sta(), STATUS_SUCCESS);
        assert_eq!(roundtrip(&resp), resp);
        if let FrameBody::Auth(a) = &resp.body {
            assert_eq!(a.transaction, 2);
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn assoc_pair_roundtrip() {
        let req = Frame::assoc_request(sta(), ap(), Ssid::new("net"));
        assert_eq!(roundtrip(&req), req);
        let resp = Frame::assoc_response(ap(), sta(), STATUS_SUCCESS, 3);
        assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn data_roundtrip_preserves_payload_and_ds_bits() {
        let payload = Bytes::from_static(b"GET / HTTP/1.1\r\n");
        let up = Frame::data_to_ap(sta(), ap(), payload.clone());
        let up2 = roundtrip(&up);
        assert!(up2.to_ds && !up2.from_ds);
        assert_eq!(up2.body, FrameBody::Data(payload.clone()));
        let down = Frame::data_from_ap(ap(), sta(), payload);
        let down2 = roundtrip(&down);
        assert!(down2.from_ds && !down2.to_ds);
    }

    #[test]
    fn psm_null_frames_carry_power_bit() {
        let enter = Frame::psm_enter(sta(), ap());
        assert!(roundtrip(&enter).power_mgmt);
        let exit = Frame::psm_exit(sta(), ap());
        assert!(!roundtrip(&exit).power_mgmt);
    }

    #[test]
    fn ps_poll_roundtrip_keeps_aid() {
        let f = Frame::ps_poll(sta(), ap(), 0x1234 & 0x3FFF);
        let g = roundtrip(&f);
        assert_eq!(
            g.body,
            FrameBody::PsPoll {
                aid: 0x1234 & 0x3FFF
            }
        );
        assert_eq!(g.addr1, ap()); // BSSID
        assert_eq!(g.addr2, sta()); // TA
        assert_eq!(g.addr3, ap()); // filled from BSSID
    }

    #[test]
    fn ack_roundtrip() {
        let f = Frame::ack(sta());
        let g = roundtrip(&f);
        assert_eq!(g.body, FrameBody::Ack);
        assert_eq!(g.addr1, sta());
    }

    #[test]
    fn disassoc_deauth_roundtrip() {
        let mut d = Frame::new(
            ap(),
            sta(),
            ap(),
            FrameBody::Disassoc {
                reason: REASON_LEAVING,
            },
        );
        assert_eq!(roundtrip(&d), d);
        d.body = FrameBody::Deauth {
            reason: REASON_INACTIVITY,
        };
        assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn sequence_number_survives() {
        let mut f = Frame::beacon(ap(), Ssid::new("s"), Channel::CH11, 0);
        f.seq = 0xABC;
        assert_eq!(roundtrip(&f).seq, 0xABC);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let f = Frame::beacon(ap(), Ssid::new("open-net"), Channel::CH6, 1);
        let bytes = f.encode();
        for cut in 0..bytes.len() {
            // Every prefix must decode to an error or a (different) valid
            // frame, never panic.
            let _ = Frame::decode(&bytes[..cut]);
        }
        assert_eq!(Frame::decode(&[]), Err(FrameError::Truncated));
    }

    #[test]
    fn unknown_subtype_is_unsupported() {
        // Craft FC with mgmt type and subtype 6 (unused).
        let fc: u16 = (6u16) << 4;
        let mut bytes = fc.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 22]); // duration + addrs + seq
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Unsupported {
                ftype: 0,
                subtype: 6
            })
        ));
    }

    #[test]
    fn is_for_matches_unicast_and_broadcast() {
        let f = Frame::beacon(ap(), Ssid::new("s"), Channel::CH1, 0);
        assert!(f.is_for(sta()));
        let g = Frame::auth_response(ap(), sta(), 0);
        assert!(g.is_for(sta()));
        assert!(!g.is_for(MacAddr::local(99)));
    }

    #[test]
    fn wildcard_ssid_roundtrip() {
        let req = Frame::probe_request(sta());
        if let FrameBody::ProbeReq { ssid } = &roundtrip(&req).body {
            assert!(ssid.is_wildcard());
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn wire_len_reasonable() {
        let beacon = Frame::beacon(ap(), Ssid::new("abcdefgh"), Channel::CH6, 0);
        // 24 hdr + 12 fixed + (2+8) ssid ie + 3 ds ie = 49
        assert_eq!(beacon.wire_len(), 49);
        let ack = Frame::ack(sta());
        assert_eq!(ack.wire_len(), 10);
        let pspoll = Frame::ps_poll(sta(), ap(), 1);
        assert_eq!(pspoll.wire_len(), 16);
    }

    #[test]
    fn ssid_limits() {
        assert!(Ssid::from_bytes(&[0u8; 33]).is_err());
        assert!(Ssid::from_bytes(&[0u8; 32]).is_ok());
    }
}
