//! The radio hardware model: one physical card, one channel at a time.
//!
//! Spider virtualizes a single card among channels; what the hardware
//! charges for that is the **channel switch latency**: sending a PSM frame
//! to each associated AP on the old channel, a hardware reset to retune, and
//! a PS-Poll to each associated AP on the new channel. Table 1 of the paper
//! measures this at 4.9–5.9 ms on an Atheros card, growing with the number
//! of connected interfaces. [`RadioConfig`] reproduces that cost model.

use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};

use crate::channel::Channel;

/// Switch-cost parameters, calibrated to Table 1 of the paper.
#[derive(Debug, Clone)]
pub struct RadioConfig {
    /// Hardware reset (retune) time: the latency with zero connected
    /// interfaces. Paper: mean 4.942 ms, σ 0.009 ms.
    pub reset: Duration,
    /// Jitter (σ) on the reset when no interfaces are connected.
    pub reset_jitter: Duration,
    /// Extra cost per connected interface: one PSM null frame on the old
    /// channel plus one PS-Poll on the new one (≈ 0.25 ms at 11 Mb/s with
    /// preamble and channel access).
    pub per_iface: Duration,
    /// Jitter (σ) per connected interface — contention makes the PSM frames
    /// increasingly variable (Table 1's σ grows to ≈ 1 ms).
    pub per_iface_jitter: Duration,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            reset: Duration::from_micros(4_942),
            reset_jitter: Duration::from_micros(9),
            per_iface: Duration::from_micros(250),
            per_iface_jitter: Duration::from_micros(280),
        }
    }
}

impl RadioConfig {
    /// Draw one switch latency given `connected` associated interfaces.
    pub fn switch_latency(&self, connected: usize, rng: &mut Rng) -> Duration {
        let mean = self.reset.as_secs_f64() + connected as f64 * self.per_iface.as_secs_f64();
        let sigma = self.reset_jitter.as_secs_f64()
            + connected as f64 * self.per_iface_jitter.as_secs_f64();
        // Truncated normal: latency cannot undercut the hardware reset.
        let drawn = rng.normal(mean, sigma);
        Duration::from_secs_f64(drawn.max(self.reset.as_secs_f64() * 0.9))
    }
}

/// The state of the physical radio.
#[derive(Debug, Clone)]
pub struct Radio {
    config: RadioConfig,
    channel: Channel,
    /// The radio neither transmits nor receives until this instant
    /// (mid-switch).
    busy_until: Instant,
    switches: u64,
    total_switch_time: Duration,
}

impl Radio {
    /// A radio parked on `initial` channel.
    pub fn new(config: RadioConfig, initial: Channel) -> Radio {
        Radio {
            config,
            channel: initial,
            busy_until: Instant::ZERO,
            switches: 0,
            total_switch_time: Duration::ZERO,
        }
    }

    /// The channel the radio is (or will be, if mid-switch) tuned to.
    pub fn channel(&self) -> Channel {
        self.channel
    }

    /// True if the radio is mid-switch and deaf at `now`.
    pub fn is_busy(&self, now: Instant) -> bool {
        now < self.busy_until
    }

    /// The instant the current switch completes.
    pub fn ready_at(&self) -> Instant {
        self.busy_until
    }

    /// True if the radio can exchange frames on `ch` at `now`.
    pub fn can_hear(&self, ch: Channel, now: Instant) -> bool {
        !self.is_busy(now) && self.channel == ch
    }

    /// Begin a switch to `to` at `now` with `connected` associated
    /// interfaces. Returns the drawn latency; the radio is deaf until
    /// `now + latency`. Switching to the current channel is free.
    pub fn switch_to(
        &mut self,
        to: Channel,
        now: Instant,
        connected: usize,
        rng: &mut Rng,
    ) -> Duration {
        if to == self.channel {
            return Duration::ZERO;
        }
        let latency = self.config.switch_latency(connected, rng);
        self.channel = to;
        self.busy_until = now + latency;
        self.switches += 1;
        self.total_switch_time += latency;
        latency
    }

    /// Number of completed channel switches.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Cumulative time spent deaf in switches.
    pub fn switch_overhead(&self) -> Duration {
        self.total_switch_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::stats::Summary;

    #[test]
    fn switch_latency_matches_table1_shape() {
        // Reproduce Table 1's trend: mean grows with connected interfaces,
        // staying in the 4.9–6 ms band for 0–4 interfaces.
        let cfg = RadioConfig::default();
        let mut rng = Rng::new(42);
        let mut prev_mean = 0.0;
        for connected in 0..=4 {
            let mut s = Summary::new();
            for _ in 0..2_000 {
                s.record(cfg.switch_latency(connected, &mut rng).as_secs_f64() * 1e3);
            }
            assert!(
                s.mean() > prev_mean,
                "mean latency must grow with connected ifaces"
            );
            assert!(
                (4.4..6.5).contains(&s.mean()),
                "mean {} ms out of Table 1 band for {} ifaces",
                s.mean(),
                connected
            );
            prev_mean = s.mean();
        }
    }

    #[test]
    fn same_channel_switch_is_free() {
        let mut rng = Rng::new(1);
        let mut radio = Radio::new(RadioConfig::default(), Channel::CH6);
        let d = radio.switch_to(Channel::CH6, Instant::from_secs(1), 3, &mut rng);
        assert_eq!(d, Duration::ZERO);
        assert_eq!(radio.switch_count(), 0);
        assert!(!radio.is_busy(Instant::from_secs(1)));
    }

    #[test]
    fn switch_makes_radio_deaf_until_done() {
        let mut rng = Rng::new(2);
        let mut radio = Radio::new(RadioConfig::default(), Channel::CH1);
        let t0 = Instant::from_secs(10);
        let latency = radio.switch_to(Channel::CH11, t0, 0, &mut rng);
        assert!(latency > Duration::ZERO);
        assert_eq!(radio.channel(), Channel::CH11);
        assert!(radio.is_busy(t0));
        assert!(radio.is_busy(t0 + latency - Duration::from_nanos(1)));
        assert!(!radio.is_busy(t0 + latency));
        assert!(radio.can_hear(Channel::CH11, t0 + latency));
        assert!(!radio.can_hear(Channel::CH1, t0 + latency));
    }

    #[test]
    fn overhead_accumulates() {
        let mut rng = Rng::new(3);
        let mut radio = Radio::new(RadioConfig::default(), Channel::CH1);
        let mut now;
        let mut sum = Duration::ZERO;
        for (i, ch) in [Channel::CH6, Channel::CH11, Channel::CH1]
            .iter()
            .enumerate()
        {
            now = Instant::from_secs(i as u64 + 1);
            sum += radio.switch_to(*ch, now, i, &mut rng);
        }
        assert_eq!(radio.switch_count(), 3);
        assert_eq!(radio.switch_overhead(), sum);
    }
}
