//! # wifi-mac
//!
//! The 802.11 substrate of the Spider (CoNEXT 2011) reproduction: everything
//! between "a vehicle and some APs exist at certain distances" and "a DHCP
//! packet can be handed to the next layer".
//!
//! * [`addr`] — MAC addresses.
//! * [`channel`] — 2.4 GHz channels; orthogonality of 1/6/11.
//! * [`frame`] — the frame wire formats the join and data paths use,
//!   including the PSM machinery (null frames with the power-management
//!   bit, PS-Poll) that virtualized Wi-Fi is built on.
//! * [`phy`] — path loss, frame error rate, and airtime at 11 Mb/s.
//! * [`client`] — the station-side join state machine with configurable
//!   link-layer timeouts (the paper's 1 s default vs 100 ms reduced).
//! * [`ap`] — the AP-side machine: probes, open auth, association table,
//!   PSM buffering and release.
//! * [`radio`] — the one-channel-at-a-time physical card with Table 1's
//!   switch-latency cost model.
//! * [`rates`] — 802.11b multi-rate (1/2/5.5/11 Mb/s) and the ARF
//!   adaptation algorithm, as an opt-in extension beyond the paper's
//!   fixed-11 Mb/s assumption.
//! * [`scan`] — the active probe-sweep procedure (Min/MaxChannelTime),
//!   the discovery path stock drivers pay a second-plus for.
//!
//! All state machines are pure (frames in, actions out) — the event loop
//! that wires them to virtual time lives in `spider-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod ap;
pub mod channel;
pub mod client;
pub mod frame;
pub mod phy;
pub mod radio;
pub mod rates;
pub mod scan;

pub use addr::MacAddr;
pub use ap::{ApAction, ApConfig, ApMac};
pub use channel::{Channel, ORTHOGONAL};
pub use client::{Action, ClientMac, JoinConfig, JoinFailure, JoinPhase};
pub use frame::{Frame, FrameBody, FrameError, Ssid};
pub use phy::{LinkQuality, PhyConfig};
pub use radio::{Radio, RadioConfig};
pub use rates::{Arf, Rate, RatedPhy};
pub use scan::{ScanAction, ScanConfig, ScanHit, ScanProcedure};
