//! Active scanning: the probe sweep a client runs to discover APs.
//!
//! Spider relies on *opportunistic* scanning (harvesting beacons while
//! parked on a channel), but two paths still need the classic active scan:
//! the stock driver's discovery cycle, and any client arriving in an area
//! cold. [`ScanProcedure`] is the standard state machine: for each channel
//! in the plan, switch, broadcast a probe request, listen for
//! `min_dwell`; extend to `max_dwell` if anything answered (802.11's
//! MinChannelTime / MaxChannelTime).
//!
//! Like every machine in this crate it is pure: the caller owns the radio
//! and the clock, feeds in responses and timer expiries, and receives
//! [`ScanAction`]s.

use sim_engine::time::{Duration, Instant};

use crate::addr::MacAddr;
use crate::channel::Channel;
use crate::frame::{Frame, FrameBody};

/// Scan timing parameters.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Channels to visit, in order.
    pub plan: Vec<Channel>,
    /// Listen time on a channel with no answers (MinChannelTime ≈ 20 ms).
    pub min_dwell: Duration,
    /// Listen time once something answered (MaxChannelTime ≈ 100 ms).
    pub max_dwell: Duration,
}

impl ScanConfig {
    /// The typical 2.4 GHz sweep over the three orthogonal channels.
    pub fn orthogonal() -> ScanConfig {
        ScanConfig {
            plan: crate::channel::ORTHOGONAL.to_vec(),
            min_dwell: Duration::from_millis(20),
            max_dwell: Duration::from_millis(100),
        }
    }

    /// A full 11-channel sweep (what stock drivers actually do, and why
    /// their scans take over a second).
    pub fn full() -> ScanConfig {
        ScanConfig {
            plan: (1..=11).map(Channel::from_number).collect(),
            min_dwell: Duration::from_millis(20),
            max_dwell: Duration::from_millis(100),
        }
    }

    /// Worst-case sweep time (every channel extends to `max_dwell`).
    pub fn worst_case(&self) -> Duration {
        self.max_dwell
            .checked_mul(self.plan.len() as u64)
            .unwrap_or(Duration::MAX)
    }
}

/// One discovered network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanHit {
    /// The AP.
    pub bssid: MacAddr,
    /// The channel it answered on.
    pub channel: Channel,
    /// When it answered.
    pub heard_at: Instant,
}

/// Outputs of the scan machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanAction {
    /// Retune the radio to `channel`, then transmit `probe` and arm the
    /// dwell timer with `token`.
    VisitChannel {
        /// The channel to switch to.
        channel: Channel,
        /// The broadcast probe to send once tuned.
        probe: Frame,
        /// Listen this long before the next timer callback.
        dwell: Duration,
        /// Timer generation token.
        token: u64,
    },
    /// Extend listening on the current channel (something answered).
    ExtendDwell {
        /// Additional listen time.
        dwell: Duration,
        /// Timer generation token.
        token: u64,
    },
    /// The sweep finished; `hits` holds everything heard.
    Done {
        /// All discovered networks, in hearing order.
        hits: Vec<ScanHit>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// Visiting `plan[idx]`, not yet extended.
    Listening {
        idx: usize,
        extended: bool,
    },
    Finished,
}

/// The active-scan state machine.
#[derive(Debug, Clone)]
pub struct ScanProcedure {
    config: ScanConfig,
    station: MacAddr,
    phase: Phase,
    hits: Vec<ScanHit>,
    timer_gen: u64,
}

impl ScanProcedure {
    /// A new scanner for `station`.
    ///
    /// # Panics
    /// Panics on an empty channel plan.
    pub fn new(station: MacAddr, config: ScanConfig) -> ScanProcedure {
        assert!(!config.plan.is_empty(), "ScanProcedure: empty channel plan");
        ScanProcedure {
            config,
            station,
            phase: Phase::Idle,
            hits: Vec::new(),
            timer_gen: 0,
        }
    }

    /// True while the sweep is running.
    pub fn is_scanning(&self) -> bool {
        matches!(self.phase, Phase::Listening { .. })
    }

    /// Hits collected so far.
    pub fn hits(&self) -> &[ScanHit] {
        &self.hits
    }

    fn visit(&mut self, idx: usize) -> ScanAction {
        self.phase = Phase::Listening {
            idx,
            extended: false,
        };
        self.timer_gen += 1;
        ScanAction::VisitChannel {
            channel: self.config.plan[idx],
            probe: Frame::probe_request(self.station),
            dwell: self.config.min_dwell,
            token: self.timer_gen,
        }
    }

    /// Begin the sweep.
    ///
    /// # Panics
    /// Panics if a sweep is already running.
    pub fn start(&mut self) -> ScanAction {
        assert!(!self.is_scanning(), "ScanProcedure::start while scanning");
        self.hits.clear();
        self.visit(0)
    }

    /// Feed a frame received while scanning. Probe responses and beacons
    /// on the current channel are recorded.
    pub fn handle_frame(&mut self, frame: &Frame, now: Instant) {
        let Phase::Listening { idx, .. } = self.phase else {
            return;
        };
        let current = self.config.plan[idx];
        let heard_channel = match &frame.body {
            FrameBody::ProbeResp(b) | FrameBody::Beacon(b) => b.channel,
            _ => return,
        };
        if heard_channel != current {
            return; // adjacent-channel bleed is ignored
        }
        if self.hits.iter().any(|h| h.bssid == frame.addr2) {
            return;
        }
        self.hits.push(ScanHit {
            bssid: frame.addr2,
            channel: current,
            heard_at: now,
        });
    }

    /// Feed a dwell-timer expiry. Stale tokens are ignored (returns
    /// `None`).
    pub fn handle_timer(&mut self, token: u64) -> Option<ScanAction> {
        if token != self.timer_gen {
            return None;
        }
        let Phase::Listening { idx, extended } = self.phase else {
            return None;
        };
        let current = self.config.plan[idx];
        let answered_here = self.hits.iter().any(|h| h.channel == current);
        if answered_here && !extended {
            // Something lives here: stay for the long dwell.
            self.phase = Phase::Listening {
                idx,
                extended: true,
            };
            self.timer_gen += 1;
            return Some(ScanAction::ExtendDwell {
                dwell: self.config.max_dwell - self.config.min_dwell,
                token: self.timer_gen,
            });
        }
        // Move on, or finish.
        if idx + 1 < self.config.plan.len() {
            Some(self.visit(idx + 1))
        } else {
            self.phase = Phase::Finished;
            self.timer_gen += 1;
            Some(ScanAction::Done {
                hits: self.hits.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Ssid;

    fn scanner() -> ScanProcedure {
        ScanProcedure::new(MacAddr::local(1), ScanConfig::orthogonal())
    }

    fn resp(ap: u32, channel: Channel) -> Frame {
        Frame::probe_response(
            MacAddr::ap(ap),
            MacAddr::local(1),
            Ssid::new("x"),
            channel,
            0,
        )
    }

    fn token_of(action: &ScanAction) -> u64 {
        match action {
            ScanAction::VisitChannel { token, .. } | ScanAction::ExtendDwell { token, .. } => {
                *token
            }
            ScanAction::Done { .. } => panic!("done has no token"),
        }
    }

    #[test]
    fn empty_sweep_visits_every_channel_once() {
        let mut s = scanner();
        let mut action = s.start();
        let mut visited = Vec::new();
        loop {
            match &action {
                ScanAction::VisitChannel {
                    channel,
                    dwell,
                    probe,
                    ..
                } => {
                    visited.push(*channel);
                    assert_eq!(*dwell, Duration::from_millis(20));
                    assert!(matches!(probe.body, FrameBody::ProbeReq { .. }));
                }
                ScanAction::ExtendDwell { .. } => panic!("nothing answered"),
                ScanAction::Done { hits } => {
                    assert!(hits.is_empty());
                    break;
                }
            }
            action = s.handle_timer(token_of(&action)).expect("live token");
        }
        assert_eq!(visited, crate::channel::ORTHOGONAL.to_vec());
        assert!(!s.is_scanning());
    }

    #[test]
    fn answers_extend_the_dwell_and_are_collected() {
        let mut s = scanner();
        let a1 = s.start(); // on ch1
        s.handle_frame(&resp(7, Channel::CH1), Instant::from_millis(5));
        let a2 = s.handle_timer(token_of(&a1)).expect("live");
        match &a2 {
            ScanAction::ExtendDwell { dwell, .. } => {
                assert_eq!(*dwell, Duration::from_millis(80));
            }
            other => panic!("{other:?}"),
        }
        // Another AP answers during the extension.
        s.handle_frame(&resp(8, Channel::CH1), Instant::from_millis(60));
        // Extension expires: move to ch6; no second extension of ch1.
        let a3 = s.handle_timer(token_of(&a2)).expect("live");
        assert!(matches!(
            a3,
            ScanAction::VisitChannel {
                channel: Channel::CH6,
                ..
            }
        ));
        // Drain the rest.
        let mut action = a3;
        let hits = loop {
            match s.handle_timer(token_of(&action)).expect("live") {
                ScanAction::Done { hits } => break hits,
                next => action = next,
            }
        };
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.channel == Channel::CH1));
    }

    #[test]
    fn off_channel_and_duplicate_answers_ignored() {
        let mut s = scanner();
        let _ = s.start(); // on ch1
        s.handle_frame(&resp(7, Channel::CH6), Instant::ZERO); // wrong channel
        assert!(s.hits().is_empty());
        s.handle_frame(&resp(7, Channel::CH1), Instant::ZERO);
        s.handle_frame(&resp(7, Channel::CH1), Instant::ZERO); // duplicate
        assert_eq!(s.hits().len(), 1);
    }

    #[test]
    fn stale_timer_tokens_ignored() {
        let mut s = scanner();
        let a1 = s.start();
        let old = token_of(&a1);
        let _a2 = s.handle_timer(old).expect("live");
        assert!(
            s.handle_timer(old).is_none(),
            "consumed token must be stale"
        );
    }

    #[test]
    fn full_sweep_worst_case_exceeds_a_second() {
        // The stock-driver reality: 11 channels × 100 ms.
        let cfg = ScanConfig::full();
        assert_eq!(cfg.plan.len(), 11);
        assert!(cfg.worst_case() >= Duration::from_secs(1));
    }

    #[test]
    fn restart_clears_previous_hits() {
        let mut s = scanner();
        let a1 = s.start();
        s.handle_frame(&resp(7, Channel::CH1), Instant::ZERO);
        // Finish the sweep.
        let mut action = s.handle_timer(token_of(&a1)).expect("live");
        loop {
            match s.handle_timer(token_of(&action)) {
                Some(ScanAction::Done { .. }) => break,
                Some(next) => action = next,
                None => panic!("lost the token"),
            }
        }
        let _ = s.start();
        assert!(s.hits().is_empty());
    }
}
