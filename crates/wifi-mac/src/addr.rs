//! IEEE 802 MAC addresses.

use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// ```
/// use wifi_mac::addr::MacAddr;
/// let a: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
/// assert_eq!(a, MacAddr::local(42));
/// assert_eq!(a.to_string(), "02:00:00:00:00:2a");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally administered unicast address derived from an integer id.
    /// Used to mint deterministic addresses for simulated stations.
    pub const fn local(id: u32) -> MacAddr {
        MacAddr([
            0x02, // locally administered, unicast
            0x00,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// A deterministic AP (BSSID) address distinct from the `local` space.
    pub const fn ap(id: u32) -> MacAddr {
        MacAddr([
            0x06, // locally administered, unicast, different OUI nibble
            0x00,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Raw bytes.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax (want xx:xx:xx:xx:xx:xx)")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for byte in &mut out {
            let part = parts.next().ok_or(ParseMacError)?;
            if part.len() != 2 {
                return Err(ParseMacError);
            }
            *byte = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for id in [0u32, 1, 255, 65_536, u32::MAX] {
            let a = MacAddr::local(id);
            let s = a.to_string();
            assert_eq!(s.parse::<MacAddr>().unwrap(), a);
        }
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(1).is_broadcast());
        assert!(!MacAddr::local(1).is_multicast());
    }

    #[test]
    fn local_and_ap_spaces_disjoint() {
        for id in 0..1000 {
            assert_ne!(MacAddr::local(id), MacAddr::ap(id));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:2a:ff".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:zz".parse::<MacAddr>().is_err());
        assert!("0200:00:00:00:2a".parse::<MacAddr>().is_err());
    }
}
