//! PHY model: path loss, frame error rate, and airtime.
//!
//! The paper's experiments ran over 802.11b/g radios at vehicular range; its
//! model abstracts the channel as "message loss probability `h`" (10 % in
//! the paper's parameterization). This module supplies that abstraction from
//! first principles so experiments can also vary distance:
//!
//! * **Path loss** — log-distance model: `PL(d) = PL₀ + 10·n·log₁₀(d/d₀)`
//!   with an urban-outdoor exponent. Received power − noise floor = SNR.
//! * **Frame error rate** — logistic curve in SNR, scaled by frame length
//!   (longer frames intersect more channel errors).
//! * **Airtime** — DIFS + mean backoff + preamble + payload at the 802.11b
//!   11 Mb/s rate the paper assumes (`Bw = 11 Mbps` in §2.1.3).
//!
//! Data frames additionally model the MAC's ARQ: up to `data_retries`
//! retransmissions collapse into an *effective* delivery probability and an
//! *expected* airtime, so the simulator does not pay per-ACK events.
//! Management frames get no MAC retries — exactly the regime the paper's
//! join model studies, where each lost handshake message costs a full
//! protocol timeout.
//!
//! Defaults are calibrated so that a node inside the paper's assumed 100 m
//! range sees on the order of 10 % management-frame loss (`h = 0.1`),
//! falling off steeply beyond it.

use sim_engine::time::Duration;

/// Instantaneous link quality between two stations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Per-attempt frame error probability for a reference-length frame.
    pub per: f64,
}

/// PHY model parameters.
#[derive(Debug, Clone)]
pub struct PhyConfig {
    /// Transmit power, dBm (typical AP/client: 20 dBm = 100 mW).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent (free space 2.0; urban street canyon ≈ 3.0).
    pub path_loss_exponent: f64,
    /// Receiver noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// SNR at which the error curve crosses 50 %, dB.
    pub per_midpoint_snr_db: f64,
    /// Logistic slope of the error curve, dB per e-fold.
    pub per_slope_db: f64,
    /// Frame length at which `per` is quoted, bytes.
    pub reference_frame_len: usize,
    /// PHY bit rate, bits/s (802.11b long-preamble DSSS: 11 Mb/s).
    pub bitrate_bps: u64,
    /// PLCP preamble + header time (long preamble: 192 µs).
    pub preamble: Duration,
    /// DIFS, the idle time before contention (802.11b: 50 µs).
    pub difs: Duration,
    /// Mean random backoff (CWmin/2 × 20 µs slots ≈ 310 µs for CWmin 31).
    pub mean_backoff: Duration,
    /// MAC retransmission budget for **data** frames (802.11 default long
    /// retry limit is 7 total attempts).
    pub data_retries: u32,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            tx_power_dbm: 20.0,
            ref_loss_db: 40.0,
            path_loss_exponent: 3.5,
            noise_floor_dbm: -95.0,
            per_midpoint_snr_db: 7.0,
            per_slope_db: 2.0,
            reference_frame_len: 400,
            bitrate_bps: 11_000_000,
            preamble: Duration::from_micros(192),
            difs: Duration::from_micros(50),
            mean_backoff: Duration::from_micros(310),
            data_retries: 6,
        }
    }
}

impl PhyConfig {
    /// Link quality at `distance_m` metres (clamped below at 1 m).
    pub fn link_at(&self, distance_m: f64) -> LinkQuality {
        let d = distance_m.max(1.0);
        let path_loss = self.ref_loss_db + 10.0 * self.path_loss_exponent * d.log10();
        let rssi = self.tx_power_dbm - path_loss;
        let snr = rssi - self.noise_floor_dbm;
        let per = 1.0 / (1.0 + ((snr - self.per_midpoint_snr_db) / self.per_slope_db).exp());
        LinkQuality {
            rssi_dbm: rssi,
            snr_db: snr,
            per,
        }
    }

    /// Per-attempt error probability for a frame of `len` bytes at
    /// `distance_m`: the reference PER rescaled through the equivalent
    /// bit-error process, `1 − (1 − per)^(len/ref_len)`.
    pub fn frame_error_prob(&self, distance_m: f64, len: usize) -> f64 {
        let per = self.link_at(distance_m).per;
        let exponent = len as f64 / self.reference_frame_len as f64;
        1.0 - (1.0 - per).powf(exponent)
    }

    /// Probability a frame is delivered within `attempts` tries (ARQ).
    pub fn delivery_prob(&self, per_attempt_error: f64, attempts: u32) -> f64 {
        1.0 - per_attempt_error.powi(attempts as i32)
    }

    /// Effective delivery probability of a **data** frame, including MAC
    /// retries.
    pub fn data_delivery_prob(&self, distance_m: f64, len: usize) -> f64 {
        self.data_delivery_prob_from_error(self.frame_error_prob(distance_m, len))
    }

    /// [`Self::data_delivery_prob`] from an already-computed per-attempt
    /// error. The hot path computes `frame_error_prob` once per frame and
    /// feeds it to both this and [`Self::expected_data_airtime_from_error`]
    /// — the two must stay arithmetically identical to their
    /// distance-taking twins (event timing is bit-sensitive).
    pub fn data_delivery_prob_from_error(&self, per_attempt_error: f64) -> f64 {
        self.delivery_prob(per_attempt_error, self.data_retries + 1)
    }

    /// Effective delivery probability of a **management** frame — a single
    /// attempt, per the paper's join model.
    pub fn mgmt_delivery_prob(&self, distance_m: f64, len: usize) -> f64 {
        1.0 - self.frame_error_prob(distance_m, len)
    }

    /// Airtime of a single transmission attempt of `len` bytes, including
    /// channel access (DIFS + mean backoff) and preamble.
    pub fn airtime(&self, len: usize) -> Duration {
        let payload_ns = (len as u64 * 8).saturating_mul(1_000_000_000) / self.bitrate_bps;
        self.difs + self.mean_backoff + self.preamble + Duration::from_nanos(payload_ns)
    }

    /// Expected airtime of a data frame including retransmissions:
    /// `airtime × E[attempts]`, with `E[attempts]` the truncated-geometric
    /// mean `(1 − e^(r+1)) / (1 − e)` for per-attempt error `e`.
    pub fn expected_data_airtime(&self, distance_m: f64, len: usize) -> Duration {
        self.expected_data_airtime_from_error(self.frame_error_prob(distance_m, len), len)
    }

    /// [`Self::expected_data_airtime`] from an already-computed per-attempt
    /// error (see [`Self::data_delivery_prob_from_error`]).
    pub fn expected_data_airtime_from_error(&self, per_attempt_error: f64, len: usize) -> Duration {
        let e = per_attempt_error;
        let attempts = if e >= 1.0 {
            (self.data_retries + 1) as f64
        } else {
            (1.0 - e.powi(self.data_retries as i32 + 1)) / (1.0 - e)
        };
        self.airtime(len).mul_f64(attempts)
    }

    /// The distance at which the reference-frame PER crosses `per`: a
    /// practical "range" figure. The paper assumes a 100 m Wi-Fi range; the
    /// default calibration puts `range_at_per(0.5)` near there.
    pub fn range_at_per(&self, per: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&per) && per > 0.0,
            "range_at_per: per out of (0,1): {per}"
        );
        // Invert the logistic for the SNR, then the path-loss model for d.
        let snr = self.per_midpoint_snr_db + self.per_slope_db * ((1.0 - per) / per).ln();
        let rssi = snr + self.noise_floor_dbm;
        let path_loss = self.tx_power_dbm - rssi;
        10f64.powf((path_loss - self.ref_loss_db) / (10.0 * self.path_loss_exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closer_is_better() {
        let phy = PhyConfig::default();
        let near = phy.link_at(10.0);
        let far = phy.link_at(120.0);
        assert!(near.rssi_dbm > far.rssi_dbm);
        assert!(near.snr_db > far.snr_db);
        assert!(near.per < far.per);
    }

    #[test]
    fn per_is_probability_at_all_distances() {
        let phy = PhyConfig::default();
        for d in [0.0, 1.0, 10.0, 50.0, 100.0, 200.0, 1000.0] {
            let q = phy.link_at(d);
            assert!((0.0..=1.0).contains(&q.per), "per {} at {d} m", q.per);
        }
    }

    #[test]
    fn default_calibration_matches_paper_regime() {
        let phy = PhyConfig::default();
        // Mid-range loss near the paper's h = 10 %: somewhere inside the
        // 100 m range the mgmt loss should be ≈ 0.1.
        let at_80 = phy.frame_error_prob(80.0, 400);
        assert!(
            (0.02..0.40).contains(&at_80),
            "80 m reference PER {at_80} outside plausible band"
        );
        // Effective range (50 % PER) should be in the ballpark of the
        // paper's assumed 100 m.
        let range = phy.range_at_per(0.5);
        assert!((80.0..160.0).contains(&range), "50% PER range {range} m");
        // Well out of range the link is dead.
        assert!(phy.frame_error_prob(400.0, 400) > 0.99);
    }

    #[test]
    fn range_at_per_inverts_frame_error_prob() {
        let phy = PhyConfig::default();
        for per in [0.1, 0.3, 0.5, 0.9] {
            let d = phy.range_at_per(per);
            let back = phy.frame_error_prob(d, phy.reference_frame_len);
            assert!(
                (back - per).abs() < 1e-6,
                "per {per} -> d {d} -> per {back}"
            );
        }
    }

    #[test]
    fn longer_frames_fail_more() {
        let phy = PhyConfig::default();
        let short = phy.frame_error_prob(90.0, 50);
        let long = phy.frame_error_prob(90.0, 1500);
        assert!(long > short);
    }

    #[test]
    fn arq_improves_delivery() {
        let phy = PhyConfig::default();
        let d = 100.0;
        let once = phy.mgmt_delivery_prob(d, 400);
        let retried = phy.data_delivery_prob(d, 400);
        assert!(retried > once);
        assert!(retried <= 1.0);
    }

    #[test]
    fn airtime_scales_with_length() {
        let phy = PhyConfig::default();
        let a100 = phy.airtime(100);
        let a1500 = phy.airtime(1500);
        assert!(a1500 > a100);
        // 1500 B at 11 Mb/s ≈ 1091 µs payload + 552 µs overhead.
        let total_us = a1500.as_micros();
        assert!((1_500..1_800).contains(&total_us), "airtime {total_us} µs");
    }

    #[test]
    fn expected_airtime_at_least_single_attempt() {
        let phy = PhyConfig::default();
        for d in [10.0, 80.0, 150.0] {
            assert!(phy.expected_data_airtime(d, 1000) >= phy.airtime(1000));
        }
        // At hopeless range, expected attempts cap at the retry budget.
        let max = phy.airtime(1000).mul_f64((phy.data_retries + 1) as f64);
        assert!(phy.expected_data_airtime(10_000.0, 1000) <= max + Duration::from_nanos(10));
    }

    #[test]
    fn delivery_prob_monotone_in_attempts() {
        let phy = PhyConfig::default();
        let e = 0.4;
        let mut last = 0.0;
        for attempts in 1..8 {
            let p = phy.delivery_prob(e, attempts);
            assert!(p > last);
            last = p;
        }
    }
}
