//! Client-side 802.11 join state machine.
//!
//! One [`ClientMac`] instance manages the link-layer join of one virtual
//! interface to one AP: (probe →) authenticate → associate. The machine is
//! pure and event-driven: callers feed it frames and timer expiries and it
//! returns [`Action`]s (frames to transmit, timers to arm, outcome
//! notifications). This makes it trivially testable and reusable by both
//! Spider and the stock-driver baseline.
//!
//! Timing is the whole game in the paper: each outstanding request is
//! guarded by the **link-layer timeout** (default 1 s; Eriksson et al.'s
//! Cabernet reduced it to 100 ms, which the paper studies in Figs. 5–6 and
//! Table 3). The timeout applies *per message* of the multi-step handshake,
//! not to the whole join — see the paper's footnote 1.

use sim_engine::time::{Duration, Instant};

use crate::addr::MacAddr;
use crate::frame::{Frame, FrameBody, Ssid, STATUS_SUCCESS};

/// Join-procedure parameters.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Send a directed probe before authenticating. Skipped when the AP was
    /// just heard from (opportunistic scanning already proved presence).
    pub use_probe: bool,
    /// Per-message response timeout (the "link-layer timeout").
    /// Stock drivers: 1 s. Reduced configuration: 100 ms.
    pub link_layer_timeout: Duration,
    /// Transmission attempts per handshake phase before the join fails.
    pub attempts_per_phase: u32,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig {
            use_probe: true,
            link_layer_timeout: Duration::from_secs(1),
            attempts_per_phase: 3,
        }
    }
}

impl JoinConfig {
    /// The reduced-timeout configuration studied in the paper (100 ms).
    pub fn reduced() -> Self {
        JoinConfig {
            link_layer_timeout: Duration::from_millis(100),
            ..Self::default()
        }
    }
}

/// Handshake phases (for diagnostics and failure attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPhase {
    /// Waiting for a probe response.
    Probe,
    /// Waiting for an authentication response.
    Auth,
    /// Waiting for an association response.
    Assoc,
}

/// Why a join attempt ended unsuccessfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinFailure {
    /// Ran out of attempts in the given phase.
    Timeout(JoinPhase),
    /// The AP refused with the given status code.
    Refused(u16),
}

/// Output of the state machine: things the caller must do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Transmit this frame (subject to the radio being on-channel).
    Send(Frame),
    /// Arm the response timer: call [`ClientMac::handle_timer`] with `token`
    /// after `after` elapses, unless a newer timer supersedes it.
    ArmTimer {
        /// Delay until expiry.
        after: Duration,
        /// Generation token; stale tokens must be ignored by the machine
        /// (it checks), so the caller never needs to cancel.
        token: u64,
    },
    /// The join completed; the interface holds association id `aid`.
    Joined {
        /// Association id assigned by the AP.
        aid: u16,
    },
    /// The join failed.
    Failed(JoinFailure),
}

/// Link-layer join state for one (station, AP) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Probing { attempt: u32 },
    Authenticating { attempt: u32 },
    Associating { attempt: u32 },
    Associated { aid: u16 },
    Failed,
}

/// The client-side join machine. See the module docs.
#[derive(Debug, Clone)]
pub struct ClientMac {
    station: MacAddr,
    bssid: MacAddr,
    ssid: Ssid,
    config: JoinConfig,
    state: State,
    timer_gen: u64,
    seq: u16,
    /// When the current join attempt started (for join-time measurement).
    started_at: Option<Instant>,
}

impl ClientMac {
    /// New machine for `station` targeting AP `bssid` / `ssid`.
    pub fn new(station: MacAddr, bssid: MacAddr, ssid: Ssid, config: JoinConfig) -> ClientMac {
        ClientMac {
            station,
            bssid,
            ssid,
            config,
            state: State::Idle,
            timer_gen: 0,
            seq: 0,
            started_at: None,
        }
    }

    /// The AP this machine targets.
    pub fn bssid(&self) -> MacAddr {
        self.bssid
    }

    /// The station address.
    pub fn station(&self) -> MacAddr {
        self.station
    }

    /// True once associated.
    pub fn is_associated(&self) -> bool {
        matches!(self.state, State::Associated { .. })
    }

    /// True if a join is in flight (started, not yet succeeded or failed).
    pub fn is_joining(&self) -> bool {
        matches!(
            self.state,
            State::Probing { .. } | State::Authenticating { .. } | State::Associating { .. }
        )
    }

    /// True after a terminal failure (restart with [`ClientMac::start`]).
    pub fn has_failed(&self) -> bool {
        self.state == State::Failed
    }

    /// The association id, if associated.
    pub fn aid(&self) -> Option<u16> {
        match self.state {
            State::Associated { aid } => Some(aid),
            _ => None,
        }
    }

    /// When the in-flight (or completed) join attempt began.
    pub fn join_started_at(&self) -> Option<Instant> {
        self.started_at
    }

    fn next_seq(&mut self) -> u16 {
        self.seq = (self.seq + 1) & 0x0FFF;
        self.seq
    }

    fn arm(&mut self) -> Action {
        self.timer_gen += 1;
        Action::ArmTimer {
            after: self.config.link_layer_timeout,
            token: self.timer_gen,
        }
    }

    fn send(&mut self, mut frame: Frame) -> Action {
        frame.seq = self.next_seq();
        Action::Send(frame)
    }

    /// Begin (or restart) the join at time `now`.
    ///
    /// # Panics
    /// Panics if already associated; disassociate first.
    pub fn start(&mut self, now: Instant) -> Vec<Action> {
        assert!(
            !self.is_associated(),
            "ClientMac::start while associated to {}",
            self.bssid
        );
        self.started_at = Some(now);
        if self.config.use_probe {
            self.state = State::Probing { attempt: 1 };
            let mut probe = Frame::probe_request(self.station);
            // Directed probe: ask this SSID specifically.
            probe.addr1 = self.bssid;
            probe.addr3 = self.bssid;
            probe.body = FrameBody::ProbeReq {
                ssid: self.ssid.clone(),
            };
            vec![self.send(probe), self.arm()]
        } else {
            self.state = State::Authenticating { attempt: 1 };
            let auth = Frame::auth_request(self.station, self.bssid);
            vec![self.send(auth), self.arm()]
        }
    }

    /// Tear down the association (or abandon the join). Returns the
    /// disassociation frame to transmit when previously associated.
    pub fn disassociate(&mut self) -> Vec<Action> {
        let was_associated = self.is_associated();
        self.state = State::Idle;
        self.timer_gen += 1; // invalidate outstanding timer
        self.started_at = None;
        if was_associated {
            let f = Frame::new(
                self.bssid,
                self.station,
                self.bssid,
                FrameBody::Disassoc {
                    reason: crate::frame::REASON_LEAVING,
                },
            );
            vec![self.send(f)]
        } else {
            Vec::new()
        }
    }

    /// Feed a received frame. Frames not from our AP or not addressed to us
    /// are ignored (return no actions).
    pub fn handle_frame(&mut self, frame: &Frame) -> Vec<Action> {
        if frame.addr2 != self.bssid || !frame.is_for(self.station) {
            return Vec::new();
        }
        match (&self.state, &frame.body) {
            (State::Probing { .. }, FrameBody::ProbeResp(_)) => {
                self.state = State::Authenticating { attempt: 1 };
                let auth = Frame::auth_request(self.station, self.bssid);
                vec![self.send(auth), self.arm()]
            }
            (State::Authenticating { .. }, FrameBody::Auth(auth)) if auth.transaction == 2 => {
                if auth.status == STATUS_SUCCESS {
                    self.state = State::Associating { attempt: 1 };
                    let req = Frame::assoc_request(self.station, self.bssid, self.ssid.clone());
                    vec![self.send(req), self.arm()]
                } else {
                    self.state = State::Failed;
                    self.timer_gen += 1;
                    vec![Action::Failed(JoinFailure::Refused(auth.status))]
                }
            }
            (State::Associating { .. }, FrameBody::AssocResp(resp)) => {
                if resp.status == STATUS_SUCCESS {
                    self.state = State::Associated { aid: resp.aid };
                    self.timer_gen += 1;
                    vec![Action::Joined { aid: resp.aid }]
                } else {
                    self.state = State::Failed;
                    self.timer_gen += 1;
                    vec![Action::Failed(JoinFailure::Refused(resp.status))]
                }
            }
            (State::Associated { .. }, FrameBody::Deauth { .. })
            | (State::Associated { .. }, FrameBody::Disassoc { .. }) => {
                // Kicked by the AP; drop to idle so the driver can rejoin.
                self.state = State::Idle;
                self.started_at = None;
                vec![Action::Failed(JoinFailure::Refused(
                    crate::frame::STATUS_FAILURE,
                ))]
            }
            _ => Vec::new(),
        }
    }

    /// Feed a timer expiry. Stale tokens (superseded by newer timers or by
    /// state changes) are ignored.
    pub fn handle_timer(&mut self, token: u64) -> Vec<Action> {
        if token != self.timer_gen {
            return Vec::new();
        }
        let max = self.config.attempts_per_phase;
        match self.state {
            State::Probing { attempt } => {
                if attempt >= max {
                    self.fail(JoinPhase::Probe)
                } else {
                    self.state = State::Probing {
                        attempt: attempt + 1,
                    };
                    let mut probe = Frame::probe_request(self.station);
                    probe.addr1 = self.bssid;
                    probe.addr3 = self.bssid;
                    probe.body = FrameBody::ProbeReq {
                        ssid: self.ssid.clone(),
                    };
                    probe.retry = true;
                    vec![self.send(probe), self.arm()]
                }
            }
            State::Authenticating { attempt } => {
                if attempt >= max {
                    self.fail(JoinPhase::Auth)
                } else {
                    self.state = State::Authenticating {
                        attempt: attempt + 1,
                    };
                    let mut auth = Frame::auth_request(self.station, self.bssid);
                    auth.retry = true;
                    vec![self.send(auth), self.arm()]
                }
            }
            State::Associating { attempt } => {
                if attempt >= max {
                    self.fail(JoinPhase::Assoc)
                } else {
                    self.state = State::Associating {
                        attempt: attempt + 1,
                    };
                    let mut req = Frame::assoc_request(self.station, self.bssid, self.ssid.clone());
                    req.retry = true;
                    vec![self.send(req), self.arm()]
                }
            }
            State::Idle | State::Associated { .. } | State::Failed => Vec::new(),
        }
    }

    fn fail(&mut self, phase: JoinPhase) -> Vec<Action> {
        self.state = State::Failed;
        self.timer_gen += 1;
        vec![Action::Failed(JoinFailure::Timeout(phase))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    fn sta() -> MacAddr {
        MacAddr::local(1)
    }
    fn ap() -> MacAddr {
        MacAddr::ap(1)
    }
    fn ssid() -> Ssid {
        Ssid::new("open")
    }

    fn machine(cfg: JoinConfig) -> ClientMac {
        ClientMac::new(sta(), ap(), ssid(), cfg)
    }

    /// Walk a machine through the full successful handshake; returns the AID.
    fn complete_join(m: &mut ClientMac) -> u16 {
        let t0 = Instant::ZERO;
        let acts = m.start(t0);
        assert!(matches!(acts[0], Action::Send(_)));
        if m.config.use_probe {
            let resp = Frame::probe_response(ap(), sta(), ssid(), Channel::CH1, 0);
            let acts = m.handle_frame(&resp);
            assert!(matches!(&acts[0], Action::Send(f) if f.body.kind() == "auth-req"));
        }
        let auth = Frame::auth_response(ap(), sta(), STATUS_SUCCESS);
        let acts = m.handle_frame(&auth);
        assert!(matches!(&acts[0], Action::Send(f) if f.body.kind() == "assoc-req"));
        let assoc = Frame::assoc_response(ap(), sta(), STATUS_SUCCESS, 7);
        let acts = m.handle_frame(&assoc);
        assert_eq!(acts, vec![Action::Joined { aid: 7 }]);
        7
    }

    #[test]
    fn happy_path_with_probe() {
        let mut m = machine(JoinConfig::default());
        let aid = complete_join(&mut m);
        assert!(m.is_associated());
        assert_eq!(m.aid(), Some(aid));
    }

    #[test]
    fn happy_path_without_probe() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        complete_join(&mut m);
        assert!(m.is_associated());
    }

    #[test]
    fn start_sends_directed_probe() {
        let mut m = machine(JoinConfig::default());
        let acts = m.start(Instant::ZERO);
        match &acts[0] {
            Action::Send(f) => {
                assert_eq!(f.addr1, ap());
                assert!(matches!(&f.body, FrameBody::ProbeReq { ssid } if !ssid.is_wildcard()));
            }
            other => panic!("expected Send, got {other:?}"),
        }
        assert!(matches!(acts[1], Action::ArmTimer { .. }));
    }

    #[test]
    fn timer_retries_then_fails() {
        let mut m = machine(JoinConfig {
            attempts_per_phase: 3,
            ..JoinConfig::default()
        });
        let acts = m.start(Instant::ZERO);
        let mut token = match acts[1] {
            Action::ArmTimer { token, .. } => token,
            _ => panic!("no timer armed"),
        };
        // Two retries…
        for _ in 0..2 {
            let acts = m.handle_timer(token);
            assert!(matches!(&acts[0], Action::Send(f) if f.retry));
            token = match acts[1] {
                Action::ArmTimer { token, .. } => token,
                _ => panic!("no timer rearmed"),
            };
        }
        // …third expiry exhausts the budget.
        let acts = m.handle_timer(token);
        assert_eq!(
            acts,
            vec![Action::Failed(JoinFailure::Timeout(JoinPhase::Probe))]
        );
        assert!(m.has_failed());
    }

    #[test]
    fn stale_timer_tokens_ignored() {
        let mut m = machine(JoinConfig::default());
        let acts = m.start(Instant::ZERO);
        let token = match acts[1] {
            Action::ArmTimer { token, .. } => token,
            _ => panic!(),
        };
        // Probe response arrives; the probe timer is now stale.
        let resp = Frame::probe_response(ap(), sta(), ssid(), Channel::CH1, 0);
        m.handle_frame(&resp);
        assert!(m.handle_timer(token).is_empty());
    }

    #[test]
    fn refusal_fails_immediately() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        m.start(Instant::ZERO);
        let refusal = Frame::auth_response(ap(), sta(), crate::frame::STATUS_FAILURE);
        let acts = m.handle_frame(&refusal);
        assert_eq!(
            acts,
            vec![Action::Failed(JoinFailure::Refused(
                crate::frame::STATUS_FAILURE
            ))]
        );
    }

    #[test]
    fn assoc_refusal_when_ap_full() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        m.start(Instant::ZERO);
        m.handle_frame(&Frame::auth_response(ap(), sta(), STATUS_SUCCESS));
        let resp = Frame::assoc_response(ap(), sta(), crate::frame::STATUS_AP_FULL, 0);
        let acts = m.handle_frame(&resp);
        assert_eq!(
            acts,
            vec![Action::Failed(JoinFailure::Refused(
                crate::frame::STATUS_AP_FULL
            ))]
        );
    }

    #[test]
    fn frames_from_other_aps_ignored() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        m.start(Instant::ZERO);
        let other = Frame::auth_response(MacAddr::ap(99), sta(), STATUS_SUCCESS);
        assert!(m.handle_frame(&other).is_empty());
        assert!(m.is_joining());
    }

    #[test]
    fn frames_for_other_stations_ignored() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        m.start(Instant::ZERO);
        let other = Frame::auth_response(ap(), MacAddr::local(99), STATUS_SUCCESS);
        assert!(m.handle_frame(&other).is_empty());
    }

    #[test]
    fn disassociate_sends_notice_and_resets() {
        let mut m = machine(JoinConfig::default());
        complete_join(&mut m);
        let acts = m.disassociate();
        assert!(matches!(&acts[0], Action::Send(f) if f.body.kind() == "disassoc"));
        assert!(!m.is_associated());
        // Restartable.
        let acts = m.start(Instant::from_secs(1));
        assert!(!acts.is_empty());
    }

    #[test]
    fn deauth_from_ap_drops_association() {
        let mut m = machine(JoinConfig::default());
        complete_join(&mut m);
        let deauth = Frame::new(
            sta(),
            ap(),
            ap(),
            FrameBody::Deauth {
                reason: crate::frame::REASON_INACTIVITY,
            },
        );
        let acts = m.handle_frame(&deauth);
        assert!(matches!(acts[0], Action::Failed(_)));
        assert!(!m.is_associated());
    }

    #[test]
    fn duplicate_assoc_resp_is_ignored_when_associated() {
        let mut m = machine(JoinConfig::default());
        complete_join(&mut m);
        let dup = Frame::assoc_response(ap(), sta(), STATUS_SUCCESS, 7);
        assert!(m.handle_frame(&dup).is_empty());
    }

    #[test]
    #[should_panic(expected = "while associated")]
    fn start_while_associated_panics() {
        let mut m = machine(JoinConfig::default());
        complete_join(&mut m);
        m.start(Instant::from_secs(2));
    }

    #[test]
    fn join_started_at_tracked() {
        let mut m = machine(JoinConfig::default());
        let t = Instant::from_millis(1234);
        m.start(t);
        assert_eq!(m.join_started_at(), Some(t));
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut m = machine(JoinConfig {
            use_probe: false,
            ..JoinConfig::default()
        });
        let a1 = m.start(Instant::ZERO);
        let s1 = match &a1[0] {
            Action::Send(f) => f.seq,
            _ => panic!(),
        };
        let a2 = m.handle_frame(&Frame::auth_response(ap(), sta(), STATUS_SUCCESS));
        let s2 = match &a2[0] {
            Action::Send(f) => f.seq,
            _ => panic!(),
        };
        assert!(s2 > s1);
    }
}
