//! Access-point MAC: the infrastructure side of the join and data paths.
//!
//! [`ApMac`] answers probes, authenticates and associates stations, and —
//! crucially for virtualized Wi-Fi — honours the **power-save mode** fiction
//! every multi-AP client relies on: when a station's last frame carried the
//! power-management bit, downlink traffic is buffered instead of
//! transmitted, and released when the station returns (null frame with the
//! bit clear) or polls (PS-Poll).
//!
//! Management responses carry a small *processing delay* drawn per response;
//! the dominant component of the paper's `β` (join response time) is the
//! DHCP server, modelled separately in the `dhcp` crate.

use std::collections::{BTreeMap, VecDeque};

use sim_engine::rng::Rng;
use sim_engine::time::{Duration, Instant};
use sim_engine::wire::Bytes;

use crate::addr::MacAddr;
use crate::channel::Channel;
use crate::frame::{Frame, FrameBody, Ssid, REASON_INACTIVITY, STATUS_AP_FULL, STATUS_SUCCESS};

/// AP parameters.
#[derive(Debug, Clone)]
pub struct ApConfig {
    /// Network name.
    pub ssid: Ssid,
    /// BSSID (the AP's MAC address).
    pub bssid: MacAddr,
    /// Operating channel.
    pub channel: Channel,
    /// Maximum concurrent associations.
    pub capacity: usize,
    /// Management response processing delay, lower bound.
    pub proc_delay_min: Duration,
    /// Management response processing delay, upper bound (exclusive).
    pub proc_delay_max: Duration,
    /// PSM buffer capacity per station, frames. Overflow drops the newest
    /// frame (drop-tail), as consumer APs do. 2011-era consumer APs held
    /// on the order of 64 packets per power-save queue — the bound that
    /// makes long off-channel absences expensive for TCP (§2.2.2).
    pub psm_buffer_frames: usize,
    /// Power-save-buffered frames older than this are aged out instead of
    /// delivered. Consumer APs hold PS frames for only a couple of beacon
    /// intervals; this is what makes long off-channel absences lossy for
    /// TCP (and why fast FatVAP-style schedules survive where the paper's
    /// 600 ms multi-channel schedule suffers).
    pub psm_frame_max_age: Duration,
    /// Associations idle longer than this are expired (deauthenticated).
    pub idle_timeout: Duration,
    /// Beacon interval (the classic 100 TU ≈ 102.4 ms).
    pub beacon_interval: Duration,
}

impl ApConfig {
    /// A typical open AP with the given identity and channel.
    pub fn open(id: u32, ssid: &str, channel: Channel) -> ApConfig {
        ApConfig {
            ssid: Ssid::new(ssid),
            bssid: MacAddr::ap(id),
            channel,
            capacity: 32,
            proc_delay_min: Duration::from_millis(1),
            proc_delay_max: Duration::from_millis(5),
            psm_buffer_frames: 64,
            psm_frame_max_age: Duration::from_micros(256_000), // 2.5 beacons
            idle_timeout: Duration::from_secs(60),
            beacon_interval: Duration::from_micros(102_400),
        }
    }
}

/// Per-station association state.
#[derive(Debug, Clone)]
struct StationEntry {
    aid: u16,
    /// Station announced power-save mode; buffer downlink frames.
    psm: bool,
    /// `(enqueued_at, payload)` pairs awaiting delivery.
    buffer: VecDeque<(Instant, Bytes)>,
    /// Insertion point for rebuffered in-flight frames, so a run of them
    /// keeps its original order ahead of backhaul-buffered frames.
    rebuffer_cursor: usize,
    last_seen: Instant,
}

/// Output of the AP machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApAction {
    /// Transmit `frame` after `delay` (management processing time; zero for
    /// data-path frames).
    Send {
        /// Processing delay before the frame hits the air.
        delay: Duration,
        /// The frame to transmit.
        frame: Frame,
    },
    /// An uplink payload from an associated station, for the backhaul.
    ToUplink {
        /// Originating station.
        from: MacAddr,
        /// The payload (an IP packet in this workspace).
        payload: Bytes,
    },
}

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApCounters {
    /// Downlink frames buffered due to PSM.
    pub psm_buffered: u64,
    /// Downlink frames dropped on PSM buffer overflow.
    pub psm_dropped: u64,
    /// Downlink frames aged out of the PSM buffer before delivery.
    pub psm_expired: u64,
    /// Downlink frames dropped because the station was not associated.
    pub unassociated_drops: u64,
    /// Associations granted.
    pub assocs_granted: u64,
    /// Associations refused (capacity).
    pub assocs_refused: u64,
}

/// The access-point MAC state machine.
#[derive(Debug, Clone)]
pub struct ApMac {
    config: ApConfig,
    stations: BTreeMap<MacAddr, StationEntry>,
    next_aid: u16,
    seq: u16,
    counters: ApCounters,
}

impl ApMac {
    /// A new AP with no associated stations.
    pub fn new(config: ApConfig) -> ApMac {
        ApMac {
            config,
            stations: BTreeMap::new(),
            next_aid: 1,
            seq: 0,
            counters: ApCounters::default(),
        }
    }

    /// AP configuration.
    pub fn config(&self) -> &ApConfig {
        &self.config
    }

    /// The BSSID.
    pub fn bssid(&self) -> MacAddr {
        self.config.bssid
    }

    /// The operating channel.
    pub fn channel(&self) -> Channel {
        self.config.channel
    }

    /// Experiment counters.
    pub fn counters(&self) -> ApCounters {
        self.counters
    }

    /// Number of associated stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// True if `station` is associated.
    pub fn is_associated(&self, station: MacAddr) -> bool {
        self.stations.contains_key(&station)
    }

    /// Frames currently PSM-buffered for `station`.
    pub fn buffered_for(&self, station: MacAddr) -> usize {
        self.stations.get(&station).map_or(0, |s| s.buffer.len())
    }

    /// True if `station` is in power-save mode.
    pub fn in_psm(&self, station: MacAddr) -> bool {
        self.stations.get(&station).is_some_and(|s| s.psm)
    }

    fn next_seq(&mut self) -> u16 {
        self.seq = (self.seq + 1) & 0x0FFF;
        self.seq
    }

    fn proc_delay(&self, rng: &mut Rng) -> Duration {
        rng.duration_between(self.config.proc_delay_min, self.config.proc_delay_max)
    }

    fn send_mgmt(&mut self, mut frame: Frame, rng: &mut Rng) -> ApAction {
        frame.seq = self.next_seq();
        ApAction::Send {
            delay: self.proc_delay(rng),
            frame,
        }
    }

    fn send_data(&mut self, mut frame: Frame) -> ApAction {
        frame.seq = self.next_seq();
        ApAction::Send {
            delay: Duration::ZERO,
            frame,
        }
    }

    /// The periodic beacon; callers schedule this every
    /// `config.beacon_interval`.
    pub fn beacon(&mut self, now: Instant) -> Frame {
        let mut f = Frame::beacon(
            self.config.bssid,
            self.config.ssid.clone(),
            self.config.channel,
            now.as_micros(),
        );
        f.seq = self.next_seq();
        f
    }

    /// Process a received frame at `now`. Frames not addressed to this BSS
    /// produce no actions.
    pub fn on_frame(&mut self, frame: &Frame, now: Instant, rng: &mut Rng) -> Vec<ApAction> {
        let mut out = Vec::new();
        self.on_frame_into(frame, now, rng, &mut out);
        out
    }

    /// [`Self::on_frame`], pushing actions into a caller-owned buffer so
    /// the per-event hot path reuses one allocation across frames.
    pub fn on_frame_into(
        &mut self,
        frame: &Frame,
        now: Instant,
        rng: &mut Rng,
        out: &mut Vec<ApAction>,
    ) {
        let me = self.config.bssid;
        // Probe requests are accepted broadcast or directed; everything else
        // must address this AP.
        let directed = frame.addr1 == me;
        let station = frame.addr2;
        if let Some(entry) = self.stations.get_mut(&station) {
            entry.last_seen = now;
        }
        match &frame.body {
            FrameBody::ProbeReq { ssid } => {
                let matches = ssid.is_wildcard() || *ssid == self.config.ssid;
                if (directed || frame.addr1.is_broadcast()) && matches {
                    let resp = Frame::probe_response(
                        me,
                        station,
                        self.config.ssid.clone(),
                        self.config.channel,
                        now.as_micros(),
                    );
                    out.push(self.send_mgmt(resp, rng));
                }
            }
            FrameBody::Auth(auth) if directed && auth.transaction == 1 => {
                // Open-system auth: always accept.
                let resp = Frame::auth_response(me, station, STATUS_SUCCESS);
                out.push(self.send_mgmt(resp, rng));
            }
            FrameBody::AssocReq(req) if directed => {
                if req.ssid != self.config.ssid {
                    return;
                }
                if let Some(entry) = self.stations.get(&station) {
                    // Re-association refreshes the existing entry.
                    let aid = entry.aid;
                    let resp = Frame::assoc_response(me, station, STATUS_SUCCESS, aid);
                    out.push(self.send_mgmt(resp, rng));
                    return;
                }
                if self.stations.len() >= self.config.capacity {
                    self.counters.assocs_refused += 1;
                    let resp = Frame::assoc_response(me, station, STATUS_AP_FULL, 0);
                    out.push(self.send_mgmt(resp, rng));
                    return;
                }
                let aid = self.next_aid;
                self.next_aid += 1;
                self.stations.insert(
                    station,
                    StationEntry {
                        aid,
                        psm: false,
                        buffer: VecDeque::new(),
                        rebuffer_cursor: 0,
                        last_seen: now,
                    },
                );
                self.counters.assocs_granted += 1;
                let resp = Frame::assoc_response(me, station, STATUS_SUCCESS, aid);
                out.push(self.send_mgmt(resp, rng));
            }
            FrameBody::Null if directed => {
                if let Some(entry) = self.stations.get_mut(&station) {
                    if frame.power_mgmt {
                        entry.psm = true;
                        entry.rebuffer_cursor = 0;
                    } else {
                        entry.psm = false;
                        self.flush_buffer_into(station, now, out);
                    }
                }
            }
            FrameBody::PsPoll { aid } if directed => {
                let max_age = self.config.psm_frame_max_age;
                let Some(entry) = self.stations.get_mut(&station) else {
                    return;
                };
                if entry.aid != *aid {
                    return;
                }
                entry.rebuffer_cursor = 0;
                // Age out stale frames first.
                while let Some((at, _)) = entry.buffer.front() {
                    if now.saturating_since(*at) > max_age {
                        entry.buffer.pop_front();
                        self.counters.psm_expired += 1;
                    } else {
                        break;
                    }
                }
                let Some((_, payload)) = entry.buffer.pop_front() else {
                    return;
                };
                let more = !entry.buffer.is_empty();
                let mut f = Frame::data_from_ap(me, station, payload);
                f.more_data = more;
                out.push(self.send_data(f));
            }
            // Class-3 frames from unassociated stations fall through to
            // the catch-all and produce nothing.
            FrameBody::Data(payload)
                if directed && frame.to_ds && self.stations.contains_key(&station) =>
            {
                out.push(ApAction::ToUplink {
                    from: station,
                    payload: payload.clone(),
                });
            }
            FrameBody::Disassoc { .. } | FrameBody::Deauth { .. } if directed => {
                self.stations.remove(&station);
            }
            _ => {}
        }
    }

    fn flush_buffer_into(&mut self, station: MacAddr, now: Instant, out: &mut Vec<ApAction>) {
        let max_age = self.config.psm_frame_max_age;
        let Some(entry) = self.stations.get_mut(&station) else {
            return;
        };
        entry.rebuffer_cursor = 0;
        let mut drained: Vec<Bytes> = Vec::with_capacity(entry.buffer.len());
        for (at, payload) in entry.buffer.drain(..) {
            if now.saturating_since(at) > max_age {
                self.counters.psm_expired += 1;
            } else {
                drained.push(payload);
            }
        }
        let n = drained.len();
        let me = self.config.bssid;
        for (i, payload) in drained.into_iter().enumerate() {
            let mut f = Frame::data_from_ap(me, station, payload);
            f.more_data = i + 1 < n;
            let action = self.send_data(f);
            out.push(action);
        }
    }

    /// Return an undeliverable in-flight frame to the front of `station`'s
    /// power-save buffer. This models the MAC path where a frame handed to
    /// the radio fails its retries because the station just left the
    /// channel, and the PM bit routes it back to the PS queue instead of
    /// the floor. Returns `false` (frame dropped) if the station is not
    /// associated, not in PSM, or the buffer is full.
    pub fn rebuffer_front(&mut self, station: MacAddr, payload: Bytes, now: Instant) -> bool {
        let cap = self.config.psm_buffer_frames;
        let Some(entry) = self.stations.get_mut(&station) else {
            self.counters.unassociated_drops += 1;
            return false;
        };
        if !entry.psm || entry.buffer.len() >= cap {
            self.counters.psm_dropped += 1;
            return false;
        }
        let at = entry.rebuffer_cursor.min(entry.buffer.len());
        entry.buffer.insert(at, (now, payload));
        entry.rebuffer_cursor = at + 1;
        self.counters.psm_buffered += 1;
        true
    }

    /// Deliver a downlink payload arriving from the backhaul for `station`.
    /// Buffered if the station is in PSM; dropped (and counted) if the
    /// station is not associated.
    pub fn deliver_downlink(
        &mut self,
        station: MacAddr,
        payload: Bytes,
        now: Instant,
    ) -> Vec<ApAction> {
        let mut out = Vec::new();
        self.deliver_downlink_into(station, payload, now, &mut out);
        out
    }

    /// [`Self::deliver_downlink`], pushing into a caller-owned buffer
    /// (see [`Self::on_frame_into`]).
    pub fn deliver_downlink_into(
        &mut self,
        station: MacAddr,
        payload: Bytes,
        now: Instant,
        out: &mut Vec<ApAction>,
    ) {
        let psm_cap = self.config.psm_buffer_frames;
        let me = self.config.bssid;
        let Some(entry) = self.stations.get_mut(&station) else {
            self.counters.unassociated_drops += 1;
            return;
        };
        if entry.psm {
            if entry.buffer.len() >= psm_cap {
                self.counters.psm_dropped += 1;
            } else {
                entry.buffer.push_back((now, payload));
                self.counters.psm_buffered += 1;
            }
        } else {
            let f = Frame::data_from_ap(me, station, payload);
            let action = self.send_data(f);
            out.push(action);
        }
    }

    /// Expire associations idle past `idle_timeout`; returns deauth frames
    /// to transmit (which mostly won't reach a long-gone vehicle, but keep
    /// the table tidy).
    pub fn expire_idle(&mut self, now: Instant) -> Vec<ApAction> {
        let timeout = self.config.idle_timeout;
        // `stations` is a BTreeMap, so this iteration — and therefore the
        // downstream deauth event order — is already sorted by MacAddr; the
        // defensive sort that papered over hash-map order is gone.
        let expired: Vec<MacAddr> = self
            .stations
            .iter()
            .filter(|(_, e)| now.saturating_since(e.last_seen) > timeout)
            .map(|(m, _)| *m)
            .collect();
        let me = self.config.bssid;
        expired
            .into_iter()
            .map(|station| {
                self.stations.remove(&station);
                let f = Frame::new(
                    station,
                    me,
                    me,
                    FrameBody::Deauth {
                        reason: REASON_INACTIVITY,
                    },
                );
                self.send_data(f)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sta(i: u32) -> MacAddr {
        MacAddr::local(i)
    }

    fn ap() -> ApMac {
        ApMac::new(ApConfig::open(1, "open", Channel::CH6))
    }

    fn rng() -> Rng {
        Rng::new(7)
    }

    /// Associate `station`, returning its AID.
    fn associate(mac: &mut ApMac, station: MacAddr, now: Instant, rng: &mut Rng) -> u16 {
        let auth = Frame::auth_request(station, mac.bssid());
        let acts = mac.on_frame(&auth, now, rng);
        assert_eq!(acts.len(), 1);
        let req = Frame::assoc_request(station, mac.bssid(), Ssid::new("open"));
        let acts = mac.on_frame(&req, now, rng);
        match &acts[0] {
            ApAction::Send { frame, .. } => match &frame.body {
                FrameBody::AssocResp(r) => {
                    assert_eq!(r.status, STATUS_SUCCESS);
                    r.aid
                }
                other => panic!("expected assoc resp, got {other:?}"),
            },
            other => panic!("expected Send, got {other:?}"),
        }
    }

    #[test]
    fn probe_gets_response_with_processing_delay() {
        let mut mac = ap();
        let mut r = rng();
        let probe = Frame::probe_request(sta(1));
        let acts = mac.on_frame(&probe, Instant::ZERO, &mut r);
        match &acts[0] {
            ApAction::Send { delay, frame } => {
                assert!(*delay >= Duration::from_millis(1));
                assert!(*delay < Duration::from_millis(5));
                assert_eq!(frame.body.kind(), "probe-resp");
                assert_eq!(frame.addr1, sta(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_for_other_ssid_ignored() {
        let mut mac = ap();
        let mut r = rng();
        let mut probe = Frame::probe_request(sta(1));
        probe.body = FrameBody::ProbeReq {
            ssid: Ssid::new("someone-else"),
        };
        assert!(mac.on_frame(&probe, Instant::ZERO, &mut r).is_empty());
    }

    #[test]
    fn full_join_assigns_distinct_aids() {
        let mut mac = ap();
        let mut r = rng();
        let a = associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        let b = associate(&mut mac, sta(2), Instant::ZERO, &mut r);
        assert_ne!(a, b);
        assert_eq!(mac.station_count(), 2);
        assert_eq!(mac.counters().assocs_granted, 2);
    }

    #[test]
    fn reassociation_keeps_aid() {
        let mut mac = ap();
        let mut r = rng();
        let a1 = associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        let a2 = associate(&mut mac, sta(1), Instant::from_secs(1), &mut r);
        assert_eq!(a1, a2);
        assert_eq!(mac.station_count(), 1);
    }

    #[test]
    fn capacity_refusal() {
        let mut cfg = ApConfig::open(1, "open", Channel::CH6);
        cfg.capacity = 1;
        let mut mac = ApMac::new(cfg);
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        let req = Frame::assoc_request(sta(2), mac.bssid(), Ssid::new("open"));
        let acts = mac.on_frame(&req, Instant::ZERO, &mut r);
        match &acts[0] {
            ApAction::Send { frame, .. } => match &frame.body {
                FrameBody::AssocResp(resp) => assert_eq!(resp.status, STATUS_AP_FULL),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(mac.counters().assocs_refused, 1);
    }

    #[test]
    fn psm_buffers_and_null_wakeup_flushes_in_order() {
        let mut mac = ap();
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        // Enter PSM.
        let psm = Frame::psm_enter(sta(1), mac.bssid());
        assert!(mac.on_frame(&psm, Instant::ZERO, &mut r).is_empty());
        assert!(mac.in_psm(sta(1)));
        // Downlink traffic buffers.
        for i in 0..3u8 {
            let acts = mac.deliver_downlink(sta(1), Bytes::from(vec![i]), Instant::ZERO);
            assert!(acts.is_empty());
        }
        assert_eq!(mac.buffered_for(sta(1)), 3);
        assert_eq!(mac.counters().psm_buffered, 3);
        // Wake up: everything flushes, in order, with more_data set on all
        // but the last.
        let wake = Frame::psm_exit(sta(1), mac.bssid());
        let acts = mac.on_frame(&wake, Instant::ZERO, &mut r);
        assert_eq!(acts.len(), 3);
        for (i, act) in acts.iter().enumerate() {
            match act {
                ApAction::Send { delay, frame } => {
                    assert_eq!(*delay, Duration::ZERO);
                    assert_eq!(frame.more_data, i < 2);
                    assert_eq!(frame.body, FrameBody::Data(Bytes::from(vec![i as u8])));
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(mac.buffered_for(sta(1)), 0);
    }

    #[test]
    fn ps_poll_releases_one_frame_at_a_time() {
        let mut mac = ap();
        let mut r = rng();
        let aid = associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        mac.on_frame(
            &Frame::psm_enter(sta(1), mac.bssid()),
            Instant::ZERO,
            &mut r,
        );
        mac.deliver_downlink(sta(1), Bytes::from_static(b"a"), Instant::ZERO);
        mac.deliver_downlink(sta(1), Bytes::from_static(b"b"), Instant::ZERO);
        let poll = Frame::ps_poll(sta(1), mac.bssid(), aid);
        let acts = mac.on_frame(&poll, Instant::ZERO, &mut r);
        match &acts[0] {
            ApAction::Send { frame, .. } => {
                assert!(frame.more_data);
                assert_eq!(frame.body, FrameBody::Data(Bytes::from_static(b"a")));
            }
            other => panic!("{other:?}"),
        }
        let acts = mac.on_frame(&poll, Instant::ZERO, &mut r);
        match &acts[0] {
            ApAction::Send { frame, .. } => assert!(!frame.more_data),
            other => panic!("{other:?}"),
        }
        // Empty buffer: poll yields nothing.
        assert!(mac.on_frame(&poll, Instant::ZERO, &mut r).is_empty());
    }

    #[test]
    fn ps_poll_with_wrong_aid_ignored() {
        let mut mac = ap();
        let mut r = rng();
        let aid = associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        mac.on_frame(
            &Frame::psm_enter(sta(1), mac.bssid()),
            Instant::ZERO,
            &mut r,
        );
        mac.deliver_downlink(sta(1), Bytes::from_static(b"x"), Instant::ZERO);
        let poll = Frame::ps_poll(sta(1), mac.bssid(), aid + 1);
        assert!(mac.on_frame(&poll, Instant::ZERO, &mut r).is_empty());
        assert_eq!(mac.buffered_for(sta(1)), 1);
    }

    #[test]
    fn psm_buffer_overflow_drops_tail() {
        let mut cfg = ApConfig::open(1, "open", Channel::CH6);
        cfg.psm_buffer_frames = 2;
        let mut mac = ApMac::new(cfg);
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        mac.on_frame(
            &Frame::psm_enter(sta(1), mac.bssid()),
            Instant::ZERO,
            &mut r,
        );
        for i in 0..5u8 {
            mac.deliver_downlink(sta(1), Bytes::from(vec![i]), Instant::ZERO);
        }
        assert_eq!(mac.buffered_for(sta(1)), 2);
        assert_eq!(mac.counters().psm_dropped, 3);
    }

    #[test]
    fn downlink_for_unassociated_station_dropped_and_counted() {
        let mut mac = ap();
        let acts = mac.deliver_downlink(sta(9), Bytes::from_static(b"z"), Instant::ZERO);
        assert!(acts.is_empty());
        assert_eq!(mac.counters().unassociated_drops, 1);
    }

    #[test]
    fn uplink_data_forwarded_only_when_associated() {
        let mut mac = ap();
        let mut r = rng();
        let data = Frame::data_to_ap(sta(1), mac.bssid(), Bytes::from_static(b"up"));
        assert!(mac.on_frame(&data, Instant::ZERO, &mut r).is_empty());
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        let acts = mac.on_frame(&data, Instant::ZERO, &mut r);
        assert_eq!(
            acts,
            vec![ApAction::ToUplink {
                from: sta(1),
                payload: Bytes::from_static(b"up")
            }]
        );
    }

    #[test]
    fn disassociation_removes_station() {
        let mut mac = ap();
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        let dis = Frame::new(
            mac.bssid(),
            sta(1),
            mac.bssid(),
            FrameBody::Disassoc {
                reason: crate::frame::REASON_LEAVING,
            },
        );
        mac.on_frame(&dis, Instant::ZERO, &mut r);
        assert!(!mac.is_associated(sta(1)));
    }

    #[test]
    fn idle_expiry_deauthenticates() {
        let mut mac = ap();
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        // Just under the timeout: kept.
        let acts = mac.expire_idle(Instant::from_secs(59));
        assert!(acts.is_empty());
        // Past it: expired with a deauth frame.
        let acts = mac.expire_idle(Instant::from_secs(61));
        assert_eq!(acts.len(), 1);
        assert!(!mac.is_associated(sta(1)));
    }

    #[test]
    fn activity_refreshes_idle_timer() {
        let mut mac = ap();
        let mut r = rng();
        associate(&mut mac, sta(1), Instant::ZERO, &mut r);
        // Touch at t = 50 s…
        let data = Frame::data_to_ap(sta(1), mac.bssid(), Bytes::from_static(b"k"));
        mac.on_frame(&data, Instant::from_secs(50), &mut r);
        // …so t = 100 s (< 50 + 60) does not expire it.
        assert!(mac.expire_idle(Instant::from_secs(100)).is_empty());
        assert!(mac.is_associated(sta(1)));
    }

    #[test]
    fn beacon_carries_identity() {
        let mut mac = ap();
        let f = mac.beacon(Instant::from_millis(500));
        match &f.body {
            FrameBody::Beacon(b) => {
                assert_eq!(b.channel, Channel::CH6);
                assert_eq!(b.ssid, Ssid::new("open"));
                assert_eq!(b.timestamp_us, 500_000);
            }
            other => panic!("{other:?}"),
        }
        assert!(f.addr1.is_broadcast());
    }
}
