//! 2.4 GHz 802.11 channels.
//!
//! The paper's environment is 802.11b/g in the 2.4 GHz ISM band. Almost all
//! APs it observed sit on the three non-overlapping channels 1, 6 and 11
//! (Amherst: 28 %, 33 %, 34 %; Boston/Cabernet: 83 % on the three, 39 % on
//! channel 6), and Spider is configured to schedule among exactly those.

use core::fmt;

/// A 2.4 GHz channel number, 1–14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(u8);

/// The three orthogonal 2.4 GHz channels Spider schedules among.
pub const ORTHOGONAL: [Channel; 3] = [Channel(1), Channel(6), Channel(11)];

impl Channel {
    /// Channel 1 (2412 MHz).
    pub const CH1: Channel = Channel(1);
    /// Channel 6 (2437 MHz).
    pub const CH6: Channel = Channel(6);
    /// Channel 11 (2462 MHz).
    pub const CH11: Channel = Channel(11);

    /// Construct a channel; returns `None` outside 1–14.
    pub const fn new(num: u8) -> Option<Channel> {
        if num >= 1 && num <= 14 {
            Some(Channel(num))
        } else {
            None
        }
    }

    /// Construct a channel, panicking outside 1–14.
    pub fn from_number(num: u8) -> Channel {
        // simlint: allow(panic-path) — documented panicking constructor; the fallible twin is Channel::new
        Channel::new(num).unwrap_or_else(|| panic!("invalid 2.4 GHz channel {num}"))
    }

    /// The channel number, 1–14.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Dense 0-based index (`number() - 1`), always `< Channel::COUNT`.
    /// Lets per-channel state live in fixed arrays instead of maps.
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Number of distinct 2.4 GHz channels (valid `index()` values).
    pub const COUNT: usize = 14;

    /// Centre frequency in MHz (channel 14 is the Japanese special case).
    pub const fn centre_mhz(self) -> u32 {
        if self.0 == 14 {
            2484
        } else {
            2407 + 5 * self.0 as u32
        }
    }

    /// True if two channels are far enough apart (≥ 5 channel numbers) that
    /// their 22 MHz masks do not overlap.
    pub fn is_orthogonal_to(self, other: Channel) -> bool {
        self.0.abs_diff(other.0) >= 5
    }

    /// Fractional spectral overlap with another channel in `[0, 1]`:
    /// 1 for the same channel, 0 for orthogonal channels, linear in between.
    /// Used by the PHY to model adjacent-channel interference.
    pub fn overlap(self, other: Channel) -> f64 {
        let diff = self.0.abs_diff(other.0) as f64;
        (1.0 - diff / 5.0).max(0.0)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_bounds() {
        assert!(Channel::new(0).is_none());
        assert!(Channel::new(1).is_some());
        assert!(Channel::new(14).is_some());
        assert!(Channel::new(15).is_none());
    }

    #[test]
    fn index_is_dense_and_bounded() {
        assert_eq!(Channel::CH1.index(), 0);
        assert_eq!(Channel::from_number(14).index(), Channel::COUNT - 1);
        for n in 1..=14u8 {
            assert!(Channel::from_number(n).index() < Channel::COUNT);
        }
    }

    #[test]
    fn frequencies() {
        assert_eq!(Channel::CH1.centre_mhz(), 2412);
        assert_eq!(Channel::CH6.centre_mhz(), 2437);
        assert_eq!(Channel::CH11.centre_mhz(), 2462);
        assert_eq!(Channel::from_number(14).centre_mhz(), 2484);
    }

    #[test]
    fn orthogonality_of_1_6_11() {
        for (i, a) in ORTHOGONAL.iter().enumerate() {
            for (j, b) in ORTHOGONAL.iter().enumerate() {
                assert_eq!(a.is_orthogonal_to(*b), i != j);
            }
        }
    }

    #[test]
    fn overlap_endpoints() {
        assert_eq!(Channel::CH1.overlap(Channel::CH1), 1.0);
        assert_eq!(Channel::CH1.overlap(Channel::CH6), 0.0);
        let near = Channel::from_number(2);
        let o = Channel::CH1.overlap(near);
        assert!(o > 0.0 && o < 1.0);
        assert_eq!(Channel::CH1.overlap(near), near.overlap(Channel::CH1));
    }

    #[test]
    #[should_panic(expected = "invalid 2.4 GHz channel")]
    fn from_number_panics_out_of_range() {
        Channel::from_number(0);
    }
}
