//! Cross-process determinism: the content-addressed campaign cache assumes
//! that the same `WorldConfig` produces byte-identical `RunRecord` JSON in
//! *any* process, not just on repeat calls inside one. Per-process state —
//! hash-map iteration order (`RandomState` reseeds per process), ASLR,
//! environment contents — must not leak into results. This test re-executes
//! itself twice as fresh processes (with deliberately different irrelevant
//! environments) and compares the emitted records byte for byte.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use mobility::deployment::ApSite;
use mobility::geometry::Point;
use mobility::route::{Route, Vehicle};
use sim_engine::time::{Duration, Instant};
use spider_core::builder::WorldBuilder;
use spider_core::config::SpiderConfig;
use spider_core::report::RunRecord;
use wifi_mac::channel::Channel;

/// Child mode: when set, run the scenario, write the record here, exit.
const EMIT_ENV: &str = "SPIDER_DETERMINISM_EMIT";
/// Irrelevant environment noise; must not affect the record.
const PROBE_ENV: &str = "SPIDER_ORDER_PROBE";

/// A drive past six APs across three channels — enough to exercise the
/// scan table, join history, DHCP lease map, AP station tables, and the
/// per-AP medium map, i.e. every map the determinism policy ordered.
fn record_json() -> String {
    let channels = [Channel::CH1, Channel::CH6, Channel::CH11];
    let sites: Vec<ApSite> = (0..6u32)
        .map(|i| ApSite {
            id: i + 1,
            position: Point::new(60.0 * i as f64, 12.0),
            channel: channels[(i as usize) % channels.len()],
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(400),
        })
        .collect();
    let route = Route::straight(Point::new(0.0, 0.0), Point::new(360.0, 0.0));
    let result = WorldBuilder::new(0xC0FFEE)
        .sites(sites)
        .vehicle(Vehicle::new(route, 12.0, Instant::ZERO))
        .driver(SpiderConfig::multi_channel_multi_ap(Duration::from_millis(
            100,
        )))
        .duration(Duration::from_secs(30))
        .run();
    RunRecord::to_json(&result).expect("simulator produced a non-finite field")
}

#[test]
fn cross_process_runs_are_byte_identical() {
    if let Ok(path) = std::env::var(EMIT_ENV) {
        // Child: emit and stop — the assertions live in the parent.
        fs::write(&path, record_json()).expect("child writes its record");
        return;
    }

    let dir = std::env::temp_dir().join(format!("spider-determinism-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    let exe = std::env::current_exe().expect("test binary path");

    let emit = |name: &str, probe: &str| -> PathBuf {
        let out = dir.join(format!("{name}.json"));
        let status = Command::new(&exe)
            .arg("cross_process_runs_are_byte_identical")
            .arg("--exact")
            .env(EMIT_ENV, &out)
            // Distinct irrelevant environments: a process whose results
            // depend on env contents (e.g. via env-seeded hashing) fails.
            .env(PROBE_ENV, probe)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child run '{name}' failed");
        out
    };

    let first = emit("first", "aaaaaaaa");
    let second = emit("second", "zzzz-completely-different");
    let a = fs::read(&first).expect("first record");
    let b = fs::read(&second).expect("second record");
    assert!(!a.is_empty(), "child emitted an empty record");
    assert_eq!(
        a, b,
        "two fresh processes produced different RunRecord JSON for the \
         same seed — per-process state is leaking into the simulation"
    );

    // And the record round-trips, so the cache can reconstruct it.
    let text = String::from_utf8(a).expect("record is UTF-8");
    RunRecord::from_json(&text).expect("record parses back");
    fs::remove_dir_all(&dir).ok();
}
