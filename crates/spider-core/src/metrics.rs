//! Evaluation metrics (§4.3's four key metrics plus the join diagnostics
//! of §4.5–4.6).
//!
//! * **Average throughput** — bytes to the sink per unit time across the
//!   whole experiment.
//! * **Average connectivity** — percentage of time a non-zero amount of
//!   data was transferred. Binned at 1 s like the paper's notion of "time
//!   with transfer".
//! * **Connection / disruption lengths** — maximal runs of connected /
//!   disconnected bins (Figs. 10a, 10b, 13, 14).
//! * **Instantaneous bandwidth** — bytes per connected second (Fig. 10c).
//! * Join bookkeeping: association times (Fig. 5), full join times
//!   (Figs. 6, 11, 12), DHCP failure counts (Table 3).

use sim_engine::stats::Samples;
use sim_engine::time::{Duration, Instant};

/// The bin width used to decide "was there connectivity this second".
const BIN: Duration = Duration::from_secs(1);

/// Collects per-run measurements; see module docs.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Bytes delivered per 1-second bin.
    bins: Vec<u64>,
    total_bytes: u64,
    /// Association (link-layer only) completion times.
    pub assoc_times: Samples,
    /// Full join (association + DHCP) completion times.
    pub join_times: Samples,
    /// Channel switch latencies (Table 1).
    pub switch_latencies: Samples,
    /// DHCP acquisition attempts started.
    pub dhcp_attempts: u64,
    /// DHCP acquisitions that failed.
    pub dhcp_failures: u64,
    /// Link-layer association attempts started.
    pub assoc_attempts: u64,
    /// Link-layer associations that failed.
    pub assoc_failures: u64,
    /// Peak simultaneous associations (AP-density diagnostics, §4.4).
    pub max_concurrent_aps: usize,
    /// Time-weighted per-association-count seconds (index = #APs).
    pub concurrency_seconds: Vec<f64>,
    last_concurrency_change: Instant,
    current_concurrency: usize,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh collector.
    pub fn new() -> Metrics {
        Metrics {
            bins: Vec::new(),
            total_bytes: 0,
            assoc_times: Samples::new(),
            join_times: Samples::new(),
            switch_latencies: Samples::new(),
            dhcp_attempts: 0,
            dhcp_failures: 0,
            assoc_attempts: 0,
            assoc_failures: 0,
            max_concurrent_aps: 0,
            concurrency_seconds: vec![0.0],
            last_concurrency_change: Instant::ZERO,
            current_concurrency: 0,
        }
    }

    /// Record `bytes` delivered to the sink at `now`.
    pub fn record_bytes(&mut self, now: Instant, bytes: u64) {
        let bin = (now.as_nanos() / BIN.as_nanos()) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += bytes;
        self.total_bytes += bytes;
    }

    /// Record a change in the number of concurrent associations.
    pub fn record_concurrency(&mut self, now: Instant, count: usize) {
        let elapsed = now
            .saturating_since(self.last_concurrency_change)
            .as_secs_f64();
        if self.concurrency_seconds.len() <= self.current_concurrency {
            self.concurrency_seconds
                .resize(self.current_concurrency + 1, 0.0);
        }
        self.concurrency_seconds[self.current_concurrency] += elapsed;
        self.last_concurrency_change = now;
        self.current_concurrency = count;
        self.max_concurrent_aps = self.max_concurrent_aps.max(count);
    }

    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average throughput over `duration`, bytes/s.
    pub fn avg_throughput_bps(&self, duration: Duration) -> f64 {
        if duration.is_zero() {
            return 0.0;
        }
        self.total_bytes as f64 / duration.as_secs_f64()
    }

    fn bins_over(&self, duration: Duration) -> usize {
        (duration.as_nanos() / BIN.as_nanos()) as usize
    }

    /// Fraction of 1-second bins with non-zero transfer over `duration`.
    pub fn connectivity(&self, duration: Duration) -> f64 {
        let n = self.bins_over(duration).max(1);
        let connected = self.bins.iter().take(n).filter(|&&b| b > 0).count();
        connected as f64 / n as f64
    }

    /// Lengths of maximal connected runs, seconds (Fig. 10a / 13).
    pub fn connection_durations(&self, duration: Duration) -> Samples {
        self.run_lengths(duration, true)
    }

    /// Lengths of maximal disconnected runs, seconds (Fig. 10b / 14).
    pub fn disruption_durations(&self, duration: Duration) -> Samples {
        self.run_lengths(duration, false)
    }

    fn run_lengths(&self, duration: Duration, connected: bool) -> Samples {
        let n = self.bins_over(duration);
        let mut out = Samples::new();
        let mut run = 0u64;
        for i in 0..n {
            let has = self.bins.get(i).copied().unwrap_or(0) > 0;
            if has == connected {
                run += 1;
            } else if run > 0 {
                out.record(run as f64);
                run = 0;
            }
        }
        if run > 0 {
            out.record(run as f64);
        }
        out
    }

    /// Bytes per *connected* second (Fig. 10c's instantaneous bandwidth).
    pub fn instantaneous_bandwidth(&self, duration: Duration) -> Samples {
        let n = self.bins_over(duration);
        let mut out = Samples::new();
        for i in 0..n {
            let b = self.bins.get(i).copied().unwrap_or(0);
            if b > 0 {
                out.record(b as f64);
            }
        }
        out
    }

    /// DHCP failure fraction (Table 3).
    pub fn dhcp_failure_rate(&self) -> f64 {
        if self.dhcp_attempts == 0 {
            0.0
        } else {
            self.dhcp_failures as f64 / self.dhcp_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_connectivity() {
        let mut m = Metrics::new();
        // 3 connected seconds out of 10, 3000 bytes total.
        m.record_bytes(Instant::from_millis(500), 1000);
        m.record_bytes(Instant::from_millis(1_200), 1000);
        m.record_bytes(Instant::from_millis(5_900), 1000);
        let d = Duration::from_secs(10);
        assert_eq!(m.total_bytes(), 3000);
        assert!((m.avg_throughput_bps(d) - 300.0).abs() < 1e-9);
        assert!((m.connectivity(d) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn run_length_extraction() {
        let mut m = Metrics::new();
        // Connected bins: 0,1 then 4 then 8,9 — disruptions 2..=3, 5..=7.
        for s in [0u64, 1, 4, 8, 9] {
            m.record_bytes(Instant::from_millis(s * 1000 + 10), 10);
        }
        let d = Duration::from_secs(10);
        let mut conns = m.connection_durations(d);
        let mut gaps = m.disruption_durations(d);
        let mut cv: Vec<f64> = conns.values().to_vec();
        cv.sort_by(f64::total_cmp);
        assert_eq!(cv, vec![1.0, 2.0, 2.0]);
        let mut gv: Vec<f64> = gaps.values().to_vec();
        gv.sort_by(f64::total_cmp);
        assert_eq!(gv, vec![2.0, 3.0]);
        // Quantiles work over them.
        assert!(conns.median() >= 1.0);
        assert!(gaps.median() >= 2.0);
    }

    #[test]
    fn instantaneous_bandwidth_ignores_dead_air() {
        let mut m = Metrics::new();
        m.record_bytes(Instant::from_millis(100), 5000);
        m.record_bytes(Instant::from_millis(200), 5000);
        m.record_bytes(Instant::from_millis(3_500), 1000);
        let mut s = m.instantaneous_bandwidth(Duration::from_secs(5));
        assert_eq!(s.count(), 2); // bins 0 and 3
        assert_eq!(s.quantile(1.0), 10_000.0);
    }

    #[test]
    fn dhcp_failure_rate_math() {
        let mut m = Metrics::new();
        assert_eq!(m.dhcp_failure_rate(), 0.0);
        m.dhcp_attempts = 10;
        m.dhcp_failures = 3;
        assert!((m.dhcp_failure_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn concurrency_accounting() {
        let mut m = Metrics::new();
        m.record_concurrency(Instant::from_secs(0), 1);
        m.record_concurrency(Instant::from_secs(4), 3);
        m.record_concurrency(Instant::from_secs(6), 0);
        assert_eq!(m.max_concurrent_aps, 3);
        // 1 AP for 4 s, 3 APs for 2 s.
        assert!((m.concurrency_seconds[1] - 4.0).abs() < 1e-9);
        assert!((m.concurrency_seconds[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        let d = Duration::from_secs(60);
        assert_eq!(m.avg_throughput_bps(d), 0.0);
        assert_eq!(m.connectivity(d), 0.0);
        assert_eq!(m.connection_durations(d).count(), 0);
        // Fully disconnected: one disruption of the entire horizon.
        let mut gaps = m.disruption_durations(d);
        assert_eq!(gaps.count(), 1);
        assert_eq!(gaps.quantile(1.0), 60.0);
    }
}
