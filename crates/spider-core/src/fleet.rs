//! Client fleets: many concurrent Spider clients in one world.
//!
//! The simulator historically ran exactly one client against a deployment.
//! A fleet world runs `1 + fleet.len()` clients — each with its own route,
//! radio, virtual interfaces, DHCP/TCP state, and join history — against
//! the *same* AP deployment, event queue, and shared medium, so contention
//! between clients is **endogenous**: a second client camped on the same
//! AP consumes real backhaul tokens, real airtime, and real DHCP server
//! draws, rather than being modeled by an exogenous load factor.
//!
//! # Determinism contract
//!
//! Fleet worlds keep the repo's byte-identity guarantees by *stream*
//! isolation, not outcome isolation:
//!
//! - The world master RNG forks streams 1–4 exactly as the single-client
//!   world always has (PHY, AP, radio, misc); beacon-stagger draws happen
//!   before client 0 takes ownership of the three client-side streams.
//!   A fleet of size one is therefore byte-identical to the historical
//!   single-client world.
//! - Client `k ≥ 1` forks streams `(5 + 3(k−1), 6 + 3(k−1), 7 + 3(k−1))`
//!   for PHY/radio/misc. Stream ids depend only on the client index, so
//!   adding client `k+1` never perturbs the private streams of clients
//!   `1..k`.
//! - `rng_ap` stays world-level and draws in event order. Two clients
//!   racing the same DHCP server *do* couple through it — that coupling
//!   is the endogenous contention the subsystem exists to model. The
//!   contract is per-client RNG *stream* isolation, not event-outcome
//!   isolation.
//!
//! Given the same `WorldConfig`, a fleet run is byte-identical across
//! process/thread execution modes and worker counts, because each world
//! is still a single-threaded DES with a totally ordered event queue.

use mobility::route::Vehicle;
use sim_engine::time::Duration;
use wifi_mac::addr::MacAddr;

use crate::world::ClientMotion;

/// First locally-administered address unit used for client interfaces.
/// Client 0's iface 0 keeps the historical `MacAddr::local(1_000)`.
pub const IFACE_ADDR_BASE: u32 = 1_000;

/// Address units reserved per client. Interface `i` of client `c` is
/// `MacAddr::local(IFACE_ADDR_BASE + c * CLIENT_ADDR_STRIDE + i)`, so
/// every station address in a fleet is unique as long as
/// `max_ifaces < CLIENT_ADDR_STRIDE` (asserted at world build).
pub const CLIENT_ADDR_STRIDE: u32 = 1_024;

/// The station address of interface `iface` on client `client`.
pub fn station_addr(client: usize, iface: usize) -> MacAddr {
    assert!(
        (iface as u32) < CLIENT_ADDR_STRIDE,
        "iface {iface} exceeds the per-client address stride"
    );
    MacAddr::local(IFACE_ADDR_BASE + client as u32 * CLIENT_ADDR_STRIDE + iface as u32)
}

/// Per-client counters surfaced in `RunResult::per_client` (and from
/// there in the run record's `per_client` object): enough to see how a
/// fleet splits the medium without bloating the byte-identity surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Successful joins (association + DHCP bound).
    pub joins: u64,
    /// Application bytes delivered to this client.
    pub bytes: u64,
    /// Grid-cell crossings of this client (Maintenance-cadence mover
    /// updates that changed its cell).
    pub cell_crossings: u64,
}

/// Build a convoy: `extra` copies of `lead`, each trailing the previous
/// by `headway`. Fixed clients are co-located copies; routed clients
/// depart `k * headway` later along the same route, which is the metro
/// experiment's "platoon of vehicles on the same street" shape.
pub fn convoy(lead: &ClientMotion, extra: usize, headway: Duration) -> Vec<ClientMotion> {
    (1..=extra)
        .map(|k| match lead {
            ClientMotion::Fixed(p) => ClientMotion::Fixed(*p),
            ClientMotion::Route(v) => ClientMotion::Route(trail(v, headway, k)),
        })
        .collect()
}

fn trail(lead: &Vehicle, headway: Duration, k: usize) -> Vehicle {
    let mut v = lead.clone();
    for _ in 0..k {
        v = v.delayed(headway);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::geometry::Point;

    #[test]
    fn station_addrs_are_unique_across_a_fleet() {
        let mut seen = std::collections::BTreeSet::new();
        for client in 0..16 {
            for iface in 0..8 {
                assert!(
                    seen.insert(station_addr(client, iface)),
                    "duplicate address for client {client} iface {iface}"
                );
            }
        }
        // Client 0 keeps the historical addressing.
        assert_eq!(station_addr(0, 0), MacAddr::local(1_000));
        assert_eq!(station_addr(0, 2), MacAddr::local(1_002));
    }

    #[test]
    #[should_panic(expected = "address stride")]
    fn oversized_iface_index_is_rejected() {
        let _ = station_addr(1, CLIENT_ADDR_STRIDE as usize);
    }

    #[test]
    fn convoy_of_zero_is_empty() {
        let lead = ClientMotion::Fixed(Point::new(3.0, 4.0));
        assert!(convoy(&lead, 0, Duration::from_secs(2)).is_empty());
    }

    #[test]
    fn convoy_members_trail_by_multiples_of_the_headway() {
        use mobility::route::{Route, Vehicle};
        use sim_engine::time::Instant;
        let route = Route::new(vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)], false);
        let lead = Vehicle::new(route, 10.0, Instant::ZERO);
        let motions = convoy(
            &ClientMotion::Route(lead.clone()),
            3,
            Duration::from_secs(5),
        );
        assert_eq!(motions.len(), 3);
        for (k, m) in motions.iter().enumerate() {
            let ClientMotion::Route(v) = m else {
                panic!("routed lead must yield routed convoy members");
            };
            let t = Instant::from_secs(60);
            let offset = Duration::from_secs(5 * (k as u64 + 1));
            assert_eq!(v.position_at(t), lead.position_at(t - offset));
        }
        // Fixed leads yield co-located copies.
        let spot = Point::new(7.0, 7.0);
        for m in convoy(&ClientMotion::Fixed(spot), 2, Duration::from_secs(1)) {
            let ClientMotion::Fixed(p) = m else {
                panic!("fixed lead must yield fixed convoy members");
            };
            assert_eq!(p, spot);
        }
    }
}
