//! Spider driver configuration: the four evaluation configurations of §4
//! plus the stock-driver baseline.

use dhcp::DhcpClientConfig;
use sim_engine::time::Duration;
use wifi_mac::channel::Channel;
use wifi_mac::client::JoinConfig;

/// How the physical card's time is scheduled among channels.
#[derive(Debug, Clone)]
pub enum SchedulePolicy {
    /// Park on one channel forever (Spider's best configuration).
    SingleChannel(Channel),
    /// Static round-robin over `(channel, slice)` pairs — the paper's
    /// multi-channel configurations use equal slices over 1/6/11.
    MultiChannel {
        /// The cyclic schedule.
        slices: Vec<(Channel, Duration)>,
    },
    /// Stock-driver behaviour: rotate channels with `dwell` per channel
    /// while unassociated (scanning); once associated, stay on the AP's
    /// channel until the link dies.
    ScanWhenIdle {
        /// Dwell per channel during idle scanning.
        dwell: Duration,
    },
    /// The paper's §4.8 future-work extension, implemented here: dwell on
    /// the channel whose candidate APs currently score best, re-evaluated
    /// every `reconsider`; scan the orthogonal channels briefly while idle
    /// to keep the candidate table fresh.
    AdaptiveChannel {
        /// How often the dwell channel is reconsidered.
        reconsider: Duration,
        /// Dwell per channel while idle-scanning for candidates.
        scan_dwell: Duration,
    },
}

impl SchedulePolicy {
    /// Equal slices of `slice` over the three orthogonal channels.
    pub fn equal_three(slice: Duration) -> SchedulePolicy {
        SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH1, slice),
                (Channel::CH6, slice),
                (Channel::CH11, slice),
            ],
        }
    }

    /// Equal slices over channels 1 and 6 (Table 4's two-channel row).
    pub fn equal_two(slice: Duration) -> SchedulePolicy {
        SchedulePolicy::MultiChannel {
            slices: vec![(Channel::CH1, slice), (Channel::CH6, slice)],
        }
    }

    /// The channels this policy ever visits.
    pub fn channels(&self) -> Vec<Channel> {
        match self {
            SchedulePolicy::SingleChannel(c) => vec![*c],
            SchedulePolicy::MultiChannel { slices } => {
                let mut out: Vec<Channel> = Vec::new();
                for (c, _) in slices {
                    if !out.contains(c) {
                        out.push(*c);
                    }
                }
                out
            }
            SchedulePolicy::ScanWhenIdle { .. } | SchedulePolicy::AdaptiveChannel { .. } => {
                vec![Channel::CH1, Channel::CH6, Channel::CH11]
            }
        }
    }
}

/// How candidate APs are ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Spider's heuristic: best history of successful, fast joins (§3).
    JoinHistory,
    /// Stock behaviour: strongest signal.
    BestRssi,
}

/// Full driver configuration.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Channel schedule.
    pub schedule: SchedulePolicy,
    /// Virtual interfaces available (the paper's driver exposes 7).
    pub max_ifaces: usize,
    /// Associate with at most one AP at a time (configurations 1 and 4).
    pub single_ap: bool,
    /// Link-layer join parameters.
    pub join: JoinConfig,
    /// DHCP client timer policy.
    pub dhcp: DhcpClientConfig,
    /// AP ranking policy.
    pub selection: SelectionPolicy,
    /// Cache DHCP leases per AP and rejoin via INIT-REBOOT.
    pub lease_cache: bool,
    /// How long an AP must stay unheard before its interface is torn down.
    pub ap_loss_timeout: Duration,
    /// How often the driver re-evaluates candidates and starts joins.
    pub evaluate_every: Duration,
    /// Cooldown before re-attempting an AP that just failed a join.
    pub retry_backoff: Duration,
    /// Candidates heard below this signal strength are not worth a join
    /// attempt (the encounter is ending or barely starting).
    pub min_join_rssi_dbm: f64,
    /// Dead time between selecting a candidate and the first handshake
    /// frame. Zero for Spider (its machinery is primed); several seconds
    /// for the stock path, whose full 11-channel scan plus supplicant
    /// state machine is what CarTel measured as a 12–15 s setup cost.
    pub join_setup_delay: Duration,
}

impl SpiderConfig {
    /// Common Spider substrate: 7 interfaces, reduced timers, history
    /// selection, lease cache on.
    fn base() -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::SingleChannel(Channel::CH1),
            max_ifaces: 7,
            single_ap: false,
            join: JoinConfig::reduced(),
            dhcp: DhcpClientConfig::reduced(Duration::from_millis(200)),
            selection: SelectionPolicy::JoinHistory,
            lease_cache: true,
            ap_loss_timeout: Duration::from_secs(3),
            evaluate_every: Duration::from_millis(200),
            retry_backoff: Duration::from_secs(5),
            min_join_rssi_dbm: -85.0,
            join_setup_delay: Duration::ZERO,
        }
    }

    /// Configuration (2) in §4.1: **single channel, multiple APs** — the
    /// throughput winner.
    pub fn single_channel_multi_ap(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::SingleChannel(channel),
            ..Self::base()
        }
    }

    /// Configuration (1): single channel, single AP (Spider mimicking a
    /// stock driver pinned to one channel, but with reduced timers).
    pub fn single_channel_single_ap(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::SingleChannel(channel),
            single_ap: true,
            ..Self::base()
        }
    }

    /// Configuration (3): **multiple channels, multiple APs** — the
    /// connectivity winner. The paper's Table 2 uses a 600 ms period split
    /// equally over channels 1/6/11 (200 ms each).
    pub fn multi_channel_multi_ap(slice: Duration) -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::equal_three(slice),
            ..Self::base()
        }
    }

    /// Configuration (4): multiple channels, single AP.
    pub fn multi_channel_single_ap(slice: Duration) -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::equal_three(slice),
            single_ap: true,
            ..Self::base()
        }
    }

    /// The §4.8 extension: Spider with **adaptive channel selection** — it
    /// dwells on whichever orthogonal channel currently offers the
    /// best-scoring AP candidates instead of a fixed channel.
    pub fn adaptive_channel() -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::AdaptiveChannel {
                reconsider: Duration::from_secs(5),
                scan_dwell: Duration::from_millis(150),
            },
            ..Self::base()
        }
    }

    /// Ablation: Spider without the join-history selection heuristic
    /// (falls back to strongest signal).
    pub fn ablate_history(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            selection: SelectionPolicy::BestRssi,
            ..Self::single_channel_multi_ap(channel)
        }
    }

    /// Ablation: Spider without the DHCP lease cache (every rejoin pays
    /// the full DISCOVER/OFFER/REQUEST/ACK exchange).
    pub fn ablate_lease_cache(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            lease_cache: false,
            ..Self::single_channel_multi_ap(channel)
        }
    }

    /// Ablation: Spider with stock link-layer and DHCP timers (keeps the
    /// multi-AP machinery, loses the reduced timeouts).
    pub fn ablate_reduced_timers(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            join: JoinConfig::default(),
            dhcp: DhcpClientConfig::default(),
            ..Self::single_channel_multi_ap(channel)
        }
    }

    /// Ablation: a single virtual interface (no parallel per-channel
    /// association).
    pub fn ablate_parallel_join(channel: Channel) -> SpiderConfig {
        SpiderConfig {
            max_ifaces: 1,
            ..Self::single_channel_multi_ap(channel)
        }
    }

    /// The unmodified-MadWiFi comparison point: one interface, best-RSSI
    /// selection, stock 1 s link-layer and 3 s/60 s DHCP timers, no lease
    /// cache, channel scanning while idle.
    pub fn stock_madwifi() -> SpiderConfig {
        SpiderConfig {
            schedule: SchedulePolicy::ScanWhenIdle {
                dwell: Duration::from_millis(200),
            },
            max_ifaces: 1,
            single_ap: true,
            join: JoinConfig::default(),
            dhcp: DhcpClientConfig::default(),
            selection: SelectionPolicy::BestRssi,
            lease_cache: false,
            // Stock drivers are sticky and slow to react: they hold a dying
            // association for many seconds, and a full scan + supplicant
            // decision cycle takes seconds (CarTel measured ~10 s from AP
            // appearance to connectivity with stock tooling).
            ap_loss_timeout: Duration::from_secs(8),
            evaluate_every: Duration::from_millis(2_500),
            retry_backoff: Duration::from_secs(10),
            min_join_rssi_dbm: -92.0,
            join_setup_delay: Duration::from_secs(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_three_covers_orthogonal_channels() {
        let p = SchedulePolicy::equal_three(Duration::from_millis(200));
        assert_eq!(
            p.channels(),
            vec![Channel::CH1, Channel::CH6, Channel::CH11]
        );
    }

    #[test]
    fn single_channel_policy_reports_one() {
        let p = SchedulePolicy::SingleChannel(Channel::CH6);
        assert_eq!(p.channels(), vec![Channel::CH6]);
    }

    #[test]
    fn paper_configurations_differ_where_expected() {
        let c2 = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        assert!(!c2.single_ap);
        assert_eq!(c2.max_ifaces, 7);

        let c1 = SpiderConfig::single_channel_single_ap(Channel::CH1);
        assert!(c1.single_ap);

        let c3 = SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200));
        assert_eq!(c3.schedule.channels().len(), 3);
        assert!(!c3.single_ap);

        let stock = SpiderConfig::stock_madwifi();
        assert_eq!(stock.max_ifaces, 1);
        assert_eq!(stock.selection, SelectionPolicy::BestRssi);
        assert!(!stock.lease_cache);
        // Stock keeps the 1 s link-layer timer; Spider reduces to 100 ms.
        assert!(stock.join.link_layer_timeout > c2.join.link_layer_timeout);
    }

    #[test]
    fn duplicate_channels_deduplicated_in_channels_list() {
        let p = SchedulePolicy::MultiChannel {
            slices: vec![
                (Channel::CH1, Duration::from_millis(100)),
                (Channel::CH6, Duration::from_millis(100)),
                (Channel::CH1, Duration::from_millis(100)),
            ],
        };
        assert_eq!(p.channels(), vec![Channel::CH1, Channel::CH6]);
    }
}
