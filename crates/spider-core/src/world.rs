//! The full-system simulation: a fleet of clients, many APs, and the
//! Spider driver (or a baseline) in between.
//!
//! This module is the substitute for the paper's outdoor testbed. It wires
//! together every substrate crate under a single deterministic event loop:
//!
//! * **Air interface** — frames pay airtime on a per-channel serialized
//!   medium; delivery is evaluated *at arrival* against the client radio's
//!   tuning (an AP's association or DHCP response that lands while the
//!   radio serves another channel is simply lost — the paper's central
//!   failure mode) and the PHY's distance-dependent loss.
//! * **APs** — `wifi-mac::ApMac` (with honest PSM buffering) plus a
//!   `dhcp::DhcpServer` with per-AP response delays, plus a shaped
//!   backhaul (`workload::SerialLink`) behind which a `tcp_lite`
//!   bulk sender plays the content server.
//! * **Clients** — one or more [`ClientNode`]s (see [`crate::fleet`]),
//!   each a `wifi-mac::Radio` scheduled by the configured
//!   [`SchedulePolicy`], up to seven virtual interfaces each running the
//!   join FSM, DHCP client, and a TCP receiver; opportunistic scanning
//!   feeds the selection heuristic. All clients share the deployment, the
//!   event queue, and the per-channel medium, so contention between them
//!   is **endogenous**: every transmitted frame seizes the same medium,
//!   every association loads the same AP station sets, and each client's
//!   uplink backoff bound scales with how many fleet members share its
//!   grid cell (the occupancy the `analytical::cell` offered-load model
//!   takes as `n`).
//!
//! Protocol discrimination on the data path uses a 1-byte IP-protocol tag
//! (17 = UDP/DHCP, 6 = TCP) prefixed to payloads — the moral equivalent of
//! the IP header's protocol field.
//!
//! Deliberate simplification (see DESIGN.md): management and DHCP frames
//! are single-shot (no MAC ARQ), matching the paper's join model where
//! each lost handshake message costs a protocol timeout; TCP data frames
//! get the standard 802.11 retry budget folded into an expected airtime
//! and residual loss.
//!
//! Debug taps (stderr, env-gated, zero-cost when unset):
//! `SPIDER_DEBUG_TCP` dumps per-second sender state, `SPIDER_DEBUG_RTO`
//! logs every RTO event, `SPIDER_DEBUG_MEDIUM` logs per-second medium
//! backlog, `SPIDER_DEBUG_REBUF` logs failed in-flight rebuffers, and
//! `SPIDER_DEBUG_BH` prints per-AP backhaul drop totals at the end.

use std::cell::Cell;

use dhcp::client::{DhcpAction, DhcpClient, Lease};
use dhcp::message::DhcpMessage;
use dhcp::server::{DhcpServer, DhcpServerConfig};
use geo::{GridIndex, MoverIndex, RankedSet};
use mobility::deployment::ApSite;
use mobility::geometry::Point;
use mobility::route::Vehicle;
use sim_engine::queue::EventQueue;
use sim_engine::rng::Rng;
use sim_engine::runner::{run_until, Handler};
use sim_engine::stats::Samples;
use sim_engine::time::{Duration, Instant};
use sim_engine::wire::{Bytes, Writer};
use tcp_lite::connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction};
use tcp_lite::segment::Segment;
use tcp_lite::TcpConfig;
use wifi_mac::addr::MacAddr;
use wifi_mac::ap::{ApAction, ApConfig, ApMac};
use wifi_mac::channel::Channel;
use wifi_mac::client::{Action as MacAction, ClientMac, JoinConfig};
use wifi_mac::frame::{Frame, FrameBody};
use wifi_mac::phy::PhyConfig;
use wifi_mac::radio::{Radio, RadioConfig};
use workload::downloads::DownloadPlan;
use workload::shaper::SerialLink;

use crate::config::{SchedulePolicy, SpiderConfig};
use crate::fleet::{station_addr, ClientCounters, CLIENT_ADDR_STRIDE};
use crate::history::ApHistory;
use crate::intern::MacIntern;
use crate::metrics::Metrics;
use crate::selection::{select_aps, Candidate};

/// IP protocol numbers used as payload tags.
const PROTO_UDP: u8 = 17;
const PROTO_TCP: u8 = 6;

/// Is the named `SPIDER_DEBUG_*` stderr gate set? The one sanctioned
/// environment read in the simulator: it only decides whether debug
/// lines go to stderr, never feeds simulation state, so RunRecords are
/// byte-identical with the gates on or off (ci.sh proves exactly that
/// by diffing runs under different environments).
fn debug_env(name: &str) -> bool {
    // simlint: allow(env-read) — debug-only stderr gate; never reaches simulation state or RunRecords
    std::env::var(name).is_ok()
}

/// Where the client is over time.
#[derive(Debug, Clone)]
pub enum ClientMotion {
    /// Stationary (the lab micro-benchmarks of §4.2 and Figs. 7–9).
    Fixed(Point),
    /// Driving a route (every outdoor experiment).
    Route(Vehicle),
}

impl ClientMotion {
    fn position(&self, now: Instant) -> Point {
        match self {
            ClientMotion::Fixed(p) => *p,
            ClientMotion::Route(v) => v.position_at(now),
        }
    }
}

/// Everything a run needs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every random draw derives from it.
    pub seed: u64,
    /// PHY model.
    pub phy: PhyConfig,
    /// Radio switch-cost model.
    pub radio: RadioConfig,
    /// The deployed APs.
    pub sites: Vec<ApSite>,
    /// Client mobility.
    pub motion: ClientMotion,
    /// Driver configuration under test.
    pub spider: SpiderConfig,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Experiment length.
    pub duration: Duration,
    /// One-way wired latency between content server and AP.
    pub backhaul_latency: Duration,
    /// Bytes per saturating TCP connection before it completes and is
    /// reopened (bounds per-connection sequence space).
    pub bytes_per_connection: u64,
    /// What the client fetches: saturating bulk (the paper's evaluation
    /// workload) or segmented objects with think time (streaming-style).
    pub plan: DownloadPlan,
    /// Motion of every **additional** client beyond the primary one
    /// described by `motion`. The world runs `1 + fleet.len()` clients;
    /// an empty fleet is byte-identical to the historical single-client
    /// world. See [`crate::fleet`] for the determinism contract.
    pub fleet: Vec<ClientMotion>,
}

impl WorldConfig {
    /// Reasonable defaults around the given sites/motion/driver.
    pub fn new(
        seed: u64,
        sites: Vec<ApSite>,
        motion: ClientMotion,
        spider: SpiderConfig,
        duration: Duration,
    ) -> WorldConfig {
        WorldConfig {
            seed,
            phy: PhyConfig::default(),
            radio: RadioConfig::default(),
            sites,
            motion,
            spider,
            tcp: TcpConfig::default(),
            duration,
            backhaul_latency: Duration::from_millis(20),
            bytes_per_connection: 512 * 1024 * 1024,
            plan: DownloadPlan::Saturating,
            fleet: Vec::new(),
        }
    }
}

/// Aggregated outcome of one run; the raw material for every table/figure.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Experiment length.
    pub duration: Duration,
    /// Bytes delivered to the sink.
    pub total_bytes: u64,
    /// Average throughput, bytes/s.
    pub avg_throughput_bps: f64,
    /// Fraction of seconds with non-zero transfer.
    pub connectivity: f64,
    /// Maximal connected runs, seconds (Fig. 10a).
    pub connection_durations: Samples,
    /// Maximal disconnected runs, seconds (Fig. 10b).
    pub disruption_durations: Samples,
    /// Bytes per connected second (Fig. 10c).
    pub instantaneous_bandwidth: Samples,
    /// Link-layer association times, seconds (Fig. 5).
    pub assoc_times: Samples,
    /// Full join times (assoc + DHCP), seconds (Figs. 6/11/12).
    pub join_times: Samples,
    /// Channel-switch latencies, seconds (Table 1).
    pub switch_latencies: Samples,
    /// DHCP acquisitions started.
    pub dhcp_attempts: u64,
    /// DHCP acquisitions failed (Table 3).
    pub dhcp_failures: u64,
    /// Associations started.
    pub assoc_attempts: u64,
    /// Associations failed.
    pub assoc_failures: u64,
    /// Channel switches performed.
    pub switch_count: u64,
    /// Peak simultaneous associations (§4.4).
    pub max_concurrent_aps: usize,
    /// Seconds spent with exactly `i` concurrent associations.
    pub concurrency_seconds: Vec<f64>,
    /// TCP retransmission timeouts observed across all connections.
    pub tcp_rtos: u64,
    /// Packets dropped at backhaul queue bounds (down + up).
    pub backhaul_drops: u64,
    /// Downlink frames dropped on PSM buffer overflow.
    pub psm_drops: u64,
    /// Downlink frames dropped because the station was not associated.
    pub unassociated_drops: u64,
    /// Data frames dropped at the bounded air transmit queue.
    pub air_drops: u64,
    /// Per-client counters, indexed by client (0 = the primary client,
    /// then `fleet` order). Always has at least one entry.
    pub per_client: Vec<ClientCounters>,
}

impl RunResult {
    /// DHCP failure rate (Table 3).
    pub fn dhcp_failure_rate(&self) -> f64 {
        if self.dhcp_attempts == 0 {
            0.0
        } else {
            self.dhcp_failures as f64 / self.dhcp_attempts as f64
        }
    }

    /// Average throughput in the paper's KB/s units.
    pub fn avg_throughput_kbps(&self) -> f64 {
        self.avg_throughput_bps / 1000.0
    }
}

/// Simulation events. Client-scoped events carry the dense client index;
/// AP- and server-scoped events are unchanged from the single-client
/// world (frames identify their station by MAC address).
#[derive(Debug)]
enum Event {
    /// An AP's periodic beacon timer.
    BeaconTick { ap: usize },
    /// A frame from AP `ap` reaches client `client`'s antenna.
    AirToClient {
        client: usize,
        ap: usize,
        frame: Frame,
    },
    /// A frame from a client reaches AP `ap`.
    AirToAp { ap: usize, frame: Frame },
    /// Link-layer join timer for an interface.
    MacTimer {
        client: usize,
        iface: usize,
        gen: u64,
        token: u64,
    },
    /// DHCP retransmit timer for an interface.
    DhcpTimer {
        client: usize,
        iface: usize,
        gen: u64,
        token: u64,
    },
    /// TCP sender RTO at the content server behind AP `ap`.
    SenderTimer { ap: usize, conn: u64, token: u64 },
    /// A TCP segment from the server arrives at AP `ap`.
    BackhaulToAp { ap: usize, payload: Bytes },
    /// A client TCP segment (ACK) arrives at the server behind AP `ap`.
    BackhaulToServer { ap: usize, payload: Bytes },
    /// The AP's local DHCP server finished processing; deliver the reply
    /// into the AP's downlink path.
    DhcpReplyReady {
        ap: usize,
        station: MacAddr,
        payload: Bytes,
    },
    /// Move client `client` to schedule slice `idx`.
    ScheduleSlice { client: usize, idx: usize },
    /// PSM announcements have drained; begin the hardware retune.
    SwitchBegin { client: usize, target: Channel },
    /// The client's radio finished retuning.
    SwitchDone { client: usize },
    /// Periodic driver evaluation: teardown dead links, start joins.
    Evaluate { client: usize },
    /// Adaptive-channel policy: reconsider which channel to dwell on.
    Reconsider { client: usize },
    /// A segmented download's think time elapsed: open the next object.
    NextObject {
        /// Client whose stream continues.
        client: usize,
        /// Interface whose stream continues.
        iface: usize,
        /// Generation guard.
        gen: u64,
        /// AP behind the stream.
        ap: usize,
    },
    /// A deferred join begins (stock-path scan/supplicant setup elapsed).
    BeginJoin {
        /// Client doing the join.
        client: usize,
        /// Interface reserved for the join.
        iface: usize,
        /// Generation guard.
        gen: u64,
        /// Target AP index.
        ap: usize,
    },
    /// Periodic housekeeping (AP idle expiry, spatial upkeep).
    Maintenance,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IfaceState {
    Idle,
    Associating,
    Acquiring,
    Connected,
}

/// One virtual interface of the client.
struct Iface {
    addr: MacAddr,
    state: IfaceState,
    /// Guards stale timers when the interface is re-purposed.
    gen: u64,
    mac: Option<ClientMac>,
    dhcp: Option<DhcpClient>,
    receiver: Option<BulkReceiver>,
    ap: Option<usize>,
    conn: Option<u64>,
    join_started: Option<Instant>,
}

impl Iface {
    fn new(addr: MacAddr) -> Iface {
        Iface {
            addr,
            state: IfaceState::Idle,
            gen: 0,
            mac: None,
            dhcp: None,
            receiver: None,
            ap: None,
            conn: None,
            join_started: None,
        }
    }

    fn reset(&mut self) {
        self.state = IfaceState::Idle;
        self.gen += 1;
        self.mac = None;
        self.dhcp = None;
        self.receiver = None;
        self.ap = None;
        self.conn = None;
        self.join_started = None;
    }
}

/// One AP node: MAC + DHCP server + backhaul + content server.
struct ApNode {
    site: ApSite,
    mac: ApMac,
    dhcp: DhcpServer,
    /// Server → AP pipe (the shaped backhaul).
    downlink: SerialLink,
    /// AP → server pipe for ACKs.
    uplink: SerialLink,
    /// Live content-server connections, sorted by connection id (ids are
    /// minted monotonically, so pushes keep the order). A handful at most
    /// per AP, so a linear scan beats an ordered map on the hot path.
    senders: Vec<(u64, BulkSender)>,
}

impl ApNode {
    fn sender_mut(&mut self, conn: u64) -> Option<&mut BulkSender> {
        self.senders
            .iter_mut()
            .find(|(c, _)| *c == conn)
            .map(|(_, s)| s)
    }

    fn sender(&self, conn: u64) -> Option<&BulkSender> {
        self.senders
            .iter()
            .find(|(c, _)| *c == conn)
            .map(|(_, s)| s)
    }

    fn remove_sender(&mut self, conn: u64) {
        // `retain` keeps the remaining connections in id order.
        self.senders.retain(|(c, _)| *c != conn);
    }
}

/// How long an unrefreshed scan entry stays in the heard set. Must
/// exceed every consumer's freshness window (`select_aps`: 2 s,
/// `reconsider`: 3 s) for the heard-set walk to be output-identical to
/// a full scan-table sweep.
const HEARD_TTL: Duration = Duration::from_secs(5);

/// One client of the fleet: motion, radio, virtual interfaces, join
/// history, scan state, and private RNG streams. Everything that was
/// world-global in the single-client simulator and is logically *per
/// station* lives here; the shared medium, AP nodes, and metrics stay on
/// [`World`].
struct ClientNode {
    motion: ClientMotion,
    radio: Radio,
    ifaces: Vec<Iface>,
    /// Scan candidates, indexed by AP id (dense; `None` = never heard).
    /// MacAddr-ordered iteration goes through `heard` (see below).
    scan: Vec<Option<Candidate>>,
    /// The **heard set**: AP slots with a recorded scan entry, iterated
    /// in MacAddr-rank order. Candidate collection walks this instead of
    /// the full `bssids.iter_sorted()` table — O(heard), not O(APs) —
    /// and stays byte-identical because `select_aps` (2 s freshness) and
    /// `reconsider`'s scoring (3 s freshness) both filter before
    /// ordering/summing, while entries are pruned here only after 5 s.
    heard: RankedSet,
    history: ApHistory,
    /// Spider's per-channel transmit queues (§3): frames bound for an
    /// off-channel AP wait here and flush when the radio arrives.
    /// Indexed by [`Channel::index`]; buffers are reused across swaps.
    tx_queues: [Vec<(Instant, usize, Frame)>; Channel::COUNT],
    /// Spare queue buffer swapped against `tx_queues` on channel switch so
    /// steady-state flushes never allocate.
    tx_spare: Vec<(Instant, usize, Frame)>,
    /// Exact-key one-entry caches for the pure per-frame math. Keys are
    /// the full bit patterns of the inputs, so a hit returns the *same*
    /// f64 the recomputation would — determinism-safe by construction.
    /// They earn their keep because one delivered frame touches the same
    /// `(distance, len)` several times in a single event (send airtime +
    /// delivery probability, then the ACK it triggers at the same `now`).
    pos_cache: Cell<Option<(Instant, Point)>>,
    fep_cache: Cell<Option<(u64, u32, f64)>>,
    rssi_cache: Cell<Option<(u64, f64)>>,
    /// Private RNG streams, forked from the master with client-stable
    /// stream ids (see [`crate::fleet`]): PHY delivery draws, radio
    /// switch jitter, and misc draws (DHCP xids, TCP ISNs, object sizes).
    rng_phy: Rng,
    rng_radio: Rng,
    rng_misc: Rng,
    /// Stock-driver idle scan rotation index.
    scan_channel_idx: usize,
    /// Stock DHCP clients go idle after a failed acquisition ("idle for 60
    /// seconds if it fails"); no joins start before this instant.
    dhcp_idle_until: Instant,
    drops_radio_busy: u64,
    /// Fleet members sharing this client's grid cell (self included), as
    /// of the last Maintenance tick. Scales the uplink contention bound:
    /// a fuller cell means a longer expected wait to win the medium.
    /// Always 1 in a single-client world.
    cell_occupancy: u32,
    /// Per-client joins/bytes/cell-crossings, reported in
    /// [`RunResult::per_client`].
    counters: ClientCounters,
    /// High-water mark of APs inside the 400 m hearing disc (1 Hz
    /// samples via the grid). Diagnostic only — never in `RunRecord`.
    peak_inrange_aps: u32,
}

struct World {
    cfg: WorldConfig,
    aps: Vec<ApNode>,
    /// BSSID → AP index, interned at build time; also drives every
    /// MacAddr-ordered iteration over per-AP state (see [`MacIntern`]).
    bssids: MacIntern,
    /// The fleet, indexed densely: client 0 is `cfg.motion`, clients
    /// 1.. are `cfg.fleet` in order.
    clients: Vec<ClientNode>,
    /// Station address → (client, iface), sorted by address for binary
    /// search: the downlink path resolves `addr1` to the owning client.
    stations: Vec<(MacAddr, u32, u32)>,
    /// Spatial grid over the deployment's AP positions (dense AP slots).
    /// Range queries (`count_in_disc`) replace linear scans over `aps`.
    grid: GridIndex,
    /// Cell membership of every moving client (mover slot = client
    /// index), updated incrementally at Maintenance cadence. Feeds each
    /// client's `cell_occupancy`.
    mover_cells: MoverIndex,
    /// Fleet-wide metrics, fed in event order. With one client this is
    /// exactly the historical per-client metrics object; with N clients
    /// throughput/connectivity/concurrency are fleet aggregates and
    /// [`RunResult::per_client`] carries the per-client split.
    metrics: Metrics,
    /// Per-channel medium occupancy (next free instant), indexed by
    /// [`Channel::index`]. `Instant::ZERO` means the channel was never
    /// seized — the same default the old map's `or_insert` supplied.
    /// Shared by every client and AP: this is where fleet contention
    /// becomes endogenous.
    medium: [Instant; Channel::COUNT],
    /// Reusable encode buffer for the payload-wrapping hot path.
    scratch: Writer,
    /// Reusable per-event action buffers: the hot handlers `mem::take`
    /// one, let the protocol layer push into it, drain it, and put it
    /// back — steady state does zero action-Vec allocations per event.
    ap_actions_scratch: Vec<ApAction>,
    sender_actions_scratch: Vec<SenderAction>,
    receiver_actions_scratch: Vec<ReceiverAction>,
    /// AP-side draws (DHCP server delays), in event order — shared
    /// infrastructure, deliberately *not* per client.
    rng_ap: Rng,
    next_conn: u64,
    tcp_rtos: u64,
    air_drops: u64,
    dbg_down_airtime: Duration,
    dbg_up_airtime: Duration,
    dbg_down_frames: u64,
    dbg_up_frames: u64,
}

impl World {
    fn new(cfg: WorldConfig) -> (World, EventQueue<Event>) {
        let mut master = Rng::new(cfg.seed);
        let rng_phy = master.fork(1);
        let rng_ap = master.fork(2);
        let rng_radio = master.fork(3);
        let mut rng_misc = master.fork(4);

        let aps: Vec<ApNode> = cfg
            .sites
            .iter()
            .map(|site| {
                let ssid = format!("open-{}", site.id);
                let ap_cfg = ApConfig::open(site.id, &ssid, site.channel);
                let dhcp_cfg =
                    DhcpServerConfig::for_ap(site.id, site.dhcp_delay_min, site.dhcp_delay_max);
                ApNode {
                    site: site.clone(),
                    mac: ApMac::new(ap_cfg),
                    dhcp: DhcpServer::new(dhcp_cfg),
                    downlink: SerialLink::new(site.backhaul_bps, cfg.backhaul_latency),
                    uplink: SerialLink::new(site.backhaul_bps, cfg.backhaul_latency),
                    senders: Vec::new(),
                }
            })
            .collect();
        let bssids = MacIntern::build(aps.iter().map(|a| a.mac.bssid()));

        let initial_channel = match &cfg.spider.schedule {
            SchedulePolicy::SingleChannel(c) => *c,
            SchedulePolicy::MultiChannel { slices } => slices[0].0,
            SchedulePolicy::ScanWhenIdle { .. } => Channel::CH1,
            SchedulePolicy::AdaptiveChannel { .. } => Channel::CH1,
        };
        let n_clients = 1 + cfg.fleet.len();
        assert!(
            cfg.spider.max_ifaces < CLIENT_ADDR_STRIDE as usize,
            "iface count must fit the per-client address stride"
        );

        let mut queue = EventQueue::new();
        // Stagger beacons so the channel isn't beacon-synchronized. These
        // draws come from `rng_misc` *before* client 0 takes ownership of
        // the stream, so the fleet refactor leaves them untouched.
        for i in 0..aps.len() {
            let offset = Duration::from_micros(rng_misc.range_u64(0, 102_400));
            queue.push(Instant::ZERO + offset, Event::BeaconTick { ap: i });
        }
        // De-aligned from slice boundaries so periodic evaluation never
        // lands at the instant the radio is about to leave the channel.
        for c in 0..n_clients {
            queue.push(Instant::from_millis(50), Event::Evaluate { client: c });
        }
        queue.push(Instant::from_secs(1), Event::Maintenance);
        if let SchedulePolicy::MultiChannel { slices } = &cfg.spider.schedule {
            assert!(!slices.is_empty(), "empty multi-channel schedule");
            for c in 0..n_clients {
                queue.push(Instant::ZERO, Event::ScheduleSlice { client: c, idx: 0 });
            }
        }
        if let SchedulePolicy::AdaptiveChannel { reconsider, .. } = &cfg.spider.schedule {
            for c in 0..n_clients {
                queue.push(Instant::ZERO + *reconsider, Event::Reconsider { client: c });
            }
        }

        // Cell edge 200 m: a 400 m hearing disc touches at most a 5×5
        // block of cells, and a vehicular client crosses a cell boundary
        // every ten-odd seconds, so incremental mover updates are rare.
        const CELL_M: f64 = 200.0;
        let grid = GridIndex::build(
            &aps.iter().map(|a| a.site.position).collect::<Vec<_>>(),
            CELL_M,
        );
        let mover_cells = MoverIndex::new(CELL_M, n_clients);

        let make_client =
            |motion: ClientMotion, c: usize, phy: Rng, radio: Rng, misc: Rng| ClientNode {
                motion,
                radio: Radio::new(cfg.radio.clone(), initial_channel),
                ifaces: (0..cfg.spider.max_ifaces)
                    .map(|i| Iface::new(station_addr(c, i)))
                    .collect(),
                scan: vec![None; aps.len()],
                heard: RankedSet::new(bssids.ranks()),
                history: ApHistory::new(),
                tx_queues: std::array::from_fn(|_| Vec::new()),
                tx_spare: Vec::new(),
                pos_cache: Cell::new(None),
                fep_cache: Cell::new(None),
                rssi_cache: Cell::new(None),
                rng_phy: phy,
                rng_radio: radio,
                rng_misc: misc,
                scan_channel_idx: 0,
                dhcp_idle_until: Instant::ZERO,
                drops_radio_busy: 0,
                cell_occupancy: 1,
                counters: ClientCounters::default(),
                peak_inrange_aps: 0,
            };
        let mut clients = Vec::with_capacity(n_clients);
        // Client 0 inherits the historical streams, already advanced past
        // the beacon-stagger draws — a one-client fleet world is
        // byte-identical to the single-client world it replaced.
        clients.push(make_client(
            cfg.motion.clone(),
            0,
            rng_phy,
            rng_radio,
            rng_misc,
        ));
        // Extra clients fork fresh streams from the master with stream
        // ids that depend only on the client index, so adding client k+1
        // never perturbs clients 1..k's streams.
        for (k, motion) in cfg.fleet.iter().enumerate() {
            let base = 5 + 3 * k as u64;
            let phy = master.fork(base);
            let radio = master.fork(base + 1);
            let misc = master.fork(base + 2);
            clients.push(make_client(motion.clone(), k + 1, phy, radio, misc));
        }
        let mut stations: Vec<(MacAddr, u32, u32)> = clients
            .iter()
            .enumerate()
            .flat_map(|(c, node)| {
                node.ifaces
                    .iter()
                    .enumerate()
                    .map(move |(i, iface)| (iface.addr, c as u32, i as u32))
            })
            .collect();
        stations.sort_unstable_by_key(|&(a, _, _)| a);

        let world = World {
            cfg,
            aps,
            bssids,
            clients,
            stations,
            grid,
            mover_cells,
            metrics: Metrics::new(),
            medium: [Instant::ZERO; Channel::COUNT],
            scratch: Writer::with_capacity(256),
            ap_actions_scratch: Vec::new(),
            sender_actions_scratch: Vec::new(),
            receiver_actions_scratch: Vec::new(),
            rng_ap,
            next_conn: 1,
            tcp_rtos: 0,
            air_drops: 0,
            dbg_down_airtime: Duration::ZERO,
            dbg_up_airtime: Duration::ZERO,
            dbg_down_frames: 0,
            dbg_up_frames: 0,
        };
        (world, queue)
    }

    fn client_pos(&self, client: usize, now: Instant) -> Point {
        let node = &self.clients[client];
        if let Some((t, p)) = node.pos_cache.get() {
            if t == now {
                return p;
            }
        }
        let p = node.motion.position(now);
        node.pos_cache.set(Some((now, p)));
        p
    }

    /// Per-attempt frame error at `dist` for a `len`-byte frame, memoized
    /// on the exact input bits (see the cache fields' doc comment).
    fn frame_error_at(&self, client: usize, dist: f64, len: usize) -> f64 {
        let key = (dist.to_bits(), len as u32);
        if let Some((d, l, e)) = self.clients[client].fep_cache.get() {
            if (d, l) == key {
                return e;
            }
        }
        let e = self.cfg.phy.frame_error_prob(dist, len);
        self.clients[client].fep_cache.set(Some((key.0, key.1, e)));
        e
    }

    /// RSSI at `dist`, memoized on the exact input bits.
    fn rssi_at(&self, client: usize, dist: f64) -> f64 {
        if let Some((d, rssi)) = self.clients[client].rssi_cache.get() {
            if d == dist.to_bits() {
                return rssi;
            }
        }
        let rssi = self.cfg.phy.link_at(dist).rssi_dbm;
        self.clients[client]
            .rssi_cache
            .set(Some((dist.to_bits(), rssi)));
        rssi
    }

    /// Wrap an encoded payload behind a protocol tag using the world's
    /// scratch buffer: one `Bytes` allocation, no intermediate vector.
    fn wrap_scratch(scratch: &mut Writer, proto: u8, encode: impl FnOnce(&mut Writer)) -> Bytes {
        scratch.clear();
        scratch.put_u8(proto);
        encode(scratch);
        scratch.to_bytes()
    }

    /// A client's scan-table entry for `bssid`, if it has heard that AP.
    fn candidate_for(&self, client: usize, bssid: MacAddr) -> Option<&Candidate> {
        self.bssids
            .get(bssid)
            .and_then(|id| self.clients[client].scan[id].as_ref())
    }

    /// The (client, iface) owning a station address, via binary search
    /// over the sorted station map.
    fn station_owner(&self, addr: MacAddr) -> Option<(usize, usize)> {
        self.stations
            .binary_search_by_key(&addr, |&(a, _, _)| a)
            .ok()
            .map(|i| (self.stations[i].1 as usize, self.stations[i].2 as usize))
    }

    fn distance_to(&self, client: usize, ap: usize, now: Instant) -> f64 {
        self.client_pos(client, now)
            .distance(self.aps[ap].site.position)
    }

    /// Seize the channel medium for `airtime`; returns the arrival instant.
    fn seize_medium(&mut self, channel: Channel, now: Instant, airtime: Duration) -> Instant {
        let free = &mut self.medium[channel.index()];
        let start = now.max(*free);
        let arrival = start + airtime;
        *free = arrival;
        arrival
    }

    /// Frames older than this are dropped from a per-channel TX queue
    /// instead of being flushed (they are protocol-stale by then).
    const TX_QUEUE_TTL: Duration = Duration::from_secs(1);
    /// An AP's share of the air is a bounded transmit queue (a real AP's
    /// TX ring is ~64 frames): data frames that would wait longer than
    /// this for the medium are dropped, giving TCP its loss signal when
    /// the backhaul outruns the on-channel airtime.
    const AIR_QUEUE_BOUND: Duration = Duration::from_millis(500);
    /// Per-channel TX queue depth cap.
    const TX_QUEUE_CAP: usize = 128;

    /// Client `client` transmits `frame` toward AP `ap`. If its radio is
    /// on another channel (or mid-switch), the frame goes into that
    /// channel's transmit queue — Spider keeps "one packet queue per
    /// channel that is swapped in and out of the driver" (§3) — and
    /// flushes when the radio arrives.
    fn client_send(
        &mut self,
        client: usize,
        ap: usize,
        frame: Frame,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        if !self.clients[client].radio.can_hear(channel, now) {
            let node = &mut self.clients[client];
            let q = &mut node.tx_queues[channel.index()];
            if q.len() < Self::TX_QUEUE_CAP {
                q.push((now, ap, frame));
            } else {
                node.drops_radio_busy += 1;
            }
            return;
        }
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        let dist = self.distance_to(client, ap, now);
        let (airtime, delivery) = if is_data {
            let e = self.frame_error_at(client, dist, len);
            (
                self.cfg.phy.expected_data_airtime_from_error(e, len),
                self.cfg.phy.data_delivery_prob_from_error(e),
            )
        } else {
            (
                self.cfg.phy.airtime(len),
                1.0 - self.frame_error_at(client, dist, len),
            )
        };
        // Uplink frames contend per-frame: the client wins the medium
        // within a couple of frame airtimes even when the AP has a deep
        // committed backlog (a FIFO pipe would wrongly park the client's
        // PSM announcements behind the AP's entire queue). The bound
        // scales with the client's cell occupancy: every co-located fleet
        // member is another station the backoff must share the air with
        // (the `n` of `analytical::cell`). Occupancy is 1 when alone, so
        // a single-client world keeps the historical 3 ms cap.
        let occupancy = self.clients[client].cell_occupancy.max(1) as u64;
        let free = &mut self.medium[channel.index()];
        let contention = free
            .saturating_since(now)
            .min(Duration::from_millis(3) * occupancy);
        let arrival = now + contention + airtime;
        self.dbg_up_airtime += airtime;
        self.dbg_up_frames += 1;
        // The frame still consumes channel capacity.
        *free = (*free).max(now) + airtime;
        if self.clients[client].rng_phy.chance(delivery) {
            queue.push(arrival, Event::AirToAp { ap, frame });
        }
    }

    /// AP transmits `frame` after `extra_delay` (management processing
    /// time). Unicast frames are routed to the station's owning client;
    /// broadcast frames fan out to every client (one shared-medium seize
    /// either way — it is one transmission on the air). Whether a client
    /// *hears* it is decided at arrival.
    fn ap_send(
        &mut self,
        ap: usize,
        frame: Frame,
        extra_delay: Duration,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        let target = if frame.addr1.is_broadcast() {
            None
        } else {
            match self.station_owner(frame.addr1) {
                Some((client, _)) => Some(client),
                // Not one of our stations: nobody can receive it.
                None => return,
            }
        };
        if is_data {
            let backlog = self.medium[channel.index()].saturating_since(now);
            if backlog > Self::AIR_QUEUE_BOUND {
                self.air_drops += 1;
                return;
            }
        }
        let airtime = if is_data {
            // Data frames are always unicast; rate/retry adapt to the
            // owning client's distance.
            let client = target.unwrap_or(0);
            let dist = self.distance_to(client, ap, now);
            let e = self.frame_error_at(client, dist, len);
            self.cfg.phy.expected_data_airtime_from_error(e, len)
        } else {
            self.cfg.phy.airtime(len)
        };
        self.dbg_down_airtime += airtime;
        self.dbg_down_frames += 1;
        let arrival = self.seize_medium(channel, now + extra_delay, airtime);
        match target {
            Some(client) => {
                queue.push(arrival, Event::AirToClient { client, ap, frame });
            }
            None => {
                // Broadcast: one transmission, every antenna sees it.
                for client in 0..self.clients.len() {
                    queue.push(
                        arrival,
                        Event::AirToClient {
                            client,
                            ap,
                            frame: frame.clone(),
                        },
                    );
                }
            }
        }
    }

    fn process_ap_actions(
        &mut self,
        ap: usize,
        actions: &mut Vec<ApAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions.drain(..) {
            match action {
                ApAction::Send { delay, frame } => self.ap_send(ap, frame, delay, queue, now),
                ApAction::ToUplink { from, payload } => {
                    self.handle_uplink(ap, from, payload, queue, now)
                }
            }
        }
    }

    /// An uplink payload arrived at the AP from the client: route by the
    /// protocol tag.
    fn handle_uplink(
        &mut self,
        ap: usize,
        station: MacAddr,
        payload: Bytes,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let Some((proto, body)) = unwrap_proto(&payload) else {
            return;
        };
        match proto {
            PROTO_UDP => {
                // DHCP: handled by the AP's embedded server.
                let Ok(msg) = DhcpMessage::decode(body) else {
                    return;
                };
                let node = &mut self.aps[ap];
                if let Some((delay, reply)) = node.dhcp.on_message(&msg, now, &mut self.rng_ap) {
                    let reply_payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_UDP, |w| reply.encode_into(w));
                    queue.push(
                        now + delay,
                        Event::DhcpReplyReady {
                            ap,
                            station,
                            payload: reply_payload,
                        },
                    );
                }
            }
            PROTO_TCP => {
                // ACK toward the content server: ride the uplink pipe. The
                // event keeps the tagged payload (an O(1) Bytes clone); the
                // handler strips the tag on arrival.
                if let Some(arrival) = self.aps[ap].uplink.transmit(now, body.len()) {
                    queue.push(arrival, Event::BackhaulToServer { ap, payload });
                }
            }
            _ => {}
        }
    }

    fn process_sender_actions(
        &mut self,
        ap: usize,
        conn: u64,
        actions: &mut Vec<SenderAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions.drain(..) {
            match action {
                SenderAction::Transmit(seg) => {
                    if let Some(arrival) =
                        self.aps[ap].downlink.transmit(now, seg.wire_len() as usize)
                    {
                        let payload = Self::wrap_scratch(&mut self.scratch, PROTO_TCP, |w| {
                            seg.encode_into(w)
                        });
                        queue.push(arrival, Event::BackhaulToAp { ap, payload });
                    }
                }
                SenderAction::ArmTimer { after, token } => {
                    queue.push(now + after, Event::SenderTimer { ap, conn, token });
                }
                SenderAction::Connected => {}
                SenderAction::Complete => {
                    self.aps[ap].remove_sender(conn);
                    if let Some((client, iface_idx)) = self.iface_for_conn(conn) {
                        let think = self.cfg.plan.think_time();
                        if think.is_zero() {
                            // Saturating plan: reopen immediately.
                            self.open_connection(client, iface_idx, ap, queue, now);
                        } else {
                            // Segmented plan: pause, then fetch the next
                            // object.
                            let gen = self.clients[client].ifaces[iface_idx].gen;
                            queue.push(
                                now + think,
                                Event::NextObject {
                                    client,
                                    iface: iface_idx,
                                    gen,
                                    ap,
                                },
                            );
                        }
                    }
                }
                SenderAction::Aborted => {
                    self.aps[ap].remove_sender(conn);
                    // If the client is still bound to this AP, retry with a
                    // fresh connection (the old one died of timeouts).
                    if let Some((client, iface_idx)) = self.iface_for_conn(conn) {
                        self.open_connection(client, iface_idx, ap, queue, now);
                    }
                }
            }
        }
    }

    /// The (client, iface) a live connection terminates at. Connection ids
    /// are unique across the fleet (minted from one world counter), so at
    /// most one interface matches.
    fn iface_for_conn(&self, conn: u64) -> Option<(usize, usize)> {
        self.clients.iter().enumerate().find_map(|(c, node)| {
            node.ifaces
                .iter()
                .position(|i| i.conn == Some(conn) && i.state == IfaceState::Connected)
                .map(|i| (c, i))
        })
    }

    /// Open a saturating TCP connection from the server behind `ap` toward
    /// interface `iface_idx` of `client`.
    fn open_connection(
        &mut self,
        client: usize,
        iface_idx: usize,
        ap: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let node = &mut self.clients[client];
        let isn = node.rng_misc.next_u64() as u32;
        let object = self
            .cfg
            .plan
            .next_object_rng(&mut node.rng_misc)
            .min(self.cfg.bytes_per_connection);
        let mut sender = BulkSender::new(self.cfg.tcp.clone(), conn, object, isn);
        let mut actions = sender.start(now);
        self.aps[ap].senders.push((conn, sender));
        node.ifaces[iface_idx].conn = Some(conn);
        node.ifaces[iface_idx].receiver = Some(BulkReceiver::new(conn));
        self.process_sender_actions(ap, conn, &mut actions, queue, now);
    }

    fn process_mac_actions(
        &mut self,
        client: usize,
        iface_idx: usize,
        actions: Vec<MacAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions {
            match action {
                MacAction::Send(frame) => {
                    if let Some(ap) = self.clients[client].ifaces[iface_idx].ap {
                        self.client_send(client, ap, frame, queue, now);
                    }
                }
                MacAction::ArmTimer { after, token } => {
                    let gen = self.clients[client].ifaces[iface_idx].gen;
                    queue.push(
                        now + after,
                        Event::MacTimer {
                            client,
                            iface: iface_idx,
                            gen,
                            token,
                        },
                    );
                }
                MacAction::Joined { .. } => self.on_associated(client, iface_idx, queue, now),
                MacAction::Failed(_) => {
                    self.metrics.assoc_failures += 1;
                    if let Some(ap) = self.clients[client].ifaces[iface_idx].ap {
                        let bssid = self.aps[ap].mac.bssid();
                        self.clients[client].history.record_failure(bssid, now);
                    }
                    self.teardown_iface(client, iface_idx, now);
                }
            }
        }
    }

    fn on_associated(
        &mut self,
        client: usize,
        iface_idx: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let node = &mut self.clients[client];
        let started = node.ifaces[iface_idx]
            .join_started
            // simlint: allow(panic-path) — join FSM invariant: an Associating iface always has join_started; silent recovery would corrupt join-time metrics
            .expect("associated without a join start");
        self.metrics
            .assoc_times
            .record_duration(now.saturating_since(started));
        node.ifaces[iface_idx].state = IfaceState::Acquiring;
        self.update_concurrency(now);
        // Kick off DHCP.
        let node = &mut self.clients[client];
        let addr = node.ifaces[iface_idx].addr;
        let ap = node.ifaces[iface_idx]
            .ap
            // simlint: allow(panic-path) — join FSM invariant: an Associating iface always has a target AP; a hole here is a driver bug that must be loud
            .expect("associated without an AP");
        let bssid = self.aps[ap].mac.bssid();
        let cached = if self.cfg.spider.lease_cache {
            node.history.cached_lease(bssid, now)
        } else {
            None
        };
        let xid_seed = node.rng_misc.next_u64() as u32;
        let mut dhcp = DhcpClient::new(self.cfg.spider.dhcp.clone(), addr.octets(), xid_seed);
        self.metrics.dhcp_attempts += 1;
        let actions = dhcp.start(now, cached);
        node.ifaces[iface_idx].dhcp = Some(dhcp);
        self.process_dhcp_actions(client, iface_idx, actions, queue, now);
    }

    fn process_dhcp_actions(
        &mut self,
        client: usize,
        iface_idx: usize,
        actions: Vec<DhcpAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions {
            match action {
                DhcpAction::Send(msg) => {
                    let Some(ap) = self.clients[client].ifaces[iface_idx].ap else {
                        continue;
                    };
                    let station = self.clients[client].ifaces[iface_idx].addr;
                    let bssid = self.aps[ap].mac.bssid();
                    let payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_UDP, |w| msg.encode_into(w));
                    let frame = Frame::data_to_ap(station, bssid, payload);
                    self.client_send(client, ap, frame, queue, now);
                }
                DhcpAction::ArmTimer { after, token } => {
                    let gen = self.clients[client].ifaces[iface_idx].gen;
                    queue.push(
                        now + after,
                        Event::DhcpTimer {
                            client,
                            iface: iface_idx,
                            gen,
                            token,
                        },
                    );
                }
                DhcpAction::Bound(lease) => self.on_bound(client, iface_idx, lease, queue, now),
                DhcpAction::Failed => {
                    self.metrics.dhcp_failures += 1;
                    let node = &mut self.clients[client];
                    node.dhcp_idle_until = node
                        .dhcp_idle_until
                        .max(now + self.cfg.spider.dhcp.idle_after_fail);
                    if let Some(ap) = node.ifaces[iface_idx].ap {
                        let bssid = self.aps[ap].mac.bssid();
                        self.clients[client].history.record_failure(bssid, now);
                    }
                    self.teardown_iface(client, iface_idx, now);
                }
            }
        }
    }

    fn on_bound(
        &mut self,
        client: usize,
        iface_idx: usize,
        lease: Lease,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let node = &mut self.clients[client];
        let started = node.ifaces[iface_idx]
            .join_started
            // simlint: allow(panic-path) — join FSM invariant: a Bound iface always has join_started; silent recovery would corrupt join-time metrics
            .expect("bound without a join start");
        let join_time = now.saturating_since(started);
        self.metrics.join_times.record_duration(join_time);
        // simlint: allow(panic-path) — join FSM invariant: a Bound iface always has a target AP; a hole here is a driver bug that must be loud
        let ap = node.ifaces[iface_idx].ap.expect("bound without an AP");
        let bssid = self.aps[ap].mac.bssid();
        node.history.record_success(bssid, join_time);
        node.history.store_lease(bssid, lease);
        node.ifaces[iface_idx].state = IfaceState::Connected;
        node.counters.joins += 1;
        self.update_concurrency(now);
        self.open_connection(client, iface_idx, ap, queue, now);
    }

    /// Fleet-wide concurrent-association count (the §4.4 metric). With one
    /// client this is exactly the historical per-client count.
    fn update_concurrency(&mut self, now: Instant) {
        let connected = self
            .clients
            .iter()
            .flat_map(|c| c.ifaces.iter())
            .filter(|i| i.state == IfaceState::Connected)
            .count();
        self.metrics.record_concurrency(now, connected);
    }

    fn teardown_iface(&mut self, client: usize, iface_idx: usize, now: Instant) {
        let iface = &mut self.clients[client].ifaces[iface_idx];
        if let (Some(ap), Some(conn)) = (iface.ap, iface.conn) {
            self.aps[ap].remove_sender(conn);
        }
        let iface = &mut self.clients[client].ifaces[iface_idx];
        if let Some(dhcp) = iface.dhcp.as_mut() {
            dhcp.abort();
        }
        iface.reset();
        self.update_concurrency(now);
    }

    /// A frame arrived at a client's antenna: deliverable only if that
    /// radio is tuned to the AP's channel and the PHY draw succeeds.
    fn on_air_to_client(
        &mut self,
        client: usize,
        ap: usize,
        frame: Frame,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        if !self.clients[client].radio.can_hear(channel, now) {
            // The station left the channel while this frame was in flight.
            // For a PSM station the AP's MAC-retry failure routes a data
            // frame back into the power-save queue rather than dropping it.
            if let FrameBody::Data(payload) = &frame.body {
                let ok = self.aps[ap]
                    .mac
                    .rebuffer_front(frame.addr1, payload.clone(), now);
                if !ok && debug_env("SPIDER_DEBUG_REBUF") {
                    eprintln!(
                        "t={now} rebuffer FAILED ap={ap} assoc={} psm={} buffered={}",
                        self.aps[ap].mac.is_associated(frame.addr1),
                        self.aps[ap].mac.in_psm(frame.addr1),
                        self.aps[ap].mac.buffered_for(frame.addr1)
                    );
                }
            }
            return;
        }
        let dist = self.distance_to(client, ap, now);
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        let delivery = if is_data {
            let e = self.frame_error_at(client, dist, len);
            self.cfg.phy.data_delivery_prob_from_error(e)
        } else {
            1.0 - self.frame_error_at(client, dist, len)
        };
        if !self.clients[client].rng_phy.chance(delivery) {
            return;
        }
        // Opportunistic scanning: every beacon/probe-response refreshes the
        // candidate table. `addr2` is always an interned AP bssid here; the
        // lookup canonicalizes it to the dense slot the old map keyed by.
        if let FrameBody::Beacon(b) | FrameBody::ProbeResp(b) = &frame.body {
            if let Some(slot) = self.bssids.get(frame.addr2) {
                let rssi = self.rssi_at(client, dist);
                let node = &mut self.clients[client];
                node.scan[slot] = Some(Candidate {
                    bssid: frame.addr2,
                    channel: b.channel,
                    rssi_dbm: rssi,
                    last_heard: now,
                });
                node.heard.insert(slot);
            }
        }
        // Route to the client's interface talking to this AP.
        let node = &self.clients[client];
        let Some(iface_idx) = node
            .ifaces
            .iter()
            .position(|i| i.ap == Some(ap) && i.state != IfaceState::Idle)
        else {
            return;
        };
        if frame.addr1 != node.ifaces[iface_idx].addr && !frame.addr1.is_broadcast() {
            return;
        }
        match &frame.body {
            FrameBody::Data(payload) => {
                let Some((proto, body)) = unwrap_proto(payload) else {
                    return;
                };
                match proto {
                    PROTO_UDP => {
                        if let Ok(msg) = DhcpMessage::decode(body) {
                            if let Some(mut dhcp) =
                                self.clients[client].ifaces[iface_idx].dhcp.take()
                            {
                                let actions = dhcp.handle_message(&msg, now);
                                self.clients[client].ifaces[iface_idx].dhcp = Some(dhcp);
                                self.process_dhcp_actions(client, iface_idx, actions, queue, now);
                            }
                        }
                    }
                    PROTO_TCP => {
                        if let Some(seg) = Segment::decode(body) {
                            self.on_client_segment(client, iface_idx, ap, seg, queue, now);
                        }
                    }
                    _ => {}
                }
            }
            _ => {
                if let Some(mut mac) = self.clients[client].ifaces[iface_idx].mac.take() {
                    let actions = mac.handle_frame(&frame);
                    self.clients[client].ifaces[iface_idx].mac = Some(mac);
                    self.process_mac_actions(client, iface_idx, actions, queue, now);
                }
            }
        }
    }

    fn on_client_segment(
        &mut self,
        client: usize,
        iface_idx: usize,
        ap: usize,
        seg: Segment,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let Some(mut receiver) = self.clients[client].ifaces[iface_idx].receiver.take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.receiver_actions_scratch);
        receiver.on_segment_into(&seg, now, &mut actions);
        self.clients[client].ifaces[iface_idx].receiver = Some(receiver);
        for action in actions.drain(..) {
            match action {
                ReceiverAction::Transmit(ack) => {
                    let station = self.clients[client].ifaces[iface_idx].addr;
                    let bssid = self.aps[ap].mac.bssid();
                    let payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_TCP, |w| ack.encode_into(w));
                    let frame = Frame::data_to_ap(station, bssid, payload);
                    self.client_send(client, ap, frame, queue, now);
                }
                ReceiverAction::Deliver { bytes } => {
                    self.metrics.record_bytes(now, bytes);
                    self.clients[client].counters.bytes += bytes;
                }
                ReceiverAction::Finished => {}
            }
        }
        self.receiver_actions_scratch = actions;
    }

    /// Driver evaluation for one client: tear down links to vanished APs,
    /// start new joins, and (stock driver only) rotate channels while idle.
    fn evaluate(&mut self, client: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let loss_timeout = self.cfg.spider.ap_loss_timeout;
        // 1. Teardown: APs unheard for too long (left range).
        for idx in 0..self.clients[client].ifaces.len() {
            if self.clients[client].ifaces[idx].state == IfaceState::Idle {
                continue;
            }
            let Some(ap) = self.clients[client].ifaces[idx].ap else {
                continue;
            };
            let bssid = self.aps[ap].mac.bssid();
            let heard_recently = self
                .candidate_for(client, bssid)
                .is_some_and(|c| now.saturating_since(c.last_heard) <= loss_timeout);
            if !heard_recently {
                self.teardown_iface(client, idx, now);
            }
        }
        // 2. Start joins on the current channel.
        let started = self.try_start_joins(client, queue, now);
        // 3. Idle scanning (stock driver and the adaptive extension): if
        //    nothing is joined, joining, or joinable on this channel, move
        //    the radio along to refresh the candidate table.
        if matches!(
            self.cfg.spider.schedule,
            SchedulePolicy::ScanWhenIdle { .. } | SchedulePolicy::AdaptiveChannel { .. }
        ) {
            let node = &mut self.clients[client];
            let any_busy = node.ifaces.iter().any(|i| i.state != IfaceState::Idle);
            if !any_busy && started == 0 {
                node.scan_channel_idx = (node.scan_channel_idx + 1) % wifi_mac::ORTHOGONAL.len();
                let target = wifi_mac::ORTHOGONAL[node.scan_channel_idx];
                let latency = node.radio.switch_to(target, now, 0, &mut node.rng_radio);
                if !latency.is_zero() {
                    self.metrics.switch_latencies.record_duration(latency);
                }
            }
        }
        queue.push(
            now + self.cfg.spider.evaluate_every,
            Event::Evaluate { client },
        );
    }

    /// Begin joins toward the best unjoined candidates on the client's
    /// current channel, within its interface budget. Returns how many
    /// started.
    fn try_start_joins(
        &mut self,
        client: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) -> usize {
        let node = &self.clients[client];
        let budget = if self.cfg.spider.single_ap {
            1usize.saturating_sub(
                node.ifaces
                    .iter()
                    .filter(|i| i.state != IfaceState::Idle)
                    .count(),
            )
        } else {
            node.ifaces
                .iter()
                .filter(|i| i.state == IfaceState::Idle)
                .count()
        };
        if budget == 0 || node.radio.is_busy(now) || now < node.dhcp_idle_until {
            return 0;
        }
        // The heard set iterates in MacAddr-rank order — exactly the
        // order the old full `bssids.iter_sorted()` scan produced:
        // candidate order feeds tie-breaking in `select_aps`, and a
        // process-randomized order here once meant two identical runs
        // could join APs in different orders (the simlint `unordered-map`
        // rule still rejects any hash-keyed state). Walking only heard
        // slots is output-identical because `select_aps` drops anything
        // older than its 2 s freshness window and Maintenance prunes the
        // heard set only after 5 s — so every candidate that can survive
        // the filter is still a member. Cost: O(heard), not O(APs).
        let candidates: Vec<Candidate> = node.heard.iter().filter_map(|id| node.scan[id]).collect();
        let joined: Vec<MacAddr> = node
            .ifaces
            .iter()
            .filter(|i| i.state != IfaceState::Idle)
            .filter_map(|i| i.ap.map(|a| self.aps[a].mac.bssid()))
            .collect();
        let picks = select_aps(
            &candidates,
            node.radio.channel(),
            self.cfg.spider.selection,
            &node.history,
            now,
            Duration::from_secs(2),
            self.cfg.spider.retry_backoff,
            self.cfg.spider.min_join_rssi_dbm,
            budget + joined.len(),
        );
        let mut started = 0;
        for bssid in picks {
            if started >= budget {
                break;
            }
            if joined.contains(&bssid) {
                continue;
            }
            let Some(ap) = self.bssids.get(bssid) else {
                continue;
            };
            let Some(idx) = self.clients[client]
                .ifaces
                .iter()
                .position(|i| i.state == IfaceState::Idle)
            else {
                break;
            };
            let setup = self.cfg.spider.join_setup_delay;
            if setup.is_zero() {
                self.start_join(client, idx, ap, queue, now);
            } else {
                // Reserve the interface and defer the handshake by the
                // scan/supplicant setup time (the stock path).
                let iface = &mut self.clients[client].ifaces[idx];
                iface.state = IfaceState::Associating;
                iface.gen += 1;
                iface.ap = Some(ap);
                iface.join_started = Some(now);
                let gen = iface.gen;
                queue.push(
                    now + setup,
                    Event::BeginJoin {
                        client,
                        iface: idx,
                        gen,
                        ap,
                    },
                );
            }
            started += 1;
        }
        started
    }

    fn start_join(
        &mut self,
        client: usize,
        iface_idx: usize,
        ap: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let bssid = self.aps[ap].mac.bssid();
        let ssid = self.aps[ap].mac.config().ssid.clone();
        // Opportunistic scanning just heard this AP; skip the probe phase.
        let heard_just_now = self
            .candidate_for(client, bssid)
            .is_some_and(|c| now.saturating_since(c.last_heard) <= Duration::from_secs(1));
        let join_cfg = JoinConfig {
            use_probe: !heard_just_now,
            ..self.cfg.spider.join.clone()
        };
        let station = self.clients[client].ifaces[iface_idx].addr;
        let mut mac = ClientMac::new(station, bssid, ssid, join_cfg);
        self.metrics.assoc_attempts += 1;
        let actions = mac.start(now);
        {
            let iface = &mut self.clients[client].ifaces[iface_idx];
            iface.state = IfaceState::Associating;
            iface.gen += 1;
            iface.ap = Some(ap);
            iface.join_started = Some(now);
            iface.mac = Some(mac);
        }
        self.process_mac_actions(client, iface_idx, actions, queue, now);
    }

    /// Multi-channel schedule: enter PSM on the old channel, retune, wake
    /// interfaces on the new channel. Each client runs its own slice
    /// cursor (fleet members need not be slice-synchronized).
    fn schedule_slice(
        &mut self,
        client: usize,
        idx: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let SchedulePolicy::MultiChannel { slices } = &self.cfg.spider.schedule else {
            return;
        };
        let slices = slices.clone();
        let (target, slice_len) = slices[idx % slices.len()];
        let old = self.clients[client].radio.channel();
        if target != old {
            // Announce power-save to every associated AP on the old channel.
            // The radio keeps listening while these drain (the Table 1
            // switch latency *includes* this phase), so the AP's in-flight
            // downlink frames are not lost to the retune.
            let psm_targets: Vec<(usize, MacAddr, MacAddr)> = self.clients[client]
                .ifaces
                .iter()
                .filter(|i| i.state == IfaceState::Connected)
                .filter_map(|i| i.ap.map(|a| (a, i.addr, self.aps[a].mac.bssid())))
                .filter(|(a, _, _)| self.aps[*a].site.channel == old)
                .collect();
            let connected = psm_targets.len();
            for (ap, station, bssid) in psm_targets {
                let frame = Frame::psm_enter(station, bssid);
                self.client_send(client, ap, frame, queue, now);
            }
            let grace =
                Duration::from_micros(3_700) + Duration::from_micros(300) * connected as u64;
            queue.push(now + grace, Event::SwitchBegin { client, target });
        }
        queue.push(
            now + slice_len,
            Event::ScheduleSlice {
                client,
                idx: idx + 1,
            },
        );
    }

    fn on_switch_begin(
        &mut self,
        client: usize,
        target: Channel,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let node = &mut self.clients[client];
        if target == node.radio.channel() {
            return;
        }
        let connected = node
            .ifaces
            .iter()
            .filter(|i| i.state == IfaceState::Connected)
            .count();
        let latency = node
            .radio
            .switch_to(target, now, connected, &mut node.rng_radio);
        self.metrics.switch_latencies.record_duration(latency);
        queue.push(now + latency, Event::SwitchDone { client });
    }

    fn on_switch_done(&mut self, client: usize, queue: &mut EventQueue<Event>, now: Instant) {
        // Wake every associated AP on the (new) current channel.
        let channel = self.clients[client].radio.channel();
        let wake_targets: Vec<(usize, MacAddr, MacAddr)> = self.clients[client]
            .ifaces
            .iter()
            .filter(|i| i.state == IfaceState::Connected)
            .filter_map(|i| i.ap.map(|a| (a, i.addr, self.aps[a].mac.bssid())))
            .filter(|(a, _, _)| self.aps[*a].site.channel == channel)
            .collect();
        for (ap, station, bssid) in wake_targets {
            let frame = Frame::psm_exit(station, bssid);
            self.client_send(client, ap, frame, queue, now);
        }
        // Swap in this channel's transmit queue: flush frames that waited
        // out the off-channel period (dropping protocol-stale ones). The
        // queue's buffer is swapped against the spare and handed back after
        // the drain, so steady-state switches reuse the same allocations.
        let node = &mut self.clients[client];
        let mut pending = std::mem::replace(
            &mut node.tx_queues[channel.index()],
            std::mem::take(&mut node.tx_spare),
        );
        for (queued_at, ap, frame) in pending.drain(..) {
            if now.saturating_since(queued_at) <= Self::TX_QUEUE_TTL {
                self.client_send(client, ap, frame, queue, now);
            }
        }
        self.clients[client].tx_spare = pending;
        // Freshly on-channel with a whole slice ahead: the best moment to
        // start joins (this is Spider's "parallel per-channel association").
        self.try_start_joins(client, queue, now);
    }

    /// The §4.8 extension: periodically dwell on whichever orthogonal
    /// channel offers the best-scoring fresh candidates. A switch tears
    /// down current associations (we will not be coming back for their
    /// PSM buffers), so the bar for moving is a strict improvement.
    fn reconsider(&mut self, client: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let SchedulePolicy::AdaptiveChannel { reconsider, .. } = self.cfg.spider.schedule else {
            return;
        };
        let freshness = Duration::from_secs(3);
        // The heard set iterates in MacAddr-rank order, so this
        // floating-point sum visits candidates in the same order the full
        // sorted-table walk (and before it, the BTreeMap) produced; the
        // 3 s freshness filter keeps the summed subset identical too,
        // since heard entries outlive it (5 s prune).
        let score_of =
            |ch: Channel, heard: &RankedSet, scan: &[Option<Candidate>], history: &ApHistory| {
                heard
                    .iter()
                    .filter_map(|id| scan[id].as_ref())
                    .filter(|c| c.channel == ch)
                    .filter(|c| now.saturating_since(c.last_heard) <= freshness)
                    .map(|c| history.score(c.bssid, now))
                    .sum::<f64>()
            };
        let node = &self.clients[client];
        let current = node.radio.channel();
        let current_score = score_of(current, &node.heard, &node.scan, &node.history);
        let mut best = (current, current_score);
        for ch in wifi_mac::ORTHOGONAL {
            let s = score_of(ch, &node.heard, &node.scan, &node.history);
            if s > best.1 {
                best = (ch, s);
            }
        }
        // Move only on a clear win: switching abandons live associations.
        if best.0 != current && best.1 > current_score * 1.25 + 0.25 {
            for idx in 0..self.clients[client].ifaces.len() {
                if self.clients[client].ifaces[idx].state != IfaceState::Idle {
                    self.teardown_iface(client, idx, now);
                }
            }
            let node = &mut self.clients[client];
            let latency = node.radio.switch_to(best.0, now, 0, &mut node.rng_radio);
            self.metrics.switch_latencies.record_duration(latency);
            queue.push(now + latency, Event::SwitchDone { client });
        }
        queue.push(now + reconsider, Event::Reconsider { client });
    }

    fn beacon_tick(&mut self, ap: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let interval = self.aps[ap].mac.config().beacon_interval;
        // Fan out to every client within earshot: one transmission on the
        // air (one medium seize, one airtime charge), one arrival per
        // in-range antenna. Clients are visited in ascending index order.
        let in_range: Vec<usize> = (0..self.clients.len())
            .filter(|&c| self.distance_to(c, ap, now) <= 400.0)
            .collect();
        if in_range.is_empty() {
            // Out of everyone's earshot: check back lazily instead of
            // spamming events.
            queue.push(now + Duration::from_secs(2), Event::BeaconTick { ap });
            return;
        }
        let frame = self.aps[ap].mac.beacon(now);
        let channel = self.aps[ap].site.channel;
        let airtime = self.cfg.phy.airtime(frame.wire_len());
        self.dbg_down_airtime += airtime;
        self.dbg_down_frames += 1;
        let arrival = self.seize_medium(channel, now, airtime);
        for client in in_range {
            queue.push(
                arrival,
                Event::AirToClient {
                    client,
                    ap,
                    frame: frame.clone(),
                },
            );
        }
        queue.push(now + interval, Event::BeaconTick { ap });
    }

    fn result(mut self) -> RunResult {
        let d = self.cfg.duration;
        self.metrics.record_concurrency(Instant::ZERO + d, 0);
        let backhaul_drops: u64 = self
            .aps
            .iter()
            .map(|a| a.downlink.drops() + a.uplink.drops())
            .sum();
        if debug_env("SPIDER_DEBUG_BH") {
            for (i, a) in self.aps.iter().enumerate() {
                eprintln!(
                    "ap={i} down_drops={} up_drops={}",
                    a.downlink.drops(),
                    a.uplink.drops()
                );
            }
        }
        let psm_drops: u64 = self.aps.iter().map(|a| a.mac.counters().psm_dropped).sum();
        let unassociated_drops: u64 = self
            .aps
            .iter()
            .map(|a| a.mac.counters().unassociated_drops)
            .sum();
        RunResult {
            duration: d,
            total_bytes: self.metrics.total_bytes(),
            avg_throughput_bps: self.metrics.avg_throughput_bps(d),
            connectivity: self.metrics.connectivity(d),
            connection_durations: self.metrics.connection_durations(d),
            disruption_durations: self.metrics.disruption_durations(d),
            instantaneous_bandwidth: self.metrics.instantaneous_bandwidth(d),
            assoc_times: self.metrics.assoc_times.clone(),
            join_times: self.metrics.join_times.clone(),
            switch_latencies: self.metrics.switch_latencies.clone(),
            dhcp_attempts: self.metrics.dhcp_attempts,
            dhcp_failures: self.metrics.dhcp_failures,
            assoc_attempts: self.metrics.assoc_attempts,
            assoc_failures: self.metrics.assoc_failures,
            switch_count: self.clients.iter().map(|c| c.radio.switch_count()).sum(),
            max_concurrent_aps: self.metrics.max_concurrent_aps,
            concurrency_seconds: self.metrics.concurrency_seconds.clone(),
            tcp_rtos: self.tcp_rtos,
            backhaul_drops,
            psm_drops,
            unassociated_drops,
            air_drops: self.air_drops,
            per_client: self.clients.iter().map(|c| c.counters).collect(),
        }
    }
}

impl Handler<Event> for World {
    fn handle(&mut self, now: Instant, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::BeaconTick { ap } => self.beacon_tick(ap, queue, now),
            Event::AirToClient { client, ap, frame } => {
                self.on_air_to_client(client, ap, frame, queue, now)
            }
            Event::AirToAp { ap, frame } => {
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                {
                    let node = &mut self.aps[ap];
                    node.mac
                        .on_frame_into(&frame, now, &mut self.rng_ap, &mut actions);
                }
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::MacTimer {
                client,
                iface,
                gen,
                token,
            } => {
                if self.clients[client].ifaces[iface].gen != gen {
                    return;
                }
                if let Some(mut mac) = self.clients[client].ifaces[iface].mac.take() {
                    let actions = mac.handle_timer(token);
                    self.clients[client].ifaces[iface].mac = Some(mac);
                    self.process_mac_actions(client, iface, actions, queue, now);
                }
            }
            Event::DhcpTimer {
                client,
                iface,
                gen,
                token,
            } => {
                if self.clients[client].ifaces[iface].gen != gen {
                    return;
                }
                if let Some(mut dhcp) = self.clients[client].ifaces[iface].dhcp.take() {
                    let actions = dhcp.handle_timer(token, now);
                    self.clients[client].ifaces[iface].dhcp = Some(dhcp);
                    self.process_dhcp_actions(client, iface, actions, queue, now);
                }
            }
            Event::SenderTimer { ap, conn, token } => {
                let mut actions = std::mem::take(&mut self.sender_actions_scratch);
                match self.aps[ap].sender_mut(conn) {
                    Some(sender) => sender.on_timer_into(token, now, &mut actions),
                    None => {
                        self.sender_actions_scratch = actions;
                        return;
                    }
                }
                if actions
                    .iter()
                    .any(|a| matches!(a, SenderAction::Transmit(_)))
                {
                    self.tcp_rtos += 1;
                    if debug_env("SPIDER_DEBUG_RTO") {
                        let s = self.aps[ap].sender(conn);
                        eprintln!(
                            "RTO at {now} conn={conn} srtt={:?} cwnd={:?}",
                            s.and_then(|x| x.srtt()),
                            s.map(|x| x.cwnd())
                        );
                    }
                }
                self.process_sender_actions(ap, conn, &mut actions, queue, now);
                self.sender_actions_scratch = actions;
            }
            Event::BackhaulToAp { ap, payload } => {
                // A TCP segment for one of our clients: find which
                // interface its connection terminates at.
                let Some((_, body)) = unwrap_proto(&payload) else {
                    return;
                };
                let Some(seg) = Segment::decode(body) else {
                    return;
                };
                let Some((client, iface_idx)) =
                    self.clients.iter().enumerate().find_map(|(c, node)| {
                        node.ifaces
                            .iter()
                            .position(|i| i.conn == Some(seg.conn) && i.ap == Some(ap))
                            .map(|i| (c, i))
                    })
                else {
                    return;
                };
                let station = self.clients[client].ifaces[iface_idx].addr;
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                self.aps[ap]
                    .mac
                    .deliver_downlink_into(station, payload, now, &mut actions);
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::BackhaulToServer { ap, payload } => {
                // The payload still carries its protocol tag (kept to make
                // the uplink enqueue copy-free); strip it here.
                let Some((_, body)) = unwrap_proto(&payload) else {
                    return;
                };
                let Some(seg) = Segment::decode(body) else {
                    return;
                };
                let mut actions = std::mem::take(&mut self.sender_actions_scratch);
                match self.aps[ap].sender_mut(seg.conn) {
                    Some(sender) => sender.on_segment_into(&seg, now, &mut actions),
                    None => {
                        self.sender_actions_scratch = actions;
                        return;
                    }
                }
                self.process_sender_actions(ap, seg.conn, &mut actions, queue, now);
                self.sender_actions_scratch = actions;
            }
            Event::DhcpReplyReady {
                ap,
                station,
                payload,
            } => {
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                self.aps[ap]
                    .mac
                    .deliver_downlink_into(station, payload, now, &mut actions);
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::ScheduleSlice { client, idx } => self.schedule_slice(client, idx, queue, now),
            Event::SwitchBegin { client, target } => {
                self.on_switch_begin(client, target, queue, now)
            }
            Event::SwitchDone { client } => self.on_switch_done(client, queue, now),
            Event::Evaluate { client } => self.evaluate(client, queue, now),
            Event::Reconsider { client } => self.reconsider(client, queue, now),
            Event::NextObject {
                client,
                iface,
                gen,
                ap,
            } => {
                if self.clients[client].ifaces[iface].gen != gen
                    || self.clients[client].ifaces[iface].state != IfaceState::Connected
                {
                    return;
                }
                self.open_connection(client, iface, ap, queue, now);
            }
            Event::BeginJoin {
                client,
                iface,
                gen,
                ap,
            } => {
                if self.clients[client].ifaces[iface].gen != gen {
                    return;
                }
                // The candidate must still be around after the setup delay.
                let bssid = self.aps[ap].mac.bssid();
                let fresh = self
                    .candidate_for(client, bssid)
                    .is_some_and(|c| now.saturating_since(c.last_heard) <= Duration::from_secs(3));
                if fresh {
                    self.clients[client].ifaces[iface].state = IfaceState::Idle;
                    self.start_join(client, iface, ap, queue, now);
                } else {
                    self.teardown_iface(client, iface, now);
                }
            }
            Event::Maintenance => {
                if debug_env("SPIDER_DEBUG_MEDIUM") {
                    // Index order is channel-number order; never-seized
                    // channels stay at ZERO, matching the old map's
                    // "no entry" case.
                    for (idx, free) in self.medium.iter().enumerate() {
                        if *free == Instant::ZERO {
                            continue;
                        }
                        let ch = Channel::from_number(idx as u8 + 1);
                        eprintln!(
                            "t={now} medium {ch} backlog={} down={}f/{} up={}f/{}",
                            free.saturating_since(now),
                            self.dbg_down_frames,
                            self.dbg_down_airtime,
                            self.dbg_up_frames,
                            self.dbg_up_airtime
                        );
                    }
                }
                if debug_env("SPIDER_DEBUG_TCP") {
                    for (i, apn) in self.aps.iter().enumerate() {
                        // Vec order is connection-id order (monotone ids).
                        for (c, snd) in &apn.senders {
                            eprintln!(
                                "t={now} ap={i} conn={c} cwnd={} flight={} srtt={:?} fr={} rto_cnt={} acked={} pump={} retx={}",
                                snd.cwnd(), snd.flight_bytes(), snd.srtt(), snd.fast_retransmit_count(),
                                snd.timeout_count(), snd.bytes_acked(), snd.dbg_pump, snd.dbg_retx
                            );
                        }
                    }
                }
                // Spatial upkeep, 1 Hz: move every client's cell membership
                // and sample how many APs each 400 m hearing disc covers —
                // grid range queries, not scans over `aps`. The mover index
                // then feeds back as cell occupancy: how many fleet members
                // (self included) share each client's cell, which scales
                // the uplink contention bound in `client_send`. Occupancy
                // is 1 whenever a client is alone in its cell, so the
                // single-client world is unaffected.
                for c in 0..self.clients.len() {
                    let pos = self.client_pos(c, now);
                    if self.mover_cells.update(c, pos) {
                        self.clients[c].counters.cell_crossings += 1;
                    }
                    let inrange = self.grid.count_in_disc(pos, 400.0) as u32;
                    let node = &mut self.clients[c];
                    node.peak_inrange_aps = node.peak_inrange_aps.max(inrange);
                }
                for c in 0..self.clients.len() {
                    let occupancy = self
                        .mover_cells
                        .cell_of(c)
                        .map_or(1, |key| self.mover_cells.movers_in(key).len())
                        .max(1) as u32;
                    self.clients[c].cell_occupancy = occupancy;
                }
                // Drop scan entries not refreshed in 5 s from the heard
                // set. Both consumers filter at ≤ 3 s, so pruning at 5 s
                // can never change what they see.
                for c in 0..self.clients.len() {
                    let ClientNode { scan, heard, .. } = &mut self.clients[c];
                    heard.retain(|slot| {
                        scan[slot].is_some_and(|c| now.saturating_since(c.last_heard) <= HEARD_TTL)
                    });
                }
                for ap in 0..self.aps.len() {
                    // An AP with no stations has nothing to expire:
                    // `expire_idle` over an empty table is a no-op, so
                    // skipping it cannot change event order. This turns
                    // the 1 Hz full-fleet walk into O(associated APs)
                    // of real work on metro-scale worlds.
                    if self.aps[ap].mac.station_count() == 0 {
                        continue;
                    }
                    let mut actions = self.aps[ap].mac.expire_idle(now);
                    self.process_ap_actions(ap, &mut actions, queue, now);
                }
                queue.push(now + Duration::from_secs(1), Event::Maintenance);
            }
        }
    }
}

/// Split a tagged payload into its protocol tag and body. Borrows — the
/// per-frame hot path must not copy payloads just to look at them.
fn unwrap_proto(payload: &[u8]) -> Option<(u8, &[u8])> {
    match payload {
        [proto, body @ ..] => Some((*proto, body)),
        [] => None,
    }
}

/// Deterministic per-run performance counters, reported alongside the
/// [`RunResult`] by [`run_with_diagnostics`].
///
/// These are intentionally **not** part of `RunRecord` JSON: the record is
/// the content-addressed campaign cache format and must stay byte-identical
/// for a given `WorldConfig`, while throughput-style numbers derived from
/// these counters (events/sec) mix in wall-clock time. The campaign layer
/// reports them on stderr instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDiagnostics {
    /// Events delivered by the queue over the run (deterministic).
    pub events_delivered: u64,
    /// High-water mark of **live** scheduled events (deterministic).
    /// Cancelled-but-still-queued entries do not count — see
    /// `EventQueue::peak_depth`.
    pub peak_queue_depth: usize,
    /// High-water mark of APs inside any client's 400 m hearing disc,
    /// sampled at 1 Hz through the spatial grid (deterministic; the max
    /// over the fleet).
    pub peak_inrange_aps: u32,
    /// Grid-cell crossings across the whole fleet, from the incremental
    /// mover index (deterministic; per-client splits are in
    /// [`RunResult::per_client`]).
    pub client_cell_crossings: u64,
}

/// Run one experiment to completion.
pub fn run(config: WorldConfig) -> RunResult {
    run_with_diagnostics(config).0
}

/// Run one experiment to completion, also reporting engine counters.
pub fn run_with_diagnostics(config: WorldConfig) -> (RunResult, RunDiagnostics) {
    let duration = config.duration;
    let (mut world, mut queue) = World::new(config);
    run_until(&mut queue, &mut world, Instant::ZERO + duration);
    let diagnostics = RunDiagnostics {
        events_delivered: queue.delivered(),
        peak_queue_depth: queue.peak_depth(),
        peak_inrange_aps: world
            .clients
            .iter()
            .map(|c| c.peak_inrange_aps)
            .max()
            .unwrap_or(0),
        client_cell_crossings: world
            .clients
            .iter()
            .map(|c| c.counters.cell_crossings)
            .sum(),
    };
    (world.result(), diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::route::Route;

    fn site(id: u32, x: f64, channel: Channel, backhaul_bps: u64) -> ApSite {
        ApSite {
            id,
            position: Point::new(x, 0.0),
            channel,
            backhaul_bps,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(400),
        }
    }

    fn static_world(sites: Vec<ApSite>, spider: SpiderConfig, secs: u64) -> WorldConfig {
        WorldConfig::new(
            42,
            sites,
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            spider,
            Duration::from_secs(secs),
        )
    }

    #[test]
    fn stationary_client_joins_and_transfers() {
        let cfg = static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        );
        let result = run(cfg);
        assert_eq!(
            result.assoc_failures, 0,
            "clean channel at 10 m must associate"
        );
        assert!(result.join_times.count() >= 1, "no successful join");
        assert!(
            result.total_bytes > 100_000,
            "only {} bytes",
            result.total_bytes
        );
        // 2 Mb/s backhaul = 250 kB/s ceiling; TCP should get most of it.
        let kbps = result.avg_throughput_kbps();
        assert!((100.0..260.0).contains(&kbps), "throughput {kbps} kB/s");
        assert!(
            result.connectivity > 0.8,
            "connectivity {}",
            result.connectivity
        );
    }

    #[test]
    fn two_aps_on_one_channel_aggregate_backhaul() {
        // The Fig. 9 effect: two 2 Mb/s backhauls on one channel ≈ double
        // the single-AP throughput.
        let one = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        let two = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH1, 2_000_000),
            ],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        assert!(two.max_concurrent_aps >= 2, "did not hold 2 concurrent APs");
        let ratio = two.avg_throughput_bps / one.avg_throughput_bps;
        assert!(
            (1.5..2.5).contains(&ratio),
            "aggregation ratio {ratio}: one {} two {}",
            one.avg_throughput_kbps(),
            two.avg_throughput_kbps()
        );
    }

    #[test]
    fn single_ap_config_never_holds_two() {
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH1, 2_000_000),
            ],
            SpiderConfig::single_channel_single_ap(Channel::CH1),
            20,
        ));
        assert_eq!(result.max_concurrent_aps, 1);
    }

    #[test]
    fn wrong_channel_yields_nothing() {
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            10,
        ));
        assert_eq!(result.total_bytes, 0);
        assert_eq!(result.join_times.count(), 0);
    }

    #[test]
    fn multi_channel_schedule_switches_and_transfers() {
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH6, 2_000_000),
            ],
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
            30,
        ));
        assert!(
            result.switch_count > 50,
            "only {} switches",
            result.switch_count
        );
        assert!(result.switch_latencies.count() > 0);
        assert!(
            result.total_bytes > 0,
            "no data through a multi-channel schedule"
        );
    }

    #[test]
    fn stock_driver_scans_joins_and_transfers() {
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::stock_madwifi(),
            40,
        ));
        // The idle scan must find channel 6 and camp there.
        assert!(result.join_times.count() >= 1, "stock driver never joined");
        assert!(result.total_bytes > 0);
        assert_eq!(result.max_concurrent_aps, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            run(static_world(
                vec![
                    site(1, 0.0, Channel::CH1, 2_000_000),
                    site(2, 5.0, Channel::CH1, 1_000_000),
                ],
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                15,
            ))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.dhcp_attempts, b.dhcp_attempts);
        assert_eq!(a.switch_count, b.switch_count);
    }

    #[test]
    fn drive_by_produces_bounded_encounter() {
        // A vehicle passing one AP at 10 m/s: data flows only near it.
        let route = Route::straight(Point::new(-1000.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let cfg = WorldConfig::new(
            7,
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            ClientMotion::Route(vehicle),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(200),
        );
        let result = run(cfg);
        assert!(result.join_times.count() >= 1, "drive-by never joined");
        assert!(result.total_bytes > 0);
        // Connectivity is bounded by the encounter window (~20 s of 200 s).
        assert!(
            result.connectivity < 0.35,
            "connectivity {} too high for a drive-by",
            result.connectivity
        );
        let mut disruptions = result.disruption_durations.clone();
        assert!(
            disruptions.quantile(1.0) > 50.0,
            "should see a long disruption"
        );
    }

    #[test]
    fn psm_aging_punishes_long_absences() {
        // Same world, two slice lengths: short slices stay inside the AP's
        // ~256 ms power-save aging horizon, long ones do not.
        let mk = |slice_ms: u64| {
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = SchedulePolicy::equal_three(Duration::from_millis(slice_ms));
            run(static_world(
                vec![site(1, 0.0, Channel::CH1, 4_000_000)],
                spider,
                40,
            ))
        };
        let short = mk(66);
        let long = mk(333);
        assert!(
            short.total_bytes > 3 * long.total_bytes,
            "66 ms slices ({}) must far out-deliver 333 ms ({})",
            short.total_bytes,
            long.total_bytes
        );
        assert!(long.psm_drops > 0, "long absences must age PSM frames out");
    }

    #[test]
    fn rssi_floor_gates_far_joins() {
        // An AP at 120 m is audible (beacons decode sometimes) but below
        // the −85 dBm join floor; the driver must not attempt it.
        let far = ApSite {
            id: 1,
            position: Point::new(0.0, 120.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        let gated = run(WorldConfig::new(
            42,
            vec![far.clone()],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(20),
        ));
        assert_eq!(gated.assoc_attempts, 0, "far AP must not be attempted");
        // Lowering the floor re-enables the attempt.
        let mut greedy_cfg = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        greedy_cfg.min_join_rssi_dbm = -200.0;
        let greedy = run(WorldConfig::new(
            42,
            vec![far],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            greedy_cfg,
            Duration::from_secs(20),
        ));
        assert!(
            greedy.assoc_attempts > 0,
            "without the floor the driver tries"
        );
    }

    #[test]
    fn stock_setup_delay_postpones_the_join() {
        // With a 10 s scan/supplicant dead time, no join can complete in
        // the first 10 s.
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::stock_madwifi(),
            40,
        ));
        assert!(result.join_times.count() >= 1, "stock must eventually join");
        // First delivery can't precede the setup delay: connectivity over
        // 40 s is bounded accordingly.
        assert!(
            result.connectivity < 0.75,
            "setup delay must cost early seconds: connectivity {}",
            result.connectivity
        );
    }

    #[test]
    fn segmented_plan_paces_the_download() {
        // A streaming plan (1 MB objects, 4 s think) must move data in
        // bursts and far less of it than a saturating plan.
        let mut cfg = static_world(
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        );
        cfg.plan = workload::downloads::DownloadPlan::Segmented {
            object_bytes: 1_000_000,
            think: Duration::from_secs(4),
        };
        let segmented = run(cfg);
        let saturating = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        ));
        assert!(segmented.total_bytes > 1_000_000, "streams some objects");
        assert!(
            segmented.total_bytes < saturating.total_bytes,
            "think time must reduce volume: {} vs {}",
            segmented.total_bytes,
            saturating.total_bytes
        );
        // Think pauses show as sub-full connectivity.
        assert!(segmented.connectivity < saturating.connectivity);
    }

    #[test]
    fn adaptive_channel_follows_the_aps() {
        // All APs on channel 11; the adaptive policy must discover that and
        // move off its initial channel 1 to transfer data.
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH11, 2_000_000),
                site(2, 5.0, Channel::CH11, 2_000_000),
            ],
            SpiderConfig::adaptive_channel(),
            40,
        ));
        assert!(
            result.join_times.count() >= 1,
            "adaptive policy never joined"
        );
        assert!(result.total_bytes > 0, "adaptive policy moved no data");
    }

    #[test]
    fn adaptive_channel_stays_when_home_is_best() {
        // Candidates only on channel 1: the policy must not wander off and
        // lose throughput relative to a pinned single channel.
        let pinned = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        ));
        let adaptive = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::adaptive_channel(),
            40,
        ));
        assert!(
            adaptive.total_bytes as f64 > 0.7 * pinned.total_bytes as f64,
            "adaptive {} vs pinned {} bytes",
            adaptive.total_bytes,
            pinned.total_bytes
        );
    }

    #[test]
    fn ablation_configs_run() {
        for spider in [
            SpiderConfig::ablate_history(Channel::CH1),
            SpiderConfig::ablate_lease_cache(Channel::CH1),
            SpiderConfig::ablate_reduced_timers(Channel::CH1),
            SpiderConfig::ablate_parallel_join(Channel::CH1),
        ] {
            let result = run(static_world(
                vec![site(1, 0.0, Channel::CH1, 2_000_000)],
                spider,
                20,
            ));
            assert!(result.total_bytes > 0, "ablation config moved no data");
        }
    }

    #[test]
    fn backhaul_is_the_bottleneck_not_the_air() {
        // 500 kb/s backhaul vs 11 Mb/s air: throughput pins near the
        // backhaul rate (Reno over a 64-packet drop-tail queue with a
        // 256 kB window runs in persistent deep congestion, so utilization
        // sits well below 100% — but far above what the air would limit).
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 500_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        let kbps = result.avg_throughput_kbps();
        assert!(
            (15.0..70.0).contains(&kbps),
            "throughput {kbps} kB/s vs 62.5 cap"
        );
        // The air could carry ~20× more; the wired side is the bottleneck.
        assert!(result.backhaul_drops > 0 || kbps > 40.0);
    }

    #[test]
    fn per_client_counters_cover_the_single_client_world() {
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        assert_eq!(result.per_client.len(), 1, "one slot for the one client");
        assert_eq!(result.per_client[0].bytes, result.total_bytes);
        assert_eq!(
            result.per_client[0].joins as usize,
            result.join_times.count()
        );
    }

    #[test]
    fn two_colocated_clients_split_the_backhaul() {
        let mk = |fleet: Vec<ClientMotion>| {
            let mut cfg = static_world(
                vec![site(1, 0.0, Channel::CH1, 2_000_000)],
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                30,
            );
            cfg.fleet = fleet;
            run(cfg)
        };
        let alone = mk(vec![]);
        let pair = mk(vec![ClientMotion::Fixed(Point::new(0.0, 10.0))]);
        assert_eq!(pair.per_client.len(), 2);
        assert!(pair.per_client[0].bytes > 0, "client 0 starved");
        assert!(pair.per_client[1].bytes > 0, "client 1 starved");
        assert_eq!(
            pair.per_client.iter().map(|c| c.bytes).sum::<u64>(),
            pair.total_bytes,
            "per-client bytes must partition the fleet total"
        );
        // Endogenous contention: sharing one 2 Mb/s backhaul must cost
        // client 0 real throughput relative to running alone.
        assert!(
            pair.per_client[0].bytes < alone.total_bytes,
            "contended {} vs alone {}",
            pair.per_client[0].bytes,
            alone.total_bytes
        );
    }

    #[test]
    fn fleet_runs_are_byte_identical_across_repeats() {
        let mk = || {
            let mut cfg = static_world(
                vec![
                    site(1, 0.0, Channel::CH1, 2_000_000),
                    site(2, 40.0, Channel::CH1, 2_000_000),
                ],
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                20,
            );
            cfg.fleet = vec![
                ClientMotion::Fixed(Point::new(10.0, 10.0)),
                ClientMotion::Fixed(Point::new(40.0, 10.0)),
            ];
            run(cfg)
        };
        let a = crate::report::RunRecord::to_json(&mk()).expect("serialize");
        let b = crate::report::RunRecord::to_json(&mk()).expect("serialize");
        assert_eq!(a, b, "same fleet config must replay byte-identically");
    }

    #[test]
    fn convoy_members_each_cross_cells() {
        let route = Route::straight(Point::new(-500.0, 0.0), Point::new(500.0, 0.0));
        let lead = Vehicle::new(route, 10.0, Instant::ZERO);
        let mut cfg = WorldConfig::new(
            7,
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            ClientMotion::Route(lead.clone()),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(100),
        );
        cfg.fleet = crate::fleet::convoy(&ClientMotion::Route(lead), 2, Duration::from_secs(5));
        let result = run(cfg);
        assert_eq!(result.per_client.len(), 3);
        for (i, c) in result.per_client.iter().enumerate() {
            assert!(
                c.cell_crossings >= 2,
                "client {i} crossed only {} cells",
                c.cell_crossings
            );
        }
    }
}
