//! The full-system simulation: one vehicle, many APs, and the Spider
//! driver (or a baseline) in between.
//!
//! This module is the substitute for the paper's outdoor testbed. It wires
//! together every substrate crate under a single deterministic event loop:
//!
//! * **Air interface** — frames pay airtime on a per-channel serialized
//!   medium; delivery is evaluated *at arrival* against the client radio's
//!   tuning (an AP's association or DHCP response that lands while the
//!   radio serves another channel is simply lost — the paper's central
//!   failure mode) and the PHY's distance-dependent loss.
//! * **APs** — `wifi-mac::ApMac` (with honest PSM buffering) plus a
//!   `dhcp::DhcpServer` with per-AP response delays, plus a shaped
//!   backhaul (`workload::SerialLink`) behind which a `tcp_lite`
//!   bulk sender plays the content server.
//! * **Client** — a `wifi-mac::Radio` scheduled by the configured
//!   [`SchedulePolicy`], up to seven
//!   virtual interfaces each running the join FSM, DHCP client, and a TCP
//!   receiver; opportunistic scanning feeds the selection heuristic.
//!
//! Protocol discrimination on the data path uses a 1-byte IP-protocol tag
//! (17 = UDP/DHCP, 6 = TCP) prefixed to payloads — the moral equivalent of
//! the IP header's protocol field.
//!
//! Deliberate simplification (see DESIGN.md): management and DHCP frames
//! are single-shot (no MAC ARQ), matching the paper's join model where
//! each lost handshake message costs a protocol timeout; TCP data frames
//! get the standard 802.11 retry budget folded into an expected airtime
//! and residual loss.
//!
//! Debug taps (stderr, env-gated, zero-cost when unset):
//! `SPIDER_DEBUG_TCP` dumps per-second sender state, `SPIDER_DEBUG_RTO`
//! logs every RTO event, `SPIDER_DEBUG_MEDIUM` logs per-second medium
//! backlog, `SPIDER_DEBUG_REBUF` logs failed in-flight rebuffers, and
//! `SPIDER_DEBUG_BH` prints per-AP backhaul drop totals at the end.

use std::cell::Cell;

use dhcp::client::{DhcpAction, DhcpClient, Lease};
use dhcp::message::DhcpMessage;
use dhcp::server::{DhcpServer, DhcpServerConfig};
use geo::{GridIndex, MoverIndex, RankedSet};
use mobility::deployment::ApSite;
use mobility::geometry::Point;
use mobility::route::Vehicle;
use sim_engine::queue::EventQueue;
use sim_engine::rng::Rng;
use sim_engine::runner::{run_until, Handler};
use sim_engine::stats::Samples;
use sim_engine::time::{Duration, Instant};
use sim_engine::wire::{Bytes, Writer};
use tcp_lite::connection::{BulkReceiver, BulkSender, ReceiverAction, SenderAction};
use tcp_lite::segment::Segment;
use tcp_lite::TcpConfig;
use wifi_mac::addr::MacAddr;
use wifi_mac::ap::{ApAction, ApConfig, ApMac};
use wifi_mac::channel::Channel;
use wifi_mac::client::{Action as MacAction, ClientMac, JoinConfig};
use wifi_mac::frame::{Frame, FrameBody};
use wifi_mac::phy::PhyConfig;
use wifi_mac::radio::{Radio, RadioConfig};
use workload::downloads::DownloadPlan;
use workload::shaper::SerialLink;

use crate::config::{SchedulePolicy, SpiderConfig};
use crate::history::ApHistory;
use crate::intern::MacIntern;
use crate::metrics::Metrics;
use crate::selection::{select_aps, Candidate};

/// IP protocol numbers used as payload tags.
const PROTO_UDP: u8 = 17;
const PROTO_TCP: u8 = 6;

/// Is the named `SPIDER_DEBUG_*` stderr gate set? The one sanctioned
/// environment read in the simulator: it only decides whether debug
/// lines go to stderr, never feeds simulation state, so RunRecords are
/// byte-identical with the gates on or off (ci.sh proves exactly that
/// by diffing runs under different environments).
fn debug_env(name: &str) -> bool {
    // simlint: allow(env-read) — debug-only stderr gate; never reaches simulation state or RunRecords
    std::env::var(name).is_ok()
}

/// Where the client is over time.
#[derive(Debug, Clone)]
pub enum ClientMotion {
    /// Stationary (the lab micro-benchmarks of §4.2 and Figs. 7–9).
    Fixed(Point),
    /// Driving a route (every outdoor experiment).
    Route(Vehicle),
}

impl ClientMotion {
    fn position(&self, now: Instant) -> Point {
        match self {
            ClientMotion::Fixed(p) => *p,
            ClientMotion::Route(v) => v.position_at(now),
        }
    }
}

/// Everything a run needs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every random draw derives from it.
    pub seed: u64,
    /// PHY model.
    pub phy: PhyConfig,
    /// Radio switch-cost model.
    pub radio: RadioConfig,
    /// The deployed APs.
    pub sites: Vec<ApSite>,
    /// Client mobility.
    pub motion: ClientMotion,
    /// Driver configuration under test.
    pub spider: SpiderConfig,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Experiment length.
    pub duration: Duration,
    /// One-way wired latency between content server and AP.
    pub backhaul_latency: Duration,
    /// Bytes per saturating TCP connection before it completes and is
    /// reopened (bounds per-connection sequence space).
    pub bytes_per_connection: u64,
    /// What the client fetches: saturating bulk (the paper's evaluation
    /// workload) or segmented objects with think time (streaming-style).
    pub plan: DownloadPlan,
}

impl WorldConfig {
    /// Reasonable defaults around the given sites/motion/driver.
    pub fn new(
        seed: u64,
        sites: Vec<ApSite>,
        motion: ClientMotion,
        spider: SpiderConfig,
        duration: Duration,
    ) -> WorldConfig {
        WorldConfig {
            seed,
            phy: PhyConfig::default(),
            radio: RadioConfig::default(),
            sites,
            motion,
            spider,
            tcp: TcpConfig::default(),
            duration,
            backhaul_latency: Duration::from_millis(20),
            bytes_per_connection: 512 * 1024 * 1024,
            plan: DownloadPlan::Saturating,
        }
    }
}

/// Aggregated outcome of one run; the raw material for every table/figure.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Experiment length.
    pub duration: Duration,
    /// Bytes delivered to the sink.
    pub total_bytes: u64,
    /// Average throughput, bytes/s.
    pub avg_throughput_bps: f64,
    /// Fraction of seconds with non-zero transfer.
    pub connectivity: f64,
    /// Maximal connected runs, seconds (Fig. 10a).
    pub connection_durations: Samples,
    /// Maximal disconnected runs, seconds (Fig. 10b).
    pub disruption_durations: Samples,
    /// Bytes per connected second (Fig. 10c).
    pub instantaneous_bandwidth: Samples,
    /// Link-layer association times, seconds (Fig. 5).
    pub assoc_times: Samples,
    /// Full join times (assoc + DHCP), seconds (Figs. 6/11/12).
    pub join_times: Samples,
    /// Channel-switch latencies, seconds (Table 1).
    pub switch_latencies: Samples,
    /// DHCP acquisitions started.
    pub dhcp_attempts: u64,
    /// DHCP acquisitions failed (Table 3).
    pub dhcp_failures: u64,
    /// Associations started.
    pub assoc_attempts: u64,
    /// Associations failed.
    pub assoc_failures: u64,
    /// Channel switches performed.
    pub switch_count: u64,
    /// Peak simultaneous associations (§4.4).
    pub max_concurrent_aps: usize,
    /// Seconds spent with exactly `i` concurrent associations.
    pub concurrency_seconds: Vec<f64>,
    /// TCP retransmission timeouts observed across all connections.
    pub tcp_rtos: u64,
    /// Packets dropped at backhaul queue bounds (down + up).
    pub backhaul_drops: u64,
    /// Downlink frames dropped on PSM buffer overflow.
    pub psm_drops: u64,
    /// Downlink frames dropped because the station was not associated.
    pub unassociated_drops: u64,
    /// Data frames dropped at the bounded air transmit queue.
    pub air_drops: u64,
}

impl RunResult {
    /// DHCP failure rate (Table 3).
    pub fn dhcp_failure_rate(&self) -> f64 {
        if self.dhcp_attempts == 0 {
            0.0
        } else {
            self.dhcp_failures as f64 / self.dhcp_attempts as f64
        }
    }

    /// Average throughput in the paper's KB/s units.
    pub fn avg_throughput_kbps(&self) -> f64 {
        self.avg_throughput_bps / 1000.0
    }
}

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// An AP's periodic beacon timer.
    BeaconTick { ap: usize },
    /// A frame from AP `ap` reaches the client's antenna.
    AirToClient { ap: usize, frame: Frame },
    /// A frame from the client reaches AP `ap`.
    AirToAp { ap: usize, frame: Frame },
    /// Link-layer join timer for an interface.
    MacTimer { iface: usize, gen: u64, token: u64 },
    /// DHCP retransmit timer for an interface.
    DhcpTimer { iface: usize, gen: u64, token: u64 },
    /// TCP sender RTO at the content server behind AP `ap`.
    SenderTimer { ap: usize, conn: u64, token: u64 },
    /// A TCP segment from the server arrives at AP `ap`.
    BackhaulToAp { ap: usize, payload: Bytes },
    /// A client TCP segment (ACK) arrives at the server behind AP `ap`.
    BackhaulToServer { ap: usize, payload: Bytes },
    /// The AP's local DHCP server finished processing; deliver the reply
    /// into the AP's downlink path.
    DhcpReplyReady {
        ap: usize,
        station: MacAddr,
        payload: Bytes,
    },
    /// Move to schedule slice `idx`.
    ScheduleSlice { idx: usize },
    /// PSM announcements have drained; begin the hardware retune.
    SwitchBegin { target: Channel },
    /// The radio finished retuning.
    SwitchDone,
    /// Periodic driver evaluation: teardown dead links, start joins.
    Evaluate,
    /// Adaptive-channel policy: reconsider which channel to dwell on.
    Reconsider,
    /// A segmented download's think time elapsed: open the next object.
    NextObject {
        /// Interface whose stream continues.
        iface: usize,
        /// Generation guard.
        gen: u64,
        /// AP behind the stream.
        ap: usize,
    },
    /// A deferred join begins (stock-path scan/supplicant setup elapsed).
    BeginJoin {
        /// Interface reserved for the join.
        iface: usize,
        /// Generation guard.
        gen: u64,
        /// Target AP index.
        ap: usize,
    },
    /// Periodic housekeeping (AP idle expiry).
    Maintenance,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IfaceState {
    Idle,
    Associating,
    Acquiring,
    Connected,
}

/// One virtual interface of the client.
struct Iface {
    addr: MacAddr,
    state: IfaceState,
    /// Guards stale timers when the interface is re-purposed.
    gen: u64,
    mac: Option<ClientMac>,
    dhcp: Option<DhcpClient>,
    receiver: Option<BulkReceiver>,
    ap: Option<usize>,
    conn: Option<u64>,
    join_started: Option<Instant>,
}

impl Iface {
    fn new(addr: MacAddr) -> Iface {
        Iface {
            addr,
            state: IfaceState::Idle,
            gen: 0,
            mac: None,
            dhcp: None,
            receiver: None,
            ap: None,
            conn: None,
            join_started: None,
        }
    }

    fn reset(&mut self) {
        self.state = IfaceState::Idle;
        self.gen += 1;
        self.mac = None;
        self.dhcp = None;
        self.receiver = None;
        self.ap = None;
        self.conn = None;
        self.join_started = None;
    }
}

/// One AP node: MAC + DHCP server + backhaul + content server.
struct ApNode {
    site: ApSite,
    mac: ApMac,
    dhcp: DhcpServer,
    /// Server → AP pipe (the shaped backhaul).
    downlink: SerialLink,
    /// AP → server pipe for ACKs.
    uplink: SerialLink,
    /// Live content-server connections, sorted by connection id (ids are
    /// minted monotonically, so pushes keep the order). A handful at most
    /// per AP, so a linear scan beats an ordered map on the hot path.
    senders: Vec<(u64, BulkSender)>,
}

impl ApNode {
    fn sender_mut(&mut self, conn: u64) -> Option<&mut BulkSender> {
        self.senders
            .iter_mut()
            .find(|(c, _)| *c == conn)
            .map(|(_, s)| s)
    }

    fn sender(&self, conn: u64) -> Option<&BulkSender> {
        self.senders
            .iter()
            .find(|(c, _)| *c == conn)
            .map(|(_, s)| s)
    }

    fn remove_sender(&mut self, conn: u64) {
        // `retain` keeps the remaining connections in id order.
        self.senders.retain(|(c, _)| *c != conn);
    }
}

/// How long an unrefreshed scan entry stays in the heard set. Must
/// exceed every consumer's freshness window (`select_aps`: 2 s,
/// `reconsider`: 3 s) for the heard-set walk to be output-identical to
/// a full scan-table sweep.
const HEARD_TTL: Duration = Duration::from_secs(5);

struct World {
    cfg: WorldConfig,
    aps: Vec<ApNode>,
    /// BSSID → AP index, interned at build time; also drives every
    /// MacAddr-ordered iteration over per-AP state (see [`MacIntern`]).
    bssids: MacIntern,
    radio: Radio,
    ifaces: Vec<Iface>,
    /// Scan candidates, indexed by AP id (dense; `None` = never heard).
    /// MacAddr-ordered iteration goes through `heard` (see below).
    scan: Vec<Option<Candidate>>,
    /// Spatial grid over the deployment's AP positions (dense AP slots).
    /// Range queries (`count_in_disc`) replace linear scans over `aps`.
    grid: GridIndex,
    /// Cell membership of the moving client (mover slot 0), updated
    /// incrementally at Maintenance cadence.
    client_cell: MoverIndex,
    /// The **heard set**: AP slots with a recorded scan entry, iterated
    /// in MacAddr-rank order. Candidate collection walks this instead of
    /// the full `bssids.iter_sorted()` table — O(heard), not O(APs) —
    /// and stays byte-identical because `select_aps` (2 s freshness) and
    /// `reconsider`'s scoring (3 s freshness) both filter before
    /// ordering/summing, while entries are pruned here only after 5 s.
    heard: RankedSet,
    /// High-water mark of APs inside the 400 m hearing disc (1 Hz
    /// samples via the grid). Diagnostic only — never in `RunRecord`.
    peak_inrange_aps: u32,
    /// Grid-cell crossings of the client (MoverIndex updates that moved
    /// it). Diagnostic only.
    client_cell_crossings: u64,
    history: ApHistory,
    metrics: Metrics,
    /// Per-channel medium occupancy (next free instant), indexed by
    /// [`Channel::index`]. `Instant::ZERO` means the channel was never
    /// seized — the same default the old map's `or_insert` supplied.
    medium: [Instant; Channel::COUNT],
    /// Spider's per-channel transmit queues (§3): frames bound for an
    /// off-channel AP wait here and flush when the radio arrives.
    /// Indexed by [`Channel::index`]; buffers are reused across swaps.
    tx_queues: [Vec<(Instant, usize, Frame)>; Channel::COUNT],
    /// Spare queue buffer swapped against `tx_queues` on channel switch so
    /// steady-state flushes never allocate.
    tx_spare: Vec<(Instant, usize, Frame)>,
    /// Reusable encode buffer for the payload-wrapping hot path.
    scratch: Writer,
    /// Exact-key one-entry caches for the pure per-frame math. Keys are
    /// the full bit patterns of the inputs, so a hit returns the *same*
    /// f64 the recomputation would — determinism-safe by construction.
    /// They earn their keep because one delivered frame touches the same
    /// `(distance, len)` several times in a single event (send airtime +
    /// delivery probability, then the ACK it triggers at the same `now`).
    pos_cache: Cell<Option<(Instant, Point)>>,
    /// Reusable per-event action buffers: the hot handlers `mem::take`
    /// one, let the protocol layer push into it, drain it, and put it
    /// back — steady state does zero action-Vec allocations per event.
    ap_actions_scratch: Vec<ApAction>,
    sender_actions_scratch: Vec<SenderAction>,
    receiver_actions_scratch: Vec<ReceiverAction>,
    fep_cache: Cell<Option<(u64, u32, f64)>>,
    rssi_cache: Cell<Option<(u64, f64)>>,
    rng_phy: Rng,
    rng_ap: Rng,
    rng_radio: Rng,
    rng_misc: Rng,
    next_conn: u64,
    /// Stock-driver idle scan rotation index.
    scan_channel_idx: usize,
    client_drops_radio_busy: u64,
    tcp_rtos: u64,
    air_drops: u64,
    dbg_down_airtime: Duration,
    dbg_up_airtime: Duration,
    dbg_down_frames: u64,
    dbg_up_frames: u64,
    /// Stock DHCP clients go idle after a failed acquisition ("idle for 60
    /// seconds if it fails"); no joins start before this instant.
    dhcp_idle_until: Instant,
}

impl World {
    fn new(cfg: WorldConfig) -> (World, EventQueue<Event>) {
        let mut master = Rng::new(cfg.seed);
        let rng_phy = master.fork(1);
        let rng_ap = master.fork(2);
        let rng_radio = master.fork(3);
        let mut rng_misc = master.fork(4);

        let aps: Vec<ApNode> = cfg
            .sites
            .iter()
            .map(|site| {
                let ssid = format!("open-{}", site.id);
                let ap_cfg = ApConfig::open(site.id, &ssid, site.channel);
                let dhcp_cfg =
                    DhcpServerConfig::for_ap(site.id, site.dhcp_delay_min, site.dhcp_delay_max);
                ApNode {
                    site: site.clone(),
                    mac: ApMac::new(ap_cfg),
                    dhcp: DhcpServer::new(dhcp_cfg),
                    downlink: SerialLink::new(site.backhaul_bps, cfg.backhaul_latency),
                    uplink: SerialLink::new(site.backhaul_bps, cfg.backhaul_latency),
                    senders: Vec::new(),
                }
            })
            .collect();
        let bssids = MacIntern::build(aps.iter().map(|a| a.mac.bssid()));

        let initial_channel = match &cfg.spider.schedule {
            SchedulePolicy::SingleChannel(c) => *c,
            SchedulePolicy::MultiChannel { slices } => slices[0].0,
            SchedulePolicy::ScanWhenIdle { .. } => Channel::CH1,
            SchedulePolicy::AdaptiveChannel { .. } => Channel::CH1,
        };
        let radio = Radio::new(cfg.radio.clone(), initial_channel);
        let ifaces = (0..cfg.spider.max_ifaces)
            .map(|i| Iface::new(MacAddr::local(1_000 + i as u32)))
            .collect();

        let mut queue = EventQueue::new();
        // Stagger beacons so the channel isn't beacon-synchronized.
        for i in 0..aps.len() {
            let offset = Duration::from_micros(rng_misc.range_u64(0, 102_400));
            queue.push(Instant::ZERO + offset, Event::BeaconTick { ap: i });
        }
        // De-aligned from slice boundaries so periodic evaluation never
        // lands at the instant the radio is about to leave the channel.
        queue.push(Instant::from_millis(50), Event::Evaluate);
        queue.push(Instant::from_secs(1), Event::Maintenance);
        if let SchedulePolicy::MultiChannel { slices } = &cfg.spider.schedule {
            assert!(!slices.is_empty(), "empty multi-channel schedule");
            queue.push(Instant::ZERO, Event::ScheduleSlice { idx: 0 });
        }
        if let SchedulePolicy::AdaptiveChannel { reconsider, .. } = &cfg.spider.schedule {
            queue.push(Instant::ZERO + *reconsider, Event::Reconsider);
        }

        let scan = vec![None; aps.len()];
        // Cell edge 200 m: a 400 m hearing disc touches at most a 5×5
        // block of cells, and a vehicular client crosses a cell boundary
        // every ten-odd seconds, so incremental mover updates are rare.
        const CELL_M: f64 = 200.0;
        let grid = GridIndex::build(
            &aps.iter().map(|a| a.site.position).collect::<Vec<_>>(),
            CELL_M,
        );
        let client_cell = MoverIndex::new(CELL_M, 1);
        let heard = RankedSet::new(bssids.ranks());
        let world = World {
            cfg,
            aps,
            bssids,
            grid,
            client_cell,
            heard,
            peak_inrange_aps: 0,
            client_cell_crossings: 0,
            radio,
            ifaces,
            scan,
            history: ApHistory::new(),
            metrics: Metrics::new(),
            medium: [Instant::ZERO; Channel::COUNT],
            tx_queues: std::array::from_fn(|_| Vec::new()),
            tx_spare: Vec::new(),
            scratch: Writer::with_capacity(256),
            pos_cache: Cell::new(None),
            ap_actions_scratch: Vec::new(),
            sender_actions_scratch: Vec::new(),
            receiver_actions_scratch: Vec::new(),
            fep_cache: Cell::new(None),
            rssi_cache: Cell::new(None),
            rng_phy,
            rng_ap,
            rng_radio,
            rng_misc,
            next_conn: 1,
            scan_channel_idx: 0,
            client_drops_radio_busy: 0,
            tcp_rtos: 0,
            air_drops: 0,
            dbg_down_airtime: Duration::ZERO,
            dbg_up_airtime: Duration::ZERO,
            dbg_down_frames: 0,
            dbg_up_frames: 0,
            dhcp_idle_until: Instant::ZERO,
        };
        (world, queue)
    }

    fn client_pos(&self, now: Instant) -> Point {
        if let Some((t, p)) = self.pos_cache.get() {
            if t == now {
                return p;
            }
        }
        let p = self.cfg.motion.position(now);
        self.pos_cache.set(Some((now, p)));
        p
    }

    /// Per-attempt frame error at `dist` for a `len`-byte frame, memoized
    /// on the exact input bits (see the cache fields' doc comment).
    fn frame_error_at(&self, dist: f64, len: usize) -> f64 {
        let key = (dist.to_bits(), len as u32);
        if let Some((d, l, e)) = self.fep_cache.get() {
            if (d, l) == key {
                return e;
            }
        }
        let e = self.cfg.phy.frame_error_prob(dist, len);
        self.fep_cache.set(Some((key.0, key.1, e)));
        e
    }

    /// RSSI at `dist`, memoized on the exact input bits.
    fn rssi_at(&self, dist: f64) -> f64 {
        if let Some((d, rssi)) = self.rssi_cache.get() {
            if d == dist.to_bits() {
                return rssi;
            }
        }
        let rssi = self.cfg.phy.link_at(dist).rssi_dbm;
        self.rssi_cache.set(Some((dist.to_bits(), rssi)));
        rssi
    }

    /// Wrap an encoded payload behind a protocol tag using the world's
    /// scratch buffer: one `Bytes` allocation, no intermediate vector.
    fn wrap_scratch(scratch: &mut Writer, proto: u8, encode: impl FnOnce(&mut Writer)) -> Bytes {
        scratch.clear();
        scratch.put_u8(proto);
        encode(scratch);
        scratch.to_bytes()
    }

    /// The scan-table entry for `bssid`, if that AP has been heard.
    fn candidate_for(&self, bssid: MacAddr) -> Option<&Candidate> {
        self.bssids.get(bssid).and_then(|id| self.scan[id].as_ref())
    }

    fn distance_to(&self, ap: usize, now: Instant) -> f64 {
        self.client_pos(now).distance(self.aps[ap].site.position)
    }

    /// Seize the channel medium for `airtime`; returns the arrival instant.
    fn seize_medium(&mut self, channel: Channel, now: Instant, airtime: Duration) -> Instant {
        let free = &mut self.medium[channel.index()];
        let start = now.max(*free);
        let arrival = start + airtime;
        *free = arrival;
        arrival
    }

    /// Frames older than this are dropped from a per-channel TX queue
    /// instead of being flushed (they are protocol-stale by then).
    const TX_QUEUE_TTL: Duration = Duration::from_secs(1);
    /// An AP's share of the air is a bounded transmit queue (a real AP's
    /// TX ring is ~64 frames): data frames that would wait longer than
    /// this for the medium are dropped, giving TCP its loss signal when
    /// the backhaul outruns the on-channel airtime.
    const AIR_QUEUE_BOUND: Duration = Duration::from_millis(500);
    /// Per-channel TX queue depth cap.
    const TX_QUEUE_CAP: usize = 128;

    /// Client transmits `frame` toward AP `ap`. If the radio is on another
    /// channel (or mid-switch), the frame goes into that channel's transmit
    /// queue — Spider keeps "one packet queue per channel that is swapped
    /// in and out of the driver" (§3) — and flushes when the radio arrives.
    fn client_send(
        &mut self,
        ap: usize,
        frame: Frame,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        if !self.radio.can_hear(channel, now) {
            let q = &mut self.tx_queues[channel.index()];
            if q.len() < Self::TX_QUEUE_CAP {
                q.push((now, ap, frame));
            } else {
                self.client_drops_radio_busy += 1;
            }
            return;
        }
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        let dist = self.distance_to(ap, now);
        let (airtime, delivery) = if is_data {
            let e = self.frame_error_at(dist, len);
            (
                self.cfg.phy.expected_data_airtime_from_error(e, len),
                self.cfg.phy.data_delivery_prob_from_error(e),
            )
        } else {
            (
                self.cfg.phy.airtime(len),
                1.0 - self.frame_error_at(dist, len),
            )
        };
        // Uplink frames contend per-frame: the client wins the medium
        // within a couple of frame airtimes even when the AP has a deep
        // committed backlog (a FIFO pipe would wrongly park the client's
        // PSM announcements behind the AP's entire queue).
        let free = &mut self.medium[channel.index()];
        let contention = free.saturating_since(now).min(Duration::from_millis(3));
        let arrival = now + contention + airtime;
        self.dbg_up_airtime += airtime;
        self.dbg_up_frames += 1;
        // The frame still consumes channel capacity.
        *free = (*free).max(now) + airtime;
        if self.rng_phy.chance(delivery) {
            queue.push(arrival, Event::AirToAp { ap, frame });
        }
    }

    /// AP transmits `frame` toward the client after `extra_delay`
    /// (management processing time). Whether the client *hears* it is
    /// decided at arrival.
    fn ap_send(
        &mut self,
        ap: usize,
        frame: Frame,
        extra_delay: Duration,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        if is_data {
            let backlog = self.medium[channel.index()].saturating_since(now);
            if backlog > Self::AIR_QUEUE_BOUND {
                self.air_drops += 1;
                return;
            }
        }
        let airtime = if is_data {
            let dist = self.distance_to(ap, now);
            let e = self.frame_error_at(dist, len);
            self.cfg.phy.expected_data_airtime_from_error(e, len)
        } else {
            self.cfg.phy.airtime(len)
        };
        self.dbg_down_airtime += airtime;
        self.dbg_down_frames += 1;
        let arrival = self.seize_medium(channel, now + extra_delay, airtime);
        queue.push(arrival, Event::AirToClient { ap, frame });
    }

    fn process_ap_actions(
        &mut self,
        ap: usize,
        actions: &mut Vec<ApAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions.drain(..) {
            match action {
                ApAction::Send { delay, frame } => self.ap_send(ap, frame, delay, queue, now),
                ApAction::ToUplink { from, payload } => {
                    self.handle_uplink(ap, from, payload, queue, now)
                }
            }
        }
    }

    /// An uplink payload arrived at the AP from the client: route by the
    /// protocol tag.
    fn handle_uplink(
        &mut self,
        ap: usize,
        station: MacAddr,
        payload: Bytes,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let Some((proto, body)) = unwrap_proto(&payload) else {
            return;
        };
        match proto {
            PROTO_UDP => {
                // DHCP: handled by the AP's embedded server.
                let Ok(msg) = DhcpMessage::decode(body) else {
                    return;
                };
                let node = &mut self.aps[ap];
                if let Some((delay, reply)) = node.dhcp.on_message(&msg, now, &mut self.rng_ap) {
                    let reply_payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_UDP, |w| reply.encode_into(w));
                    queue.push(
                        now + delay,
                        Event::DhcpReplyReady {
                            ap,
                            station,
                            payload: reply_payload,
                        },
                    );
                }
            }
            PROTO_TCP => {
                // ACK toward the content server: ride the uplink pipe. The
                // event keeps the tagged payload (an O(1) Bytes clone); the
                // handler strips the tag on arrival.
                if let Some(arrival) = self.aps[ap].uplink.transmit(now, body.len()) {
                    queue.push(arrival, Event::BackhaulToServer { ap, payload });
                }
            }
            _ => {}
        }
    }

    fn process_sender_actions(
        &mut self,
        ap: usize,
        conn: u64,
        actions: &mut Vec<SenderAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions.drain(..) {
            match action {
                SenderAction::Transmit(seg) => {
                    if let Some(arrival) =
                        self.aps[ap].downlink.transmit(now, seg.wire_len() as usize)
                    {
                        let payload = Self::wrap_scratch(&mut self.scratch, PROTO_TCP, |w| {
                            seg.encode_into(w)
                        });
                        queue.push(arrival, Event::BackhaulToAp { ap, payload });
                    }
                }
                SenderAction::ArmTimer { after, token } => {
                    queue.push(now + after, Event::SenderTimer { ap, conn, token });
                }
                SenderAction::Connected => {}
                SenderAction::Complete => {
                    self.aps[ap].remove_sender(conn);
                    if let Some(iface_idx) = self.iface_for_conn(conn) {
                        let think = self.cfg.plan.think_time();
                        if think.is_zero() {
                            // Saturating plan: reopen immediately.
                            self.open_connection(iface_idx, ap, queue, now);
                        } else {
                            // Segmented plan: pause, then fetch the next
                            // object.
                            let gen = self.ifaces[iface_idx].gen;
                            queue.push(
                                now + think,
                                Event::NextObject {
                                    iface: iface_idx,
                                    gen,
                                    ap,
                                },
                            );
                        }
                    }
                }
                SenderAction::Aborted => {
                    self.aps[ap].remove_sender(conn);
                    // If the client is still bound to this AP, retry with a
                    // fresh connection (the old one died of timeouts).
                    if let Some(iface_idx) = self.iface_for_conn(conn) {
                        self.open_connection(iface_idx, ap, queue, now);
                    }
                }
            }
        }
    }

    fn iface_for_conn(&self, conn: u64) -> Option<usize> {
        self.ifaces
            .iter()
            .position(|i| i.conn == Some(conn) && i.state == IfaceState::Connected)
    }

    /// Open a saturating TCP connection from the server behind `ap` toward
    /// interface `iface_idx`.
    fn open_connection(
        &mut self,
        iface_idx: usize,
        ap: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let isn = self.rng_misc.next_u64() as u32;
        let object = self
            .cfg
            .plan
            .next_object()
            .min(self.cfg.bytes_per_connection);
        let mut sender = BulkSender::new(self.cfg.tcp.clone(), conn, object, isn);
        let mut actions = sender.start(now);
        self.aps[ap].senders.push((conn, sender));
        self.ifaces[iface_idx].conn = Some(conn);
        self.ifaces[iface_idx].receiver = Some(BulkReceiver::new(conn));
        self.process_sender_actions(ap, conn, &mut actions, queue, now);
    }

    fn process_mac_actions(
        &mut self,
        iface_idx: usize,
        actions: Vec<MacAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions {
            match action {
                MacAction::Send(frame) => {
                    if let Some(ap) = self.ifaces[iface_idx].ap {
                        self.client_send(ap, frame, queue, now);
                    }
                }
                MacAction::ArmTimer { after, token } => {
                    let gen = self.ifaces[iface_idx].gen;
                    queue.push(
                        now + after,
                        Event::MacTimer {
                            iface: iface_idx,
                            gen,
                            token,
                        },
                    );
                }
                MacAction::Joined { .. } => self.on_associated(iface_idx, queue, now),
                MacAction::Failed(_) => {
                    self.metrics.assoc_failures += 1;
                    if let Some(ap) = self.ifaces[iface_idx].ap {
                        self.history.record_failure(self.aps[ap].mac.bssid(), now);
                    }
                    self.teardown_iface(iface_idx, now);
                }
            }
        }
    }

    fn on_associated(&mut self, iface_idx: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let started = self.ifaces[iface_idx]
            .join_started
            // simlint: allow(panic-path) — join FSM invariant: an Associating iface always has join_started; silent recovery would corrupt join-time metrics
            .expect("associated without a join start");
        self.metrics
            .assoc_times
            .record_duration(now.saturating_since(started));
        self.ifaces[iface_idx].state = IfaceState::Acquiring;
        self.update_concurrency(now);
        // Kick off DHCP.
        let addr = self.ifaces[iface_idx].addr;
        // simlint: allow(panic-path) — join FSM invariant: an Associating iface always has a target AP; a hole here is a driver bug that must be loud
        let ap = self.ifaces[iface_idx].ap.expect("associated without an AP");
        let bssid = self.aps[ap].mac.bssid();
        let cached = if self.cfg.spider.lease_cache {
            self.history.cached_lease(bssid, now)
        } else {
            None
        };
        let xid_seed = self.rng_misc.next_u64() as u32;
        let mut client = DhcpClient::new(self.cfg.spider.dhcp.clone(), addr.octets(), xid_seed);
        self.metrics.dhcp_attempts += 1;
        let actions = client.start(now, cached);
        self.ifaces[iface_idx].dhcp = Some(client);
        self.process_dhcp_actions(iface_idx, actions, queue, now);
    }

    fn process_dhcp_actions(
        &mut self,
        iface_idx: usize,
        actions: Vec<DhcpAction>,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        for action in actions {
            match action {
                DhcpAction::Send(msg) => {
                    let Some(ap) = self.ifaces[iface_idx].ap else {
                        continue;
                    };
                    let station = self.ifaces[iface_idx].addr;
                    let bssid = self.aps[ap].mac.bssid();
                    let payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_UDP, |w| msg.encode_into(w));
                    let frame = Frame::data_to_ap(station, bssid, payload);
                    self.client_send(ap, frame, queue, now);
                }
                DhcpAction::ArmTimer { after, token } => {
                    let gen = self.ifaces[iface_idx].gen;
                    queue.push(
                        now + after,
                        Event::DhcpTimer {
                            iface: iface_idx,
                            gen,
                            token,
                        },
                    );
                }
                DhcpAction::Bound(lease) => self.on_bound(iface_idx, lease, queue, now),
                DhcpAction::Failed => {
                    self.metrics.dhcp_failures += 1;
                    self.dhcp_idle_until = self
                        .dhcp_idle_until
                        .max(now + self.cfg.spider.dhcp.idle_after_fail);
                    if let Some(ap) = self.ifaces[iface_idx].ap {
                        self.history.record_failure(self.aps[ap].mac.bssid(), now);
                    }
                    self.teardown_iface(iface_idx, now);
                }
            }
        }
    }

    fn on_bound(
        &mut self,
        iface_idx: usize,
        lease: Lease,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let started = self.ifaces[iface_idx]
            .join_started
            // simlint: allow(panic-path) — join FSM invariant: a Bound iface always has join_started; silent recovery would corrupt join-time metrics
            .expect("bound without a join start");
        let join_time = now.saturating_since(started);
        self.metrics.join_times.record_duration(join_time);
        // simlint: allow(panic-path) — join FSM invariant: a Bound iface always has a target AP; a hole here is a driver bug that must be loud
        let ap = self.ifaces[iface_idx].ap.expect("bound without an AP");
        let bssid = self.aps[ap].mac.bssid();
        self.history.record_success(bssid, join_time);
        self.history.store_lease(bssid, lease);
        self.ifaces[iface_idx].state = IfaceState::Connected;
        self.update_concurrency(now);
        self.open_connection(iface_idx, ap, queue, now);
    }

    fn update_concurrency(&mut self, now: Instant) {
        let connected = self
            .ifaces
            .iter()
            .filter(|i| i.state == IfaceState::Connected)
            .count();
        self.metrics.record_concurrency(now, connected);
    }

    fn teardown_iface(&mut self, iface_idx: usize, now: Instant) {
        let iface = &mut self.ifaces[iface_idx];
        if let (Some(ap), Some(conn)) = (iface.ap, iface.conn) {
            self.aps[ap].remove_sender(conn);
        }
        if let Some(dhcp) = iface.dhcp.as_mut() {
            dhcp.abort();
        }
        iface.reset();
        self.update_concurrency(now);
    }

    /// A frame arrived at the client's antenna: deliverable only if the
    /// radio is tuned to the AP's channel and the PHY draw succeeds.
    fn on_air_to_client(
        &mut self,
        ap: usize,
        frame: Frame,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let channel = self.aps[ap].site.channel;
        if !self.radio.can_hear(channel, now) {
            // The station left the channel while this frame was in flight.
            // For a PSM station the AP's MAC-retry failure routes a data
            // frame back into the power-save queue rather than dropping it.
            if let FrameBody::Data(payload) = &frame.body {
                let ok = self.aps[ap]
                    .mac
                    .rebuffer_front(frame.addr1, payload.clone(), now);
                if !ok && debug_env("SPIDER_DEBUG_REBUF") {
                    eprintln!(
                        "t={now} rebuffer FAILED ap={ap} assoc={} psm={} buffered={}",
                        self.aps[ap].mac.is_associated(frame.addr1),
                        self.aps[ap].mac.in_psm(frame.addr1),
                        self.aps[ap].mac.buffered_for(frame.addr1)
                    );
                }
            }
            return;
        }
        let dist = self.distance_to(ap, now);
        let len = frame.wire_len();
        let is_data = matches!(frame.body, FrameBody::Data(_));
        let delivery = if is_data {
            self.cfg
                .phy
                .data_delivery_prob_from_error(self.frame_error_at(dist, len))
        } else {
            1.0 - self.frame_error_at(dist, len)
        };
        if !self.rng_phy.chance(delivery) {
            return;
        }
        // Opportunistic scanning: every beacon/probe-response refreshes the
        // candidate table. `addr2` is always an interned AP bssid here; the
        // lookup canonicalizes it to the dense slot the old map keyed by.
        if let FrameBody::Beacon(b) | FrameBody::ProbeResp(b) = &frame.body {
            if let Some(slot) = self.bssids.get(frame.addr2) {
                let rssi = self.rssi_at(dist);
                self.scan[slot] = Some(Candidate {
                    bssid: frame.addr2,
                    channel: b.channel,
                    rssi_dbm: rssi,
                    last_heard: now,
                });
                self.heard.insert(slot);
            }
        }
        // Route to the interface talking to this AP.
        let Some(iface_idx) = self
            .ifaces
            .iter()
            .position(|i| i.ap == Some(ap) && i.state != IfaceState::Idle)
        else {
            return;
        };
        if frame.addr1 != self.ifaces[iface_idx].addr && !frame.addr1.is_broadcast() {
            return;
        }
        match &frame.body {
            FrameBody::Data(payload) => {
                let Some((proto, body)) = unwrap_proto(payload) else {
                    return;
                };
                match proto {
                    PROTO_UDP => {
                        if let Ok(msg) = DhcpMessage::decode(body) {
                            if let Some(dhcp) = self.ifaces[iface_idx].dhcp.take() {
                                let mut dhcp = dhcp;
                                let actions = dhcp.handle_message(&msg, now);
                                self.ifaces[iface_idx].dhcp = Some(dhcp);
                                self.process_dhcp_actions(iface_idx, actions, queue, now);
                            }
                        }
                    }
                    PROTO_TCP => {
                        if let Some(seg) = Segment::decode(body) {
                            self.on_client_segment(iface_idx, ap, seg, queue, now);
                        }
                    }
                    _ => {}
                }
            }
            _ => {
                if let Some(mut mac) = self.ifaces[iface_idx].mac.take() {
                    let actions = mac.handle_frame(&frame);
                    self.ifaces[iface_idx].mac = Some(mac);
                    self.process_mac_actions(iface_idx, actions, queue, now);
                }
            }
        }
    }

    fn on_client_segment(
        &mut self,
        iface_idx: usize,
        ap: usize,
        seg: Segment,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let Some(mut receiver) = self.ifaces[iface_idx].receiver.take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.receiver_actions_scratch);
        receiver.on_segment_into(&seg, now, &mut actions);
        self.ifaces[iface_idx].receiver = Some(receiver);
        for action in actions.drain(..) {
            match action {
                ReceiverAction::Transmit(ack) => {
                    let station = self.ifaces[iface_idx].addr;
                    let bssid = self.aps[ap].mac.bssid();
                    let payload =
                        Self::wrap_scratch(&mut self.scratch, PROTO_TCP, |w| ack.encode_into(w));
                    let frame = Frame::data_to_ap(station, bssid, payload);
                    self.client_send(ap, frame, queue, now);
                }
                ReceiverAction::Deliver { bytes } => {
                    self.metrics.record_bytes(now, bytes);
                }
                ReceiverAction::Finished => {}
            }
        }
        self.receiver_actions_scratch = actions;
    }

    /// Driver evaluation: tear down links to vanished APs, start new joins,
    /// and (stock driver only) rotate channels while idle.
    fn evaluate(&mut self, queue: &mut EventQueue<Event>, now: Instant) {
        let loss_timeout = self.cfg.spider.ap_loss_timeout;
        // 1. Teardown: APs unheard for too long (left range).
        for idx in 0..self.ifaces.len() {
            if self.ifaces[idx].state == IfaceState::Idle {
                continue;
            }
            let Some(ap) = self.ifaces[idx].ap else {
                continue;
            };
            let bssid = self.aps[ap].mac.bssid();
            let heard_recently = self
                .candidate_for(bssid)
                .is_some_and(|c| now.saturating_since(c.last_heard) <= loss_timeout);
            if !heard_recently {
                self.teardown_iface(idx, now);
            }
        }
        // 2. Start joins on the current channel.
        let started = self.try_start_joins(queue, now);
        // 3. Idle scanning (stock driver and the adaptive extension): if
        //    nothing is joined, joining, or joinable on this channel, move
        //    the radio along to refresh the candidate table.
        if matches!(
            self.cfg.spider.schedule,
            SchedulePolicy::ScanWhenIdle { .. } | SchedulePolicy::AdaptiveChannel { .. }
        ) {
            let any_busy = self.ifaces.iter().any(|i| i.state != IfaceState::Idle);
            if !any_busy && started == 0 {
                self.scan_channel_idx = (self.scan_channel_idx + 1) % wifi_mac::ORTHOGONAL.len();
                let target = wifi_mac::ORTHOGONAL[self.scan_channel_idx];
                let latency = self.radio.switch_to(target, now, 0, &mut self.rng_radio);
                if !latency.is_zero() {
                    self.metrics.switch_latencies.record_duration(latency);
                }
            }
        }
        queue.push(now + self.cfg.spider.evaluate_every, Event::Evaluate);
    }

    /// Begin joins toward the best unjoined candidates on the current
    /// channel, within the interface budget. Returns how many started.
    fn try_start_joins(&mut self, queue: &mut EventQueue<Event>, now: Instant) -> usize {
        let budget = if self.cfg.spider.single_ap {
            1usize.saturating_sub(
                self.ifaces
                    .iter()
                    .filter(|i| i.state != IfaceState::Idle)
                    .count(),
            )
        } else {
            self.ifaces
                .iter()
                .filter(|i| i.state == IfaceState::Idle)
                .count()
        };
        if budget == 0 || self.radio.is_busy(now) || now < self.dhcp_idle_until {
            return 0;
        }
        // The heard set iterates in MacAddr-rank order — exactly the
        // order the old full `bssids.iter_sorted()` scan produced:
        // candidate order feeds tie-breaking in `select_aps`, and a
        // process-randomized order here once meant two identical runs
        // could join APs in different orders (the simlint `unordered-map`
        // rule still rejects any hash-keyed state). Walking only heard
        // slots is output-identical because `select_aps` drops anything
        // older than its 2 s freshness window and Maintenance prunes the
        // heard set only after 5 s — so every candidate that can survive
        // the filter is still a member. Cost: O(heard), not O(APs).
        let candidates: Vec<Candidate> = self.heard.iter().filter_map(|id| self.scan[id]).collect();
        let joined: Vec<MacAddr> = self
            .ifaces
            .iter()
            .filter(|i| i.state != IfaceState::Idle)
            .filter_map(|i| i.ap.map(|a| self.aps[a].mac.bssid()))
            .collect();
        let picks = select_aps(
            &candidates,
            self.radio.channel(),
            self.cfg.spider.selection,
            &self.history,
            now,
            Duration::from_secs(2),
            self.cfg.spider.retry_backoff,
            self.cfg.spider.min_join_rssi_dbm,
            budget + joined.len(),
        );
        let mut started = 0;
        for bssid in picks {
            if started >= budget {
                break;
            }
            if joined.contains(&bssid) {
                continue;
            }
            let Some(ap) = self.bssids.get(bssid) else {
                continue;
            };
            let Some(idx) = self.ifaces.iter().position(|i| i.state == IfaceState::Idle) else {
                break;
            };
            let setup = self.cfg.spider.join_setup_delay;
            if setup.is_zero() {
                self.start_join(idx, ap, queue, now);
            } else {
                // Reserve the interface and defer the handshake by the
                // scan/supplicant setup time (the stock path).
                let iface = &mut self.ifaces[idx];
                iface.state = IfaceState::Associating;
                iface.gen += 1;
                iface.ap = Some(ap);
                iface.join_started = Some(now);
                let gen = iface.gen;
                queue.push(
                    now + setup,
                    Event::BeginJoin {
                        iface: idx,
                        gen,
                        ap,
                    },
                );
            }
            started += 1;
        }
        started
    }

    fn start_join(
        &mut self,
        iface_idx: usize,
        ap: usize,
        queue: &mut EventQueue<Event>,
        now: Instant,
    ) {
        let bssid = self.aps[ap].mac.bssid();
        let ssid = self.aps[ap].mac.config().ssid.clone();
        // Opportunistic scanning just heard this AP; skip the probe phase.
        let heard_just_now = self
            .candidate_for(bssid)
            .is_some_and(|c| now.saturating_since(c.last_heard) <= Duration::from_secs(1));
        let join_cfg = JoinConfig {
            use_probe: !heard_just_now,
            ..self.cfg.spider.join.clone()
        };
        let station = self.ifaces[iface_idx].addr;
        let mut mac = ClientMac::new(station, bssid, ssid, join_cfg);
        self.metrics.assoc_attempts += 1;
        let actions = mac.start(now);
        {
            let iface = &mut self.ifaces[iface_idx];
            iface.state = IfaceState::Associating;
            iface.gen += 1;
            iface.ap = Some(ap);
            iface.join_started = Some(now);
            iface.mac = Some(mac);
        }
        self.process_mac_actions(iface_idx, actions, queue, now);
    }

    /// Multi-channel schedule: enter PSM on the old channel, retune, wake
    /// interfaces on the new channel.
    fn schedule_slice(&mut self, idx: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let SchedulePolicy::MultiChannel { slices } = &self.cfg.spider.schedule else {
            return;
        };
        let slices = slices.clone();
        let (target, slice_len) = slices[idx % slices.len()];
        let old = self.radio.channel();
        if target != old {
            // Announce power-save to every associated AP on the old channel.
            // The radio keeps listening while these drain (the Table 1
            // switch latency *includes* this phase), so the AP's in-flight
            // downlink frames are not lost to the retune.
            let psm_targets: Vec<(usize, MacAddr, MacAddr)> = self
                .ifaces
                .iter()
                .filter(|i| i.state == IfaceState::Connected)
                .filter_map(|i| i.ap.map(|a| (a, i.addr, self.aps[a].mac.bssid())))
                .filter(|(a, _, _)| self.aps[*a].site.channel == old)
                .collect();
            let connected = psm_targets.len();
            for (ap, station, bssid) in psm_targets {
                let frame = Frame::psm_enter(station, bssid);
                self.client_send(ap, frame, queue, now);
            }
            let grace =
                Duration::from_micros(3_700) + Duration::from_micros(300) * connected as u64;
            queue.push(now + grace, Event::SwitchBegin { target });
        }
        queue.push(now + slice_len, Event::ScheduleSlice { idx: idx + 1 });
    }

    fn on_switch_begin(&mut self, target: Channel, queue: &mut EventQueue<Event>, now: Instant) {
        if target == self.radio.channel() {
            return;
        }
        let connected = self
            .ifaces
            .iter()
            .filter(|i| i.state == IfaceState::Connected)
            .count();
        let latency = self
            .radio
            .switch_to(target, now, connected, &mut self.rng_radio);
        self.metrics.switch_latencies.record_duration(latency);
        queue.push(now + latency, Event::SwitchDone);
    }

    fn on_switch_done(&mut self, queue: &mut EventQueue<Event>, now: Instant) {
        // Wake every associated AP on the (new) current channel.
        let channel = self.radio.channel();
        let wake_targets: Vec<(usize, MacAddr, MacAddr)> = self
            .ifaces
            .iter()
            .filter(|i| i.state == IfaceState::Connected)
            .filter_map(|i| i.ap.map(|a| (a, i.addr, self.aps[a].mac.bssid())))
            .filter(|(a, _, _)| self.aps[*a].site.channel == channel)
            .collect();
        for (ap, station, bssid) in wake_targets {
            let frame = Frame::psm_exit(station, bssid);
            self.client_send(ap, frame, queue, now);
        }
        // Swap in this channel's transmit queue: flush frames that waited
        // out the off-channel period (dropping protocol-stale ones). The
        // queue's buffer is swapped against the spare and handed back after
        // the drain, so steady-state switches reuse the same allocations.
        let mut pending = std::mem::replace(
            &mut self.tx_queues[channel.index()],
            std::mem::take(&mut self.tx_spare),
        );
        for (queued_at, ap, frame) in pending.drain(..) {
            if now.saturating_since(queued_at) <= Self::TX_QUEUE_TTL {
                self.client_send(ap, frame, queue, now);
            }
        }
        self.tx_spare = pending;
        // Freshly on-channel with a whole slice ahead: the best moment to
        // start joins (this is Spider's "parallel per-channel association").
        self.try_start_joins(queue, now);
    }

    /// The §4.8 extension: periodically dwell on whichever orthogonal
    /// channel offers the best-scoring fresh candidates. A switch tears
    /// down current associations (we will not be coming back for their
    /// PSM buffers), so the bar for moving is a strict improvement.
    fn reconsider(&mut self, queue: &mut EventQueue<Event>, now: Instant) {
        let SchedulePolicy::AdaptiveChannel { reconsider, .. } = self.cfg.spider.schedule else {
            return;
        };
        let freshness = Duration::from_secs(3);
        // The heard set iterates in MacAddr-rank order, so this
        // floating-point sum visits candidates in the same order the full
        // sorted-table walk (and before it, the BTreeMap) produced; the
        // 3 s freshness filter keeps the summed subset identical too,
        // since heard entries outlive it (5 s prune).
        let score_of =
            |ch: Channel, heard: &RankedSet, scan: &[Option<Candidate>], history: &ApHistory| {
                heard
                    .iter()
                    .filter_map(|id| scan[id].as_ref())
                    .filter(|c| c.channel == ch)
                    .filter(|c| now.saturating_since(c.last_heard) <= freshness)
                    .map(|c| history.score(c.bssid, now))
                    .sum::<f64>()
            };
        let current = self.radio.channel();
        let current_score = score_of(current, &self.heard, &self.scan, &self.history);
        let mut best = (current, current_score);
        for ch in wifi_mac::ORTHOGONAL {
            let s = score_of(ch, &self.heard, &self.scan, &self.history);
            if s > best.1 {
                best = (ch, s);
            }
        }
        // Move only on a clear win: switching abandons live associations.
        if best.0 != current && best.1 > current_score * 1.25 + 0.25 {
            for idx in 0..self.ifaces.len() {
                if self.ifaces[idx].state != IfaceState::Idle {
                    self.teardown_iface(idx, now);
                }
            }
            let latency = self.radio.switch_to(best.0, now, 0, &mut self.rng_radio);
            self.metrics.switch_latencies.record_duration(latency);
            queue.push(now + latency, Event::SwitchDone);
        }
        queue.push(now + reconsider, Event::Reconsider);
    }

    fn beacon_tick(&mut self, ap: usize, queue: &mut EventQueue<Event>, now: Instant) {
        let dist = self.distance_to(ap, now);
        let interval = self.aps[ap].mac.config().beacon_interval;
        if dist <= 400.0 {
            let frame = self.aps[ap].mac.beacon(now);
            self.ap_send(ap, frame, Duration::ZERO, queue, now);
            queue.push(now + interval, Event::BeaconTick { ap });
        } else {
            // Out of earshot: check back lazily instead of spamming events.
            queue.push(now + Duration::from_secs(2), Event::BeaconTick { ap });
        }
    }

    fn result(mut self) -> RunResult {
        let d = self.cfg.duration;
        self.metrics.record_concurrency(Instant::ZERO + d, 0);
        let backhaul_drops: u64 = self
            .aps
            .iter()
            .map(|a| a.downlink.drops() + a.uplink.drops())
            .sum();
        if debug_env("SPIDER_DEBUG_BH") {
            for (i, a) in self.aps.iter().enumerate() {
                eprintln!(
                    "ap={i} down_drops={} up_drops={}",
                    a.downlink.drops(),
                    a.uplink.drops()
                );
            }
        }
        let psm_drops: u64 = self.aps.iter().map(|a| a.mac.counters().psm_dropped).sum();
        let unassociated_drops: u64 = self
            .aps
            .iter()
            .map(|a| a.mac.counters().unassociated_drops)
            .sum();
        RunResult {
            duration: d,
            total_bytes: self.metrics.total_bytes(),
            avg_throughput_bps: self.metrics.avg_throughput_bps(d),
            connectivity: self.metrics.connectivity(d),
            connection_durations: self.metrics.connection_durations(d),
            disruption_durations: self.metrics.disruption_durations(d),
            instantaneous_bandwidth: self.metrics.instantaneous_bandwidth(d),
            assoc_times: self.metrics.assoc_times.clone(),
            join_times: self.metrics.join_times.clone(),
            switch_latencies: self.metrics.switch_latencies.clone(),
            dhcp_attempts: self.metrics.dhcp_attempts,
            dhcp_failures: self.metrics.dhcp_failures,
            assoc_attempts: self.metrics.assoc_attempts,
            assoc_failures: self.metrics.assoc_failures,
            switch_count: self.radio.switch_count(),
            max_concurrent_aps: self.metrics.max_concurrent_aps,
            concurrency_seconds: self.metrics.concurrency_seconds.clone(),
            tcp_rtos: self.tcp_rtos,
            backhaul_drops,
            psm_drops,
            unassociated_drops,
            air_drops: self.air_drops,
        }
    }
}

impl Handler<Event> for World {
    fn handle(&mut self, now: Instant, event: Event, queue: &mut EventQueue<Event>) {
        match event {
            Event::BeaconTick { ap } => self.beacon_tick(ap, queue, now),
            Event::AirToClient { ap, frame } => self.on_air_to_client(ap, frame, queue, now),
            Event::AirToAp { ap, frame } => {
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                {
                    let node = &mut self.aps[ap];
                    node.mac
                        .on_frame_into(&frame, now, &mut self.rng_ap, &mut actions);
                }
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::MacTimer { iface, gen, token } => {
                if self.ifaces[iface].gen != gen {
                    return;
                }
                if let Some(mut mac) = self.ifaces[iface].mac.take() {
                    let actions = mac.handle_timer(token);
                    self.ifaces[iface].mac = Some(mac);
                    self.process_mac_actions(iface, actions, queue, now);
                }
            }
            Event::DhcpTimer { iface, gen, token } => {
                if self.ifaces[iface].gen != gen {
                    return;
                }
                if let Some(mut dhcp) = self.ifaces[iface].dhcp.take() {
                    let actions = dhcp.handle_timer(token, now);
                    self.ifaces[iface].dhcp = Some(dhcp);
                    self.process_dhcp_actions(iface, actions, queue, now);
                }
            }
            Event::SenderTimer { ap, conn, token } => {
                let mut actions = std::mem::take(&mut self.sender_actions_scratch);
                match self.aps[ap].sender_mut(conn) {
                    Some(sender) => sender.on_timer_into(token, now, &mut actions),
                    None => {
                        self.sender_actions_scratch = actions;
                        return;
                    }
                }
                if actions
                    .iter()
                    .any(|a| matches!(a, SenderAction::Transmit(_)))
                {
                    self.tcp_rtos += 1;
                    if debug_env("SPIDER_DEBUG_RTO") {
                        let s = self.aps[ap].sender(conn);
                        eprintln!(
                            "RTO at {now} conn={conn} srtt={:?} cwnd={:?}",
                            s.and_then(|x| x.srtt()),
                            s.map(|x| x.cwnd())
                        );
                    }
                }
                self.process_sender_actions(ap, conn, &mut actions, queue, now);
                self.sender_actions_scratch = actions;
            }
            Event::BackhaulToAp { ap, payload } => {
                // A TCP segment for our client: find which interface.
                let Some((_, body)) = unwrap_proto(&payload) else {
                    return;
                };
                let Some(seg) = Segment::decode(body) else {
                    return;
                };
                let Some(iface_idx) = self
                    .ifaces
                    .iter()
                    .position(|i| i.conn == Some(seg.conn) && i.ap == Some(ap))
                else {
                    return;
                };
                let station = self.ifaces[iface_idx].addr;
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                self.aps[ap]
                    .mac
                    .deliver_downlink_into(station, payload, now, &mut actions);
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::BackhaulToServer { ap, payload } => {
                // The payload still carries its protocol tag (kept to make
                // the uplink enqueue copy-free); strip it here.
                let Some((_, body)) = unwrap_proto(&payload) else {
                    return;
                };
                let Some(seg) = Segment::decode(body) else {
                    return;
                };
                let mut actions = std::mem::take(&mut self.sender_actions_scratch);
                match self.aps[ap].sender_mut(seg.conn) {
                    Some(sender) => sender.on_segment_into(&seg, now, &mut actions),
                    None => {
                        self.sender_actions_scratch = actions;
                        return;
                    }
                }
                self.process_sender_actions(ap, seg.conn, &mut actions, queue, now);
                self.sender_actions_scratch = actions;
            }
            Event::DhcpReplyReady {
                ap,
                station,
                payload,
            } => {
                let mut actions = std::mem::take(&mut self.ap_actions_scratch);
                self.aps[ap]
                    .mac
                    .deliver_downlink_into(station, payload, now, &mut actions);
                self.process_ap_actions(ap, &mut actions, queue, now);
                self.ap_actions_scratch = actions;
            }
            Event::ScheduleSlice { idx } => self.schedule_slice(idx, queue, now),
            Event::SwitchBegin { target } => self.on_switch_begin(target, queue, now),
            Event::SwitchDone => self.on_switch_done(queue, now),
            Event::Evaluate => self.evaluate(queue, now),
            Event::Reconsider => self.reconsider(queue, now),
            Event::NextObject { iface, gen, ap } => {
                if self.ifaces[iface].gen != gen
                    || self.ifaces[iface].state != IfaceState::Connected
                {
                    return;
                }
                self.open_connection(iface, ap, queue, now);
            }
            Event::BeginJoin { iface, gen, ap } => {
                if self.ifaces[iface].gen != gen {
                    return;
                }
                // The candidate must still be around after the setup delay.
                let bssid = self.aps[ap].mac.bssid();
                let fresh = self
                    .candidate_for(bssid)
                    .is_some_and(|c| now.saturating_since(c.last_heard) <= Duration::from_secs(3));
                if fresh {
                    self.ifaces[iface].state = IfaceState::Idle;
                    self.start_join(iface, ap, queue, now);
                } else {
                    self.teardown_iface(iface, now);
                }
            }
            Event::Maintenance => {
                if debug_env("SPIDER_DEBUG_MEDIUM") {
                    // Index order is channel-number order; never-seized
                    // channels stay at ZERO, matching the old map's
                    // "no entry" case.
                    for (idx, free) in self.medium.iter().enumerate() {
                        if *free == Instant::ZERO {
                            continue;
                        }
                        let ch = Channel::from_number(idx as u8 + 1);
                        eprintln!(
                            "t={now} medium {ch} backlog={} down={}f/{} up={}f/{}",
                            free.saturating_since(now),
                            self.dbg_down_frames,
                            self.dbg_down_airtime,
                            self.dbg_up_frames,
                            self.dbg_up_airtime
                        );
                    }
                }
                if debug_env("SPIDER_DEBUG_TCP") {
                    for (i, apn) in self.aps.iter().enumerate() {
                        // Vec order is connection-id order (monotone ids).
                        for (c, snd) in &apn.senders {
                            eprintln!(
                                "t={now} ap={i} conn={c} cwnd={} flight={} srtt={:?} fr={} rto_cnt={} acked={} pump={} retx={}",
                                snd.cwnd(), snd.flight_bytes(), snd.srtt(), snd.fast_retransmit_count(),
                                snd.timeout_count(), snd.bytes_acked(), snd.dbg_pump, snd.dbg_retx
                            );
                        }
                    }
                }
                // Spatial upkeep, 1 Hz: move the client's cell membership
                // and sample how many APs its 400 m hearing disc covers —
                // a grid range query, not a scan over `aps`. Neither
                // touches event state, so RunRecords are unaffected.
                let pos = self.client_pos(now);
                if self.client_cell.update(0, pos) {
                    self.client_cell_crossings += 1;
                }
                let inrange = self.grid.count_in_disc(pos, 400.0) as u32;
                self.peak_inrange_aps = self.peak_inrange_aps.max(inrange);
                // Drop scan entries not refreshed in 5 s from the heard
                // set. Both consumers filter at ≤ 3 s, so pruning at 5 s
                // can never change what they see.
                let scan = &self.scan;
                self.heard.retain(|slot| {
                    scan[slot].is_some_and(|c| now.saturating_since(c.last_heard) <= HEARD_TTL)
                });
                for ap in 0..self.aps.len() {
                    // An AP with no stations has nothing to expire:
                    // `expire_idle` over an empty table is a no-op, so
                    // skipping it cannot change event order. This turns
                    // the 1 Hz full-fleet walk into O(associated APs)
                    // of real work on metro-scale worlds.
                    if self.aps[ap].mac.station_count() == 0 {
                        continue;
                    }
                    let mut actions = self.aps[ap].mac.expire_idle(now);
                    self.process_ap_actions(ap, &mut actions, queue, now);
                }
                queue.push(now + Duration::from_secs(1), Event::Maintenance);
            }
        }
    }
}

/// Split a tagged payload into its protocol tag and body. Borrows — the
/// per-frame hot path must not copy payloads just to look at them.
fn unwrap_proto(payload: &[u8]) -> Option<(u8, &[u8])> {
    match payload {
        [proto, body @ ..] => Some((*proto, body)),
        [] => None,
    }
}

/// Deterministic per-run performance counters, reported alongside the
/// [`RunResult`] by [`run_with_diagnostics`].
///
/// These are intentionally **not** part of `RunRecord` JSON: the record is
/// the content-addressed campaign cache format and must stay byte-identical
/// for a given `WorldConfig`, while throughput-style numbers derived from
/// these counters (events/sec) mix in wall-clock time. The campaign layer
/// reports them on stderr instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDiagnostics {
    /// Events delivered by the queue over the run (deterministic).
    pub events_delivered: u64,
    /// High-water mark of **live** scheduled events (deterministic).
    /// Cancelled-but-still-queued entries do not count — see
    /// `EventQueue::peak_depth`.
    pub peak_queue_depth: usize,
    /// High-water mark of APs inside the client's 400 m hearing disc,
    /// sampled at 1 Hz through the spatial grid (deterministic).
    pub peak_inrange_aps: u32,
    /// Grid-cell crossings the client made, from the incremental mover
    /// index (deterministic).
    pub client_cell_crossings: u64,
}

/// Run one experiment to completion.
pub fn run(config: WorldConfig) -> RunResult {
    run_with_diagnostics(config).0
}

/// Run one experiment to completion, also reporting engine counters.
pub fn run_with_diagnostics(config: WorldConfig) -> (RunResult, RunDiagnostics) {
    let duration = config.duration;
    let (mut world, mut queue) = World::new(config);
    run_until(&mut queue, &mut world, Instant::ZERO + duration);
    let diagnostics = RunDiagnostics {
        events_delivered: queue.delivered(),
        peak_queue_depth: queue.peak_depth(),
        peak_inrange_aps: world.peak_inrange_aps,
        client_cell_crossings: world.client_cell_crossings,
    };
    (world.result(), diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::route::Route;

    fn site(id: u32, x: f64, channel: Channel, backhaul_bps: u64) -> ApSite {
        ApSite {
            id,
            position: Point::new(x, 0.0),
            channel,
            backhaul_bps,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(400),
        }
    }

    fn static_world(sites: Vec<ApSite>, spider: SpiderConfig, secs: u64) -> WorldConfig {
        WorldConfig::new(
            42,
            sites,
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            spider,
            Duration::from_secs(secs),
        )
    }

    #[test]
    fn stationary_client_joins_and_transfers() {
        let cfg = static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        );
        let result = run(cfg);
        assert_eq!(
            result.assoc_failures, 0,
            "clean channel at 10 m must associate"
        );
        assert!(result.join_times.count() >= 1, "no successful join");
        assert!(
            result.total_bytes > 100_000,
            "only {} bytes",
            result.total_bytes
        );
        // 2 Mb/s backhaul = 250 kB/s ceiling; TCP should get most of it.
        let kbps = result.avg_throughput_kbps();
        assert!((100.0..260.0).contains(&kbps), "throughput {kbps} kB/s");
        assert!(
            result.connectivity > 0.8,
            "connectivity {}",
            result.connectivity
        );
    }

    #[test]
    fn two_aps_on_one_channel_aggregate_backhaul() {
        // The Fig. 9 effect: two 2 Mb/s backhauls on one channel ≈ double
        // the single-AP throughput.
        let one = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        let two = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH1, 2_000_000),
            ],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        assert!(two.max_concurrent_aps >= 2, "did not hold 2 concurrent APs");
        let ratio = two.avg_throughput_bps / one.avg_throughput_bps;
        assert!(
            (1.5..2.5).contains(&ratio),
            "aggregation ratio {ratio}: one {} two {}",
            one.avg_throughput_kbps(),
            two.avg_throughput_kbps()
        );
    }

    #[test]
    fn single_ap_config_never_holds_two() {
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH1, 2_000_000),
            ],
            SpiderConfig::single_channel_single_ap(Channel::CH1),
            20,
        ));
        assert_eq!(result.max_concurrent_aps, 1);
    }

    #[test]
    fn wrong_channel_yields_nothing() {
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            10,
        ));
        assert_eq!(result.total_bytes, 0);
        assert_eq!(result.join_times.count(), 0);
    }

    #[test]
    fn multi_channel_schedule_switches_and_transfers() {
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH1, 2_000_000),
                site(2, 5.0, Channel::CH6, 2_000_000),
            ],
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
            30,
        ));
        assert!(
            result.switch_count > 50,
            "only {} switches",
            result.switch_count
        );
        assert!(result.switch_latencies.count() > 0);
        assert!(
            result.total_bytes > 0,
            "no data through a multi-channel schedule"
        );
    }

    #[test]
    fn stock_driver_scans_joins_and_transfers() {
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::stock_madwifi(),
            40,
        ));
        // The idle scan must find channel 6 and camp there.
        assert!(result.join_times.count() >= 1, "stock driver never joined");
        assert!(result.total_bytes > 0);
        assert_eq!(result.max_concurrent_aps, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            run(static_world(
                vec![
                    site(1, 0.0, Channel::CH1, 2_000_000),
                    site(2, 5.0, Channel::CH1, 1_000_000),
                ],
                SpiderConfig::single_channel_multi_ap(Channel::CH1),
                15,
            ))
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.dhcp_attempts, b.dhcp_attempts);
        assert_eq!(a.switch_count, b.switch_count);
    }

    #[test]
    fn drive_by_produces_bounded_encounter() {
        // A vehicle passing one AP at 10 m/s: data flows only near it.
        let route = Route::straight(Point::new(-1000.0, 0.0), Point::new(1000.0, 0.0));
        let vehicle = Vehicle::new(route, 10.0, Instant::ZERO);
        let cfg = WorldConfig::new(
            7,
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            ClientMotion::Route(vehicle),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(200),
        );
        let result = run(cfg);
        assert!(result.join_times.count() >= 1, "drive-by never joined");
        assert!(result.total_bytes > 0);
        // Connectivity is bounded by the encounter window (~20 s of 200 s).
        assert!(
            result.connectivity < 0.35,
            "connectivity {} too high for a drive-by",
            result.connectivity
        );
        let mut disruptions = result.disruption_durations.clone();
        assert!(
            disruptions.quantile(1.0) > 50.0,
            "should see a long disruption"
        );
    }

    #[test]
    fn psm_aging_punishes_long_absences() {
        // Same world, two slice lengths: short slices stay inside the AP's
        // ~256 ms power-save aging horizon, long ones do not.
        let mk = |slice_ms: u64| {
            let mut spider = SpiderConfig::single_channel_multi_ap(Channel::CH1);
            spider.schedule = SchedulePolicy::equal_three(Duration::from_millis(slice_ms));
            run(static_world(
                vec![site(1, 0.0, Channel::CH1, 4_000_000)],
                spider,
                40,
            ))
        };
        let short = mk(66);
        let long = mk(333);
        assert!(
            short.total_bytes > 3 * long.total_bytes,
            "66 ms slices ({}) must far out-deliver 333 ms ({})",
            short.total_bytes,
            long.total_bytes
        );
        assert!(long.psm_drops > 0, "long absences must age PSM frames out");
    }

    #[test]
    fn rssi_floor_gates_far_joins() {
        // An AP at 120 m is audible (beacons decode sometimes) but below
        // the −85 dBm join floor; the driver must not attempt it.
        let far = ApSite {
            id: 1,
            position: Point::new(0.0, 120.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        let gated = run(WorldConfig::new(
            42,
            vec![far.clone()],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(20),
        ));
        assert_eq!(gated.assoc_attempts, 0, "far AP must not be attempted");
        // Lowering the floor re-enables the attempt.
        let mut greedy_cfg = SpiderConfig::single_channel_multi_ap(Channel::CH1);
        greedy_cfg.min_join_rssi_dbm = -200.0;
        let greedy = run(WorldConfig::new(
            42,
            vec![far],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            greedy_cfg,
            Duration::from_secs(20),
        ));
        assert!(
            greedy.assoc_attempts > 0,
            "without the floor the driver tries"
        );
    }

    #[test]
    fn stock_setup_delay_postpones_the_join() {
        // With a 10 s scan/supplicant dead time, no join can complete in
        // the first 10 s.
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH6, 2_000_000)],
            SpiderConfig::stock_madwifi(),
            40,
        ));
        assert!(result.join_times.count() >= 1, "stock must eventually join");
        // First delivery can't precede the setup delay: connectivity over
        // 40 s is bounded accordingly.
        assert!(
            result.connectivity < 0.75,
            "setup delay must cost early seconds: connectivity {}",
            result.connectivity
        );
    }

    #[test]
    fn segmented_plan_paces_the_download() {
        // A streaming plan (1 MB objects, 4 s think) must move data in
        // bursts and far less of it than a saturating plan.
        let mut cfg = static_world(
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        );
        cfg.plan = workload::downloads::DownloadPlan::Segmented {
            object_bytes: 1_000_000,
            think: Duration::from_secs(4),
        };
        let segmented = run(cfg);
        let saturating = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 4_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        ));
        assert!(segmented.total_bytes > 1_000_000, "streams some objects");
        assert!(
            segmented.total_bytes < saturating.total_bytes,
            "think time must reduce volume: {} vs {}",
            segmented.total_bytes,
            saturating.total_bytes
        );
        // Think pauses show as sub-full connectivity.
        assert!(segmented.connectivity < saturating.connectivity);
    }

    #[test]
    fn adaptive_channel_follows_the_aps() {
        // All APs on channel 11; the adaptive policy must discover that and
        // move off its initial channel 1 to transfer data.
        let result = run(static_world(
            vec![
                site(1, 0.0, Channel::CH11, 2_000_000),
                site(2, 5.0, Channel::CH11, 2_000_000),
            ],
            SpiderConfig::adaptive_channel(),
            40,
        ));
        assert!(
            result.join_times.count() >= 1,
            "adaptive policy never joined"
        );
        assert!(result.total_bytes > 0, "adaptive policy moved no data");
    }

    #[test]
    fn adaptive_channel_stays_when_home_is_best() {
        // Candidates only on channel 1: the policy must not wander off and
        // lose throughput relative to a pinned single channel.
        let pinned = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            40,
        ));
        let adaptive = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 2_000_000)],
            SpiderConfig::adaptive_channel(),
            40,
        ));
        assert!(
            adaptive.total_bytes as f64 > 0.7 * pinned.total_bytes as f64,
            "adaptive {} vs pinned {} bytes",
            adaptive.total_bytes,
            pinned.total_bytes
        );
    }

    #[test]
    fn ablation_configs_run() {
        for spider in [
            SpiderConfig::ablate_history(Channel::CH1),
            SpiderConfig::ablate_lease_cache(Channel::CH1),
            SpiderConfig::ablate_reduced_timers(Channel::CH1),
            SpiderConfig::ablate_parallel_join(Channel::CH1),
        ] {
            let result = run(static_world(
                vec![site(1, 0.0, Channel::CH1, 2_000_000)],
                spider,
                20,
            ));
            assert!(result.total_bytes > 0, "ablation config moved no data");
        }
    }

    #[test]
    fn backhaul_is_the_bottleneck_not_the_air() {
        // 500 kb/s backhaul vs 11 Mb/s air: throughput pins near the
        // backhaul rate (Reno over a 64-packet drop-tail queue with a
        // 256 kB window runs in persistent deep congestion, so utilization
        // sits well below 100% — but far above what the air would limit).
        let result = run(static_world(
            vec![site(1, 0.0, Channel::CH1, 500_000)],
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            30,
        ));
        let kbps = result.avg_throughput_kbps();
        assert!(
            (15.0..70.0).contains(&kbps),
            "throughput {kbps} kB/s vs 62.5 cap"
        );
        // The air could carry ~20× more; the wired side is the bottleneck.
        assert!(result.backhaul_drops > 0 || kbps > 40.0);
    }
}
