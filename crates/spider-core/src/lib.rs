//! # spider-core
//!
//! Spider — the paper's contribution — and the full-system simulation it is
//! evaluated in.
//!
//! Spider is a client-side virtualized Wi-Fi driver for *mobile* users. In
//! contrast to static multi-AP systems (Virtual Wi-Fi, FatVAP, Juggler)
//! that slice time across individual APs, Spider schedules the physical
//! card among **channels**, keeps one packet queue per channel, and talks
//! to every associated AP on the current channel simultaneously — because
//! §2's analysis shows the DHCP join, whose pacing the AP controls, cannot
//! survive fractional channel schedules at vehicular speed.
//!
//! * [`builder`] — a fluent constructor over [`world::WorldConfig`].
//! * [`config`] — the driver's policy knobs and the four §4 evaluation
//!   configurations plus the stock-MadWiFi baseline.
//! * [`fleet`] — client fleets: per-client addressing, counters, convoy
//!   construction, and the fleet determinism contract.
//! * [`history`] — per-AP join history and lease cache.
//! * [`selection`] — multi-AP selection: NP-hardness (knapsack) and the
//!   history-driven greedy heuristic.
//! * [`metrics`] — §4.3's throughput/connectivity/disruption metrics.
//! * [`report`] — flattened, serializable run summaries.
//! * [`world`] — the deterministic event-driven world: radio, MACs, DHCP,
//!   TCP, backhaul, and mobility wired together; [`world::run`] is the
//!   entry point every experiment uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod codec;
pub mod config;
pub mod fleet;
pub mod history;
pub mod intern;
pub mod metrics;
pub mod report;
pub mod selection;
pub mod world;

pub use builder::WorldBuilder;
pub use config::{SchedulePolicy, SelectionPolicy, SpiderConfig};
pub use fleet::ClientCounters;
pub use history::ApHistory;
pub use intern::MacIntern;
pub use metrics::Metrics;
pub use report::{NonFiniteField, Quantiles, Report, ReportParseError, RunRecord};
pub use selection::{select_aps, Candidate};
pub use world::{run, run_with_diagnostics, ClientMotion, RunDiagnostics, RunResult, WorldConfig};
