//! MacAddr interning: dense ids for the per-event hot path.
//!
//! The world knows every BSSID at build time (one per deployed AP), so all
//! per-frame state keyed by `MacAddr` can live in plain `Vec`s indexed by a
//! dense `usize` id instead of ordered maps. [`MacIntern`] is the bridge: it
//! is built once from the AP list, resolves an address to its id with a
//! binary search over a sorted table (cache-friendly, no per-node pointer
//! chasing), and iterates ids **in MacAddr order** — the exact order the
//! previous `BTreeMap`-keyed state iterated in, which event-order
//! determinism depends on (candidate order feeds tie-breaking in
//! `select_aps`, and score sums are floating-point order-sensitive).

use wifi_mac::addr::MacAddr;

/// An immutable `MacAddr → usize` table built at world construction.
///
/// Ids are the insertion positions of the build iterator (AP indices in
/// practice). If the same address appears twice, the later id wins —
/// mirroring the `insert` semantics of the map this replaces.
///
/// ```
/// use spider_core::intern::MacIntern;
/// use wifi_mac::addr::MacAddr;
///
/// let table = MacIntern::build([MacAddr::ap(7), MacAddr::ap(3)]);
/// assert_eq!(table.get(MacAddr::ap(3)), Some(1));
/// assert_eq!(table.get(MacAddr::ap(9)), None);
/// // Iteration is in MacAddr order, not insertion order.
/// let ids: Vec<usize> = table.iter_sorted().map(|(_, id)| id).collect();
/// assert_eq!(ids, vec![1, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MacIntern {
    /// `(address, id)` pairs sorted by address, one entry per address.
    sorted: Vec<(MacAddr, usize)>,
}

impl MacIntern {
    /// Build from addresses in id order: the n-th yielded address gets id n.
    pub fn build(addrs: impl IntoIterator<Item = MacAddr>) -> MacIntern {
        let mut sorted: Vec<(MacAddr, usize)> = addrs
            .into_iter()
            .enumerate()
            .map(|(id, addr)| (addr, id))
            .collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        // Duplicates: keep the highest id (map-insert "last wins").
        sorted.dedup_by(|a, b| {
            if a.0 == b.0 {
                *b = *a;
                true
            } else {
                false
            }
        });
        MacIntern { sorted }
    }

    /// The dense id for `addr`, if interned. O(log n), no allocation.
    pub fn get(&self, addr: MacAddr) -> Option<usize> {
        self.sorted
            .binary_search_by(|&(a, _)| a.cmp(&addr))
            .ok()
            .map(|pos| self.sorted[pos].1)
    }

    /// All `(address, id)` pairs in ascending MacAddr order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (MacAddr, usize)> + '_ {
        self.sorted.iter().copied()
    }

    /// Slot → MacAddr-order rank: `ranks()[id]` is the position of id's
    /// address in ascending MacAddr order. This is the rank table a
    /// `geo::RankedSet` needs to iterate dense AP slots in the exact
    /// order a full `iter_sorted()` scan would visit them.
    ///
    /// # Panics
    /// Panics if ids are not dense `0..len` (i.e. the build iterator
    /// contained duplicate addresses).
    pub fn ranks(&self) -> Vec<u32> {
        let mut ranks = vec![u32::MAX; self.sorted.len()];
        for (rank, (_, id)) in self.iter_sorted().enumerate() {
            assert!(
                id < self.sorted.len() && ranks[id] == u32::MAX,
                "ranks() requires dense ids (no duplicate addresses)"
            );
            ranks[id] = rank as u32;
        }
        ranks
    }

    /// Number of distinct interned addresses.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_ids_and_misses() {
        let table = MacIntern::build((0..6).map(MacAddr::ap));
        for id in 0..6usize {
            assert_eq!(table.get(MacAddr::ap(id as u32)), Some(id));
        }
        assert_eq!(table.get(MacAddr::local(0)), None);
        assert_eq!(table.len(), 6);
        assert!(!table.is_empty());
    }

    #[test]
    fn iteration_is_mac_ordered_like_a_btreemap() {
        use std::collections::BTreeMap;
        // Insertion order deliberately scrambled relative to MacAddr order.
        let addrs = [
            MacAddr::ap(42),
            MacAddr::local(7),
            MacAddr::ap(1),
            MacAddr::local(900),
        ];
        let table = MacIntern::build(addrs);
        let reference: BTreeMap<MacAddr, usize> =
            addrs.iter().enumerate().map(|(id, &a)| (a, id)).collect();
        let got: Vec<(MacAddr, usize)> = table.iter_sorted().collect();
        let want: Vec<(MacAddr, usize)> = reference.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicate_addresses_keep_the_last_id() {
        let a = MacAddr::ap(5);
        let table = MacIntern::build([a, MacAddr::ap(9), a]);
        assert_eq!(table.get(a), Some(2), "later insert must win");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn ranks_invert_sorted_order() {
        // Insertion order scrambled: ap(42) gets id 0 but ranks after
        // ap(1) and local addrs rank after all ap addrs (or wherever the
        // MacAddr ordering puts them) — whatever iter_sorted says.
        let addrs = [MacAddr::ap(42), MacAddr::local(7), MacAddr::ap(1)];
        let table = MacIntern::build(addrs);
        let ranks = table.ranks();
        let by_rank: Vec<usize> = {
            let mut ids: Vec<usize> = (0..addrs.len()).collect();
            ids.sort_by_key(|&id| ranks[id]);
            ids
        };
        let want: Vec<usize> = table.iter_sorted().map(|(_, id)| id).collect();
        assert_eq!(by_rank, want);
    }

    #[test]
    fn empty_table() {
        let table = MacIntern::build([]);
        assert!(table.is_empty());
        assert_eq!(table.get(MacAddr::ap(0)), None);
        assert_eq!(table.iter_sorted().count(), 0);
    }
}
