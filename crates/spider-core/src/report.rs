//! Machine-readable run reports.
//!
//! [`RunResult`] holds raw sample sets; a
//! [`Report`] flattens it into the summary numbers the experiments print.
//! Serialization is fully in-tree: [`Report::to_json`] emits a stable
//! flat object and [`Report::from_json`] reads it back, so downstream
//! tooling can consume run output without any external JSON crate.
//!
//! Two serialization fidelities share one parser:
//!
//! * [`Report`] — the flattened *summary* (quantiles only), rounded to six
//!   decimals for stable, diff-friendly artifact files.
//! * [`RunRecord`] — the *full* run: every retained sample value at exact
//!   (shortest-roundtrip) precision, so a `RunResult` reconstructed from
//!   its record is bit-identical to the original and regenerates every
//!   figure byte-for-byte. This is what the campaign cache stores.

use sim_engine::stats::Samples;
use sim_engine::time::Duration;

use crate::fleet::ClientCounters;
use crate::world::RunResult;

/// A five-number summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Sample count.
    pub n: usize,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Quantiles {
    fn of(samples: &Samples) -> Quantiles {
        let mut s = samples.clone();
        Quantiles {
            n: s.count(),
            p10: s.quantile(0.10),
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            max: if s.is_empty() { 0.0 } else { s.quantile(1.0) },
        }
    }

    fn json(&self) -> String {
        format!(
            r#"{{"n":{},"p10":{},"p50":{},"p90":{},"max":{}}}"#,
            self.n,
            fmt_f64(self.p10),
            fmt_f64(self.p50),
            fmt_f64(self.p90),
            fmt_f64(self.max)
        )
    }
}

/// The flattened summary of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment length, seconds.
    pub duration_secs: f64,
    /// Bytes delivered to the sink.
    pub total_bytes: u64,
    /// Average throughput, KB/s (the paper's unit).
    pub avg_throughput_kbps: f64,
    /// Fraction of seconds with non-zero transfer.
    pub connectivity: f64,
    /// Successful joins.
    pub joins: usize,
    /// Association attempts / failures.
    pub assoc_attempts: u64,
    /// See `assoc_attempts`.
    pub assoc_failures: u64,
    /// DHCP attempts / failures.
    pub dhcp_attempts: u64,
    /// See `dhcp_attempts`.
    pub dhcp_failures: u64,
    /// Channel switches performed.
    pub switch_count: u64,
    /// Peak simultaneous associations.
    pub max_concurrent_aps: usize,
    /// TCP retransmission timeouts.
    pub tcp_rtos: u64,
    /// Join-time distribution, seconds.
    pub join_times_s: Quantiles,
    /// Connection-run distribution, seconds (Fig. 10a).
    pub connections_s: Quantiles,
    /// Disruption-run distribution, seconds (Fig. 10b).
    pub disruptions_s: Quantiles,
    /// Instantaneous bandwidth, bytes per connected second (Fig. 10c).
    pub instantaneous_bps: Quantiles,
    /// Per-client counters, indexed by client slot (client 0 first).
    /// Empty when parsed from a pre-fleet report, which predates the key.
    pub per_client: Vec<ClientCounters>,
}

impl Report {
    /// Flatten a [`RunResult`].
    pub fn from_run(result: &RunResult) -> Report {
        Report {
            duration_secs: result.duration.as_secs_f64(),
            total_bytes: result.total_bytes,
            avg_throughput_kbps: result.avg_throughput_kbps(),
            connectivity: result.connectivity,
            joins: result.join_times.count(),
            assoc_attempts: result.assoc_attempts,
            assoc_failures: result.assoc_failures,
            dhcp_attempts: result.dhcp_attempts,
            dhcp_failures: result.dhcp_failures,
            switch_count: result.switch_count,
            max_concurrent_aps: result.max_concurrent_aps,
            tcp_rtos: result.tcp_rtos,
            join_times_s: Quantiles::of(&result.join_times),
            connections_s: Quantiles::of(&result.connection_durations),
            disruptions_s: Quantiles::of(&result.disruption_durations),
            instantaneous_bps: Quantiles::of(&result.instantaneous_bandwidth),
            per_client: result.per_client.clone(),
        }
    }

    /// Serialize to a single JSON object (stable key order, no external
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                r#"{{"duration_secs":{},"total_bytes":{},"avg_throughput_kbps":{},"#,
                r#""connectivity":{},"joins":{},"assoc_attempts":{},"assoc_failures":{},"#,
                r#""dhcp_attempts":{},"dhcp_failures":{},"switch_count":{},"#,
                r#""max_concurrent_aps":{},"tcp_rtos":{},"join_times_s":{},"#,
                r#""connections_s":{},"disruptions_s":{},"instantaneous_bps":{}"#
            ),
            fmt_f64(self.duration_secs),
            self.total_bytes,
            fmt_f64(self.avg_throughput_kbps),
            fmt_f64(self.connectivity),
            self.joins,
            self.assoc_attempts,
            self.assoc_failures,
            self.dhcp_attempts,
            self.dhcp_failures,
            self.switch_count,
            self.max_concurrent_aps,
            self.tcp_rtos,
            self.join_times_s.json(),
            self.connections_s.json(),
            self.disruptions_s.json(),
            self.instantaneous_bps.json(),
        );
        push_per_client(&mut out, &self.per_client);
        out.push('}');
        out
    }

    /// Parse a report previously emitted by [`Report::to_json`].
    ///
    /// Accepts any whitespace layout, so hand-edited or pretty-printed
    /// variants of the same flat schema also load. Unknown keys are
    /// ignored; a missing key is an error.
    pub fn from_json(json: &str) -> Result<Report, ReportParseError> {
        let mut p = Parser::new(json);
        let fields = p.object()?;
        p.end()?;
        let num = |key: &'static str| -> Result<f64, ReportParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Number(v))) => Ok(*v),
                Some((_, JsonValue::Int(v))) => Ok(*v as f64),
                Some(_) => Err(ReportParseError::WrongType(key)),
                None => Err(ReportParseError::MissingKey(key)),
            }
        };
        let quantiles = |key: &'static str| -> Result<Quantiles, ReportParseError> {
            let inner = match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Object(fields))) => fields,
                Some(_) => return Err(ReportParseError::WrongType(key)),
                None => return Err(ReportParseError::MissingKey(key)),
            };
            let inner_num = |k: &'static str| match inner.iter().find(|(ik, _)| ik == k) {
                Some((_, JsonValue::Number(v))) => Ok(*v),
                Some((_, JsonValue::Int(v))) => Ok(*v as f64),
                Some(_) => Err(ReportParseError::WrongType(k)),
                None => Err(ReportParseError::MissingKey(k)),
            };
            Ok(Quantiles {
                n: inner_num("n")? as usize,
                p10: inner_num("p10")?,
                p50: inner_num("p50")?,
                p90: inner_num("p90")?,
                max: inner_num("max")?,
            })
        };
        Ok(Report {
            duration_secs: num("duration_secs")?,
            total_bytes: num("total_bytes")? as u64,
            avg_throughput_kbps: num("avg_throughput_kbps")?,
            connectivity: num("connectivity")?,
            joins: num("joins")? as usize,
            assoc_attempts: num("assoc_attempts")? as u64,
            assoc_failures: num("assoc_failures")? as u64,
            dhcp_attempts: num("dhcp_attempts")? as u64,
            dhcp_failures: num("dhcp_failures")? as u64,
            switch_count: num("switch_count")? as u64,
            max_concurrent_aps: num("max_concurrent_aps")? as usize,
            tcp_rtos: num("tcp_rtos")? as u64,
            join_times_s: quantiles("join_times_s")?,
            connections_s: quantiles("connections_s")?,
            disruptions_s: quantiles("disruptions_s")?,
            instantaneous_bps: quantiles("instantaneous_bps")?,
            per_client: per_client_field(&fields)?,
        })
    }
}

/// Serialize `per_client` as an object keyed by decimal client slot —
/// `"per_client":{"0":{"joins":…,"bytes":…,"cell_crossings":…},…}` —
/// appended after the legacy keys so pre-fleet parsers (which ignore
/// unknown keys) still read everything they understand.
fn push_per_client(out: &mut String, per_client: &[ClientCounters]) {
    out.push_str(",\"per_client\":{");
    for (slot, c) in per_client.iter().enumerate() {
        if slot > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{slot}\":{{\"joins\":{},\"bytes\":{},\"cell_crossings\":{}}}",
            c.joins, c.bytes, c.cell_crossings
        ));
    }
    out.push('}');
}

/// Read the optional `per_client` object. Absent key — a record written
/// before the fleet subsystem — parses as an empty vector; counters come
/// back u64-exact via the [`JsonValue::Int`] path.
fn per_client_field(
    fields: &[(String, JsonValue)],
) -> Result<Vec<ClientCounters>, ReportParseError> {
    let outer = match fields.iter().find(|(k, _)| k == "per_client") {
        Some((_, JsonValue::Object(inner))) => inner,
        Some(_) => return Err(ReportParseError::WrongType("per_client")),
        None => return Ok(Vec::new()),
    };
    let mut out = vec![ClientCounters::default(); outer.len()];
    for (slot, value) in outer {
        let idx: usize = slot
            .parse()
            .map_err(|_| ReportParseError::Malformed("per_client slot is not an index"))?;
        let entry = out
            .get_mut(idx)
            .ok_or(ReportParseError::Malformed("per_client slot out of range"))?;
        let JsonValue::Object(counters) = value else {
            return Err(ReportParseError::WrongType("per_client"));
        };
        let uint = |key: &'static str| match counters.iter().find(|(k, _)| k == key) {
            Some((_, JsonValue::Int(v))) => Ok(*v),
            Some(_) => Err(ReportParseError::WrongType(key)),
            None => Err(ReportParseError::MissingKey(key)),
        };
        *entry = ClientCounters {
            joins: uint("joins")?,
            bytes: uint("bytes")?,
            cell_crossings: uint("cell_crossings")?,
        };
    }
    Ok(out)
}

/// Why [`Report::from_json`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportParseError {
    /// The text is not the flat numeric-object schema `to_json` emits.
    Malformed(&'static str),
    /// A required key was absent.
    MissingKey(&'static str),
    /// A key held a nested object where a number was expected (or vice
    /// versa).
    WrongType(&'static str),
    /// A numeric token parsed to NaN or ±infinity (e.g. `1e999`); reports
    /// are finite by construction, so such input is corrupt.
    NonFinite,
}

impl core::fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReportParseError::Malformed(what) => write!(f, "malformed report JSON: {what}"),
            ReportParseError::MissingKey(key) => write!(f, "report JSON missing key {key:?}"),
            ReportParseError::WrongType(key) => write!(f, "report JSON key {key:?} has wrong type"),
            ReportParseError::NonFinite => write!(f, "report JSON contains a non-finite number"),
        }
    }
}

impl std::error::Error for ReportParseError {}

/// A non-finite value encountered while *writing* a record: the named
/// field held NaN or ±infinity, which the JSON schema cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonFiniteField(pub &'static str);

impl core::fmt::Display for NonFiniteField {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "run record field {:?} is not finite", self.0)
    }
}

impl std::error::Error for NonFiniteField {}

/// Full-fidelity serialization of a [`RunResult`].
///
/// Unlike [`Report`] (a rounded summary), a record retains **every sample
/// value at exact precision**: floats are written in Rust's
/// shortest-roundtrip decimal form and the duration as integer
/// nanoseconds, so `from_json(to_json(r))` reconstructs a `RunResult`
/// whose every statistic — quantiles, CDFs, means — is bit-identical to
/// the original's. The campaign cache relies on this: a cache *hit* must
/// regenerate a figure's text byte-for-byte as if the run had executed.
pub struct RunRecord;

/// Schema version stamped into every record (`"v"` key); bump when the
/// field set changes so stale cache entries are rejected, not misread.
pub const RUN_RECORD_VERSION: u64 = 1;

impl RunRecord {
    /// Serialize `result` losslessly.
    ///
    /// Errors if any float in the result is NaN or infinite (the
    /// simulator never produces one; hitting this means corrupt state
    /// that must not be cached).
    pub fn to_json(result: &RunResult) -> Result<String, NonFiniteField> {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"v\":{RUN_RECORD_VERSION},\"duration_ns\":{}",
            result.duration.as_nanos()
        ));
        for (key, value) in [
            ("total_bytes", result.total_bytes),
            ("dhcp_attempts", result.dhcp_attempts),
            ("dhcp_failures", result.dhcp_failures),
            ("assoc_attempts", result.assoc_attempts),
            ("assoc_failures", result.assoc_failures),
            ("switch_count", result.switch_count),
            ("tcp_rtos", result.tcp_rtos),
            ("backhaul_drops", result.backhaul_drops),
            ("psm_drops", result.psm_drops),
            ("unassociated_drops", result.unassociated_drops),
            ("air_drops", result.air_drops),
            ("max_concurrent_aps", result.max_concurrent_aps as u64),
        ] {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str(",\"avg_throughput_bps\":");
        out.push_str(&fmt_f64_exact(
            result.avg_throughput_bps,
            "avg_throughput_bps",
        )?);
        out.push_str(",\"connectivity\":");
        out.push_str(&fmt_f64_exact(result.connectivity, "connectivity")?);
        out.push_str(",\"concurrency_seconds\":");
        push_array(&mut out, &result.concurrency_seconds, "concurrency_seconds")?;
        for (key, samples) in [
            ("connection_durations", &result.connection_durations),
            ("disruption_durations", &result.disruption_durations),
            ("instantaneous_bandwidth", &result.instantaneous_bandwidth),
            ("assoc_times", &result.assoc_times),
            ("join_times", &result.join_times),
            ("switch_latencies", &result.switch_latencies),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            push_array(&mut out, samples.values(), key)?;
        }
        push_per_client(&mut out, &result.per_client);
        out.push('}');
        Ok(out)
    }

    /// Reconstruct a [`RunResult`] from [`RunRecord::to_json`] output.
    pub fn from_json(json: &str) -> Result<RunResult, ReportParseError> {
        let mut p = Parser::new(json);
        let fields = p.object()?;
        p.end()?;
        let num = |key: &'static str| -> Result<f64, ReportParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Number(v))) => Ok(*v),
                Some((_, JsonValue::Int(v))) => Ok(*v as f64),
                Some(_) => Err(ReportParseError::WrongType(key)),
                None => Err(ReportParseError::MissingKey(key)),
            }
        };
        // Counters must come back exact — `as f64` rounds above 2^53.
        let uint = |key: &'static str| -> Result<u64, ReportParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Int(v))) => Ok(*v),
                Some(_) => Err(ReportParseError::WrongType(key)),
                None => Err(ReportParseError::MissingKey(key)),
            }
        };
        let array = |key: &'static str| -> Result<&Vec<f64>, ReportParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonValue::Array(v))) => Ok(v),
                Some(_) => Err(ReportParseError::WrongType(key)),
                None => Err(ReportParseError::MissingKey(key)),
            }
        };
        let samples = |key: &'static str| -> Result<Samples, ReportParseError> {
            let mut s = Samples::new();
            for &v in array(key)? {
                s.record(v);
            }
            Ok(s)
        };
        if uint("v")? != RUN_RECORD_VERSION {
            return Err(ReportParseError::Malformed("unsupported record version"));
        }
        Ok(RunResult {
            duration: Duration::from_nanos(uint("duration_ns")?),
            total_bytes: uint("total_bytes")?,
            avg_throughput_bps: num("avg_throughput_bps")?,
            connectivity: num("connectivity")?,
            connection_durations: samples("connection_durations")?,
            disruption_durations: samples("disruption_durations")?,
            instantaneous_bandwidth: samples("instantaneous_bandwidth")?,
            assoc_times: samples("assoc_times")?,
            join_times: samples("join_times")?,
            switch_latencies: samples("switch_latencies")?,
            dhcp_attempts: uint("dhcp_attempts")?,
            dhcp_failures: uint("dhcp_failures")?,
            assoc_attempts: uint("assoc_attempts")?,
            assoc_failures: uint("assoc_failures")?,
            switch_count: uint("switch_count")?,
            max_concurrent_aps: uint("max_concurrent_aps")? as usize,
            concurrency_seconds: array("concurrency_seconds")?.clone(),
            tcp_rtos: uint("tcp_rtos")?,
            backhaul_drops: uint("backhaul_drops")?,
            psm_drops: uint("psm_drops")?,
            unassociated_drops: uint("unassociated_drops")?,
            air_drops: uint("air_drops")?,
            per_client: per_client_field(&fields)?,
        })
    }
}

/// Exact (shortest-roundtrip) float formatting; errors on non-finite.
fn fmt_f64_exact(v: f64, field: &'static str) -> Result<String, NonFiniteField> {
    if v.is_finite() {
        Ok(format!("{v}"))
    } else {
        Err(NonFiniteField(field))
    }
}

/// Append `values` as a JSON array at exact precision.
fn push_array(out: &mut String, values: &[f64], field: &'static str) -> Result<(), NonFiniteField> {
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_f64_exact(v, field)?);
    }
    out.push(']');
    Ok(())
}

/// A value in the report schema: numbers at the leaves, one level of
/// nesting for the quantile summaries, and flat numeric arrays for the
/// full-fidelity sample sets of a [`RunRecord`]. This is all the two
/// writers ever emit, so the parser does not model strings or booleans.
enum JsonValue {
    Number(f64),
    /// A pure digit-run token that fits `u64`, kept exact: counters like
    /// `total_bytes` exceed 2^53 in long campaigns, where the `f64` path
    /// would silently round.
    Int(u64),
    Object(Vec<(String, JsonValue)>),
    Array(Vec<f64>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8, what: &'static str) -> Result<(), ReportParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ReportParseError::Malformed(what))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, JsonValue)>, ReportParseError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.key()?;
            self.expect_byte(b':', "expected ':' after key")?;
            let value = match self.peek() {
                Some(b'{') => JsonValue::Object(self.object()?),
                Some(b'[') => JsonValue::Array(self.array()?),
                _ => self.scalar()?,
            };
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(ReportParseError::Malformed("expected ',' or '}'")),
            }
        }
    }

    fn key(&mut self) -> Result<String, ReportParseError> {
        self.expect_byte(b'"', "expected '\"' to open key")?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let key = core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ReportParseError::Malformed("key is not UTF-8"))?
                    .to_string();
                self.pos += 1;
                return Ok(key);
            }
            if b == b'\\' {
                // `to_json` keys are plain identifiers; escapes are out of
                // schema.
                return Err(ReportParseError::Malformed("escape in key"));
            }
            self.pos += 1;
        }
        Err(ReportParseError::Malformed("unterminated key"))
    }

    fn array(&mut self) -> Result<Vec<f64>, ReportParseError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut values = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(values);
        }
        loop {
            values.push(self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(values);
                }
                _ => return Err(ReportParseError::Malformed("expected ',' or ']'")),
            }
        }
    }

    /// One scalar value: an exact [`JsonValue::Int`] when the token is a
    /// pure digit run in `u64` range, a float otherwise.
    fn scalar(&mut self) -> Result<JsonValue, ReportParseError> {
        self.skip_ws();
        let start = self.pos;
        let value = self.number()?;
        let token = &self.bytes[start..self.pos];
        if token.iter().all(|b| b.is_ascii_digit()) {
            // All-ASCII-digit tokens are valid UTF-8 by construction.
            if let Some(i) = core::str::from_utf8(token)
                .ok()
                .and_then(|t| t.parse::<u64>().ok())
            {
                return Ok(JsonValue::Int(i));
            }
        }
        Ok(JsonValue::Number(value))
    }

    fn number(&mut self) -> Result<f64, ReportParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let value = core::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or(ReportParseError::Malformed("expected a number"))?;
        if value.is_finite() {
            Ok(value)
        } else {
            // The token itself was numeric (e.g. `1e999`) but overflows to
            // infinity — corrupt input, distinct from a syntax error.
            Err(ReportParseError::NonFinite)
        }
    }

    fn end(&mut self) -> Result<(), ReportParseError> {
        if self.peek().is_none() {
            Ok(())
        } else {
            Err(ReportParseError::Malformed("trailing characters"))
        }
    }
}

/// JSON-safe float formatting (no NaN/inf; finite shortest-ish form).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // Limit precision for stable, diff-friendly output.
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpiderConfig;
    use crate::world::{run, ClientMotion, WorldConfig};
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use wifi_mac::channel::Channel;

    fn sample_run() -> RunResult {
        let site = ApSite {
            id: 1,
            position: Point::new(0.0, 0.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        run(WorldConfig::new(
            5,
            vec![site],
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(15),
        ))
    }

    #[test]
    fn report_reflects_the_run() {
        let result = sample_run();
        let report = Report::from_run(&result);
        assert_eq!(report.total_bytes, result.total_bytes);
        assert_eq!(report.joins, result.join_times.count());
        assert!((report.duration_secs - 15.0).abs() < 1e-9);
        assert!(report.avg_throughput_kbps > 0.0);
    }

    #[test]
    fn json_is_wellformed_enough_to_roundtrip_keys() {
        let report = Report::from_run(&sample_run());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "total_bytes",
            "avg_throughput_kbps",
            "connectivity",
            "join_times_s",
            "instantaneous_bps",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing key {key} in {json}"
            );
        }
        // Balanced braces and no NaN/inf tokens.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn json_roundtrips_through_from_json() {
        // `to_json` rounds floats to six decimals, so the roundtrip
        // invariant is a serialization fixpoint, not bit-equality with the
        // in-memory report.
        let json = Report::from_run(&sample_run()).to_json();
        let parsed = Report::from_json(&json).expect("parse");
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn from_json_accepts_whitespace_and_ignores_unknown_keys() {
        let json = Report::from_run(&sample_run()).to_json();
        let pretty = json.replace(',', ",\n  ").replace('{', "{ ").replacen(
            '{',
            "{\"schema_version\": 1,",
            1,
        );
        let parsed = Report::from_json(&pretty).expect("parse pretty variant");
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Report::from_json("not json"),
            Err(ReportParseError::Malformed(_))
        ));
        assert!(matches!(
            Report::from_json("{\"duration_secs\":1}"),
            Err(ReportParseError::MissingKey(_))
        ));
        let truncated = Report::from_run(&sample_run()).to_json();
        let truncated = &truncated[..truncated.len() - 2];
        assert!(Report::from_json(truncated).is_err());
    }

    #[test]
    fn from_json_rejects_wrong_types() {
        let swapped = Report::from_run(&sample_run())
            .to_json()
            .replace("\"total_bytes\":", "\"total_bytes\":{\"n\":0,\"p10\":0,\"p50\":0,\"p90\":0,\"max\":0},\"was_total_bytes\":");
        assert_eq!(
            Report::from_json(&swapped),
            Err(ReportParseError::WrongType("total_bytes"))
        );
    }

    #[test]
    fn nonfinite_numeric_tokens_get_the_typed_error() {
        let json = Report::from_run(&sample_run()).to_json();
        let poisoned = json.replacen("\"duration_secs\":", "\"duration_secs\":1e999,\"was\":", 1);
        assert_eq!(
            Report::from_json(&poisoned),
            Err(ReportParseError::NonFinite)
        );
    }

    #[test]
    fn run_record_roundtrip_is_exact() {
        let result = sample_run();
        let json = RunRecord::to_json(&result).expect("serialize");
        let back = RunRecord::from_json(&json).expect("parse");
        // Fixpoint: re-serializing the reconstruction is byte-identical.
        assert_eq!(RunRecord::to_json(&back).expect("serialize"), json);
        // Bit-exact sample values and scalars, so every derived statistic
        // (quantiles, CDFs) matches the fresh run exactly.
        assert_eq!(back.duration, result.duration);
        assert_eq!(back.total_bytes, result.total_bytes);
        assert_eq!(
            back.avg_throughput_bps.to_bits(),
            result.avg_throughput_bps.to_bits()
        );
        assert_eq!(back.connectivity.to_bits(), result.connectivity.to_bits());
        assert_eq!(back.join_times.values(), result.join_times.values());
        assert_eq!(back.assoc_times.values(), result.assoc_times.values());
        assert_eq!(
            back.instantaneous_bandwidth.values(),
            result.instantaneous_bandwidth.values()
        );
        assert_eq!(back.concurrency_seconds, result.concurrency_seconds);
        // The flattened summary agrees too.
        assert_eq!(Report::from_run(&back), Report::from_run(&result));
    }

    #[test]
    fn run_record_rejects_version_drift_and_truncation() {
        let json = RunRecord::to_json(&sample_run()).expect("serialize");
        let newer = json.replacen("{\"v\":1,", "{\"v\":2,", 1);
        assert!(matches!(
            RunRecord::from_json(&newer),
            Err(ReportParseError::Malformed("unsupported record version"))
        ));
        for cut in [json.len() / 4, json.len() / 2, json.len() - 1] {
            assert!(
                RunRecord::from_json(&json[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn run_record_refuses_to_serialize_nonfinite_state() {
        let mut result = sample_run();
        result.avg_throughput_bps = f64::INFINITY;
        assert_eq!(
            RunRecord::to_json(&result),
            Err(NonFiniteField("avg_throughput_bps"))
        );
    }

    #[test]
    fn per_client_counters_roundtrip_u64_exact() {
        let mut result = sample_run();
        // Above 2^53 so the f64 path would silently round — must stay exact.
        result.per_client = vec![
            ClientCounters {
                joins: 3,
                bytes: u64::MAX - 7,
                cell_crossings: 12,
            },
            ClientCounters::default(),
        ];
        let json = RunRecord::to_json(&result).expect("serialize");
        let back = RunRecord::from_json(&json).expect("parse");
        assert_eq!(back.per_client, result.per_client);
        assert_eq!(RunRecord::to_json(&back).expect("serialize"), json);
        let report_json = Report::from_run(&result).to_json();
        let parsed = Report::from_json(&report_json).expect("parse");
        assert_eq!(parsed.per_client, result.per_client);
    }

    #[test]
    fn pre_fleet_json_without_per_client_still_parses() {
        let result = sample_run();
        let strip = |json: &str| {
            let start = json.find(",\"per_client\":").expect("per_client emitted");
            format!("{}}}", &json[..start])
        };
        let record = RunRecord::to_json(&result).expect("serialize");
        let back = RunRecord::from_json(&strip(&record)).expect("legacy record parses");
        assert!(back.per_client.is_empty());
        assert_eq!(back.total_bytes, result.total_bytes);
        assert_eq!(back.join_times.values(), result.join_times.values());
        let report = Report::from_run(&result).to_json();
        let parsed = Report::from_json(&strip(&report)).expect("legacy report parses");
        assert!(parsed.per_client.is_empty());
        assert_eq!(parsed.total_bytes, result.total_bytes);
    }

    #[test]
    fn per_client_rejects_bad_slots_and_types() {
        let mut result = sample_run();
        result.per_client = vec![ClientCounters::default()];
        let json = RunRecord::to_json(&result).expect("serialize");
        let bad_slot = json.replacen("\"per_client\":{\"0\":", "\"per_client\":{\"9\":", 1);
        assert!(matches!(
            RunRecord::from_json(&bad_slot),
            Err(ReportParseError::Malformed("per_client slot out of range"))
        ));
        let bad_type = json.replacen("\"per_client\":{\"0\":", "\"per_client\":{\"x\":", 1);
        assert!(matches!(
            RunRecord::from_json(&bad_type),
            Err(ReportParseError::Malformed(_))
        ));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(0.333333333), "0.333333");
    }
}
