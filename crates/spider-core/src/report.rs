//! Machine-readable run reports.
//!
//! [`RunResult`] holds raw sample sets; a
//! [`Report`] flattens it into the summary numbers the experiments print,
//! in a form that serializes cleanly — `serde` derives for downstream
//! tooling, plus a dependency-free [`Report::to_json`] so the workspace
//! itself needs no JSON crate.

use serde::{Deserialize, Serialize};
use sim_engine::stats::Samples;

use crate::world::RunResult;

/// A five-number summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Sample count.
    pub n: usize,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Quantiles {
    fn of(samples: &Samples) -> Quantiles {
        let mut s = samples.clone();
        Quantiles {
            n: s.count(),
            p10: s.quantile(0.10),
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            max: if s.is_empty() { 0.0 } else { s.quantile(1.0) },
        }
    }

    fn json(&self) -> String {
        format!(
            r#"{{"n":{},"p10":{},"p50":{},"p90":{},"max":{}}}"#,
            self.n,
            fmt_f64(self.p10),
            fmt_f64(self.p50),
            fmt_f64(self.p90),
            fmt_f64(self.max)
        )
    }
}

/// The flattened summary of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment length, seconds.
    pub duration_secs: f64,
    /// Bytes delivered to the sink.
    pub total_bytes: u64,
    /// Average throughput, KB/s (the paper's unit).
    pub avg_throughput_kbps: f64,
    /// Fraction of seconds with non-zero transfer.
    pub connectivity: f64,
    /// Successful joins.
    pub joins: usize,
    /// Association attempts / failures.
    pub assoc_attempts: u64,
    /// See `assoc_attempts`.
    pub assoc_failures: u64,
    /// DHCP attempts / failures.
    pub dhcp_attempts: u64,
    /// See `dhcp_attempts`.
    pub dhcp_failures: u64,
    /// Channel switches performed.
    pub switch_count: u64,
    /// Peak simultaneous associations.
    pub max_concurrent_aps: usize,
    /// TCP retransmission timeouts.
    pub tcp_rtos: u64,
    /// Join-time distribution, seconds.
    pub join_times_s: Quantiles,
    /// Connection-run distribution, seconds (Fig. 10a).
    pub connections_s: Quantiles,
    /// Disruption-run distribution, seconds (Fig. 10b).
    pub disruptions_s: Quantiles,
    /// Instantaneous bandwidth, bytes per connected second (Fig. 10c).
    pub instantaneous_bps: Quantiles,
}

impl Report {
    /// Flatten a [`RunResult`].
    pub fn from_run(result: &RunResult) -> Report {
        Report {
            duration_secs: result.duration.as_secs_f64(),
            total_bytes: result.total_bytes,
            avg_throughput_kbps: result.avg_throughput_kbps(),
            connectivity: result.connectivity,
            joins: result.join_times.count(),
            assoc_attempts: result.assoc_attempts,
            assoc_failures: result.assoc_failures,
            dhcp_attempts: result.dhcp_attempts,
            dhcp_failures: result.dhcp_failures,
            switch_count: result.switch_count,
            max_concurrent_aps: result.max_concurrent_aps,
            tcp_rtos: result.tcp_rtos,
            join_times_s: Quantiles::of(&result.join_times),
            connections_s: Quantiles::of(&result.connection_durations),
            disruptions_s: Quantiles::of(&result.disruption_durations),
            instantaneous_bps: Quantiles::of(&result.instantaneous_bandwidth),
        }
    }

    /// Serialize to a single JSON object (stable key order, no external
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"duration_secs":{},"total_bytes":{},"avg_throughput_kbps":{},"#,
                r#""connectivity":{},"joins":{},"assoc_attempts":{},"assoc_failures":{},"#,
                r#""dhcp_attempts":{},"dhcp_failures":{},"switch_count":{},"#,
                r#""max_concurrent_aps":{},"tcp_rtos":{},"join_times_s":{},"#,
                r#""connections_s":{},"disruptions_s":{},"instantaneous_bps":{}}}"#
            ),
            fmt_f64(self.duration_secs),
            self.total_bytes,
            fmt_f64(self.avg_throughput_kbps),
            fmt_f64(self.connectivity),
            self.joins,
            self.assoc_attempts,
            self.assoc_failures,
            self.dhcp_attempts,
            self.dhcp_failures,
            self.switch_count,
            self.max_concurrent_aps,
            self.tcp_rtos,
            self.join_times_s.json(),
            self.connections_s.json(),
            self.disruptions_s.json(),
            self.instantaneous_bps.json(),
        )
    }
}

/// JSON-safe float formatting (no NaN/inf; finite shortest-ish form).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // Limit precision for stable, diff-friendly output.
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() { "0".to_string() } else { s.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpiderConfig;
    use crate::world::{run, ClientMotion, WorldConfig};
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use wifi_mac::channel::Channel;

    fn sample_run() -> RunResult {
        let site = ApSite {
            id: 1,
            position: Point::new(0.0, 0.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        };
        run(WorldConfig::new(
            5,
            vec![site],
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(15),
        ))
    }

    #[test]
    fn report_reflects_the_run() {
        let result = sample_run();
        let report = Report::from_run(&result);
        assert_eq!(report.total_bytes, result.total_bytes);
        assert_eq!(report.joins, result.join_times.count());
        assert!((report.duration_secs - 15.0).abs() < 1e-9);
        assert!(report.avg_throughput_kbps > 0.0);
    }

    #[test]
    fn json_is_wellformed_enough_to_roundtrip_keys() {
        let report = Report::from_run(&sample_run());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "total_bytes",
            "avg_throughput_kbps",
            "connectivity",
            "join_times_s",
            "instantaneous_bps",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key} in {json}");
        }
        // Balanced braces and no NaN/inf tokens.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(0.333333333), "0.333333");
    }
}
