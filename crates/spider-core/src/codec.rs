//! Binary wire codec for [`WorldConfig`].
//!
//! The campaign cache only ever needed a *hash* of the configuration; the
//! fleet worker protocol needs the configuration itself to cross a process
//! boundary. This module is the lossless round-trip: every field is encoded
//! with fixed-width big-endian integers (floats as IEEE-754 bit patterns, so
//! the round trip is exact), enums as one-byte tags, and collections as
//! u32-counted sequences.
//!
//! `decode_world(encode_world(c))` reproduces a configuration whose `Debug`
//! rendering — the campaign shard-hash preimage — is byte-identical to the
//! original's, so a decoded shard hashes to the same cache entry.
//!
//! The decoder is total: malformed input yields [`CodecError`], never a
//! panic. Constructors that panic on bad input (`Route::new`,
//! `Vehicle::with_profile`) are guarded by explicit pre-validation.

use mobility::deployment::ApSite;
use mobility::geometry::Point;
use mobility::route::{Route, SpeedProfile, Vehicle};
use sim_engine::time::{Duration, Instant};
use sim_engine::wire::{Reader, WireError, Writer};
use tcp_lite::TcpConfig;
use wifi_mac::channel::Channel;
use wifi_mac::client::JoinConfig;
use wifi_mac::phy::PhyConfig;
use wifi_mac::radio::RadioConfig;
use workload::downloads::DownloadPlan;

use crate::config::{SchedulePolicy, SelectionPolicy, SpiderConfig};
use crate::world::{ClientMotion, WorldConfig};
use dhcp::client::DhcpClientConfig;

/// Version byte pair leading every encoded configuration. Bump on any
/// layout change; decoders reject other versions outright. v2 appended
/// the fleet section (extra client motions) and the `WebMix` plan tag.
pub const WORLD_CODEC_VERSION: u16 = 2;

/// Hard ceilings on decoded collection sizes: a corrupt or adversarial
/// length prefix must not translate into an unbounded allocation.
const MAX_SITES: u32 = 1 << 16;
const MAX_VERTICES: u32 = 1 << 20;
const MAX_SLICES: u32 = 1 << 16;
const MAX_FLEET: u32 = 1 << 12;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field did.
    Truncated(WireError),
    /// Structurally complete but semantically invalid (bad tag, bad
    /// channel number, zero-length route, …).
    Invalid(&'static str),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated(e) => write!(f, "world codec: {e}"),
            CodecError::Invalid(what) => write!(f, "world codec: invalid {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> CodecError {
        CodecError::Truncated(e)
    }
}

/// Encode `world` into `w`.
pub fn encode_world_into(world: &WorldConfig, w: &mut Writer) {
    w.put_u16(WORLD_CODEC_VERSION);
    w.put_u64(world.seed);
    put_phy(w, &world.phy);
    put_radio(w, &world.radio);
    w.put_u32(world.sites.len() as u32);
    for site in &world.sites {
        put_site(w, site);
    }
    put_motion(w, &world.motion);
    put_spider(w, &world.spider);
    put_tcp(w, &world.tcp);
    put_duration(w, world.duration);
    put_duration(w, world.backhaul_latency);
    w.put_u64(world.bytes_per_connection);
    put_plan(w, &world.plan);
    w.put_u32(world.fleet.len() as u32);
    for motion in &world.fleet {
        put_motion(w, motion);
    }
}

/// Encode `world` into a fresh buffer.
pub fn encode_world(world: &WorldConfig) -> Vec<u8> {
    let mut w = Writer::with_capacity(512);
    encode_world_into(world, &mut w);
    w.into_vec()
}

/// Decode a configuration previously produced by [`encode_world`]. The
/// whole buffer must be consumed; trailing bytes are an error.
pub fn decode_world(buf: &[u8]) -> Result<WorldConfig, CodecError> {
    let mut r = Reader::new(buf);
    let version = r.get_u16()?;
    if version != WORLD_CODEC_VERSION {
        return Err(CodecError::Invalid("codec version"));
    }
    let seed = r.get_u64()?;
    let phy = get_phy(&mut r)?;
    let radio = get_radio(&mut r)?;
    let n_sites = r.get_u32()?;
    if n_sites > MAX_SITES {
        return Err(CodecError::Invalid("site count"));
    }
    let mut sites = Vec::with_capacity(n_sites as usize);
    for _ in 0..n_sites {
        sites.push(get_site(&mut r)?);
    }
    let motion = get_motion(&mut r)?;
    let spider = get_spider(&mut r)?;
    let tcp = get_tcp(&mut r)?;
    let duration = get_duration(&mut r)?;
    let backhaul_latency = get_duration(&mut r)?;
    let bytes_per_connection = r.get_u64()?;
    let plan = get_plan(&mut r)?;
    let n_fleet = r.get_u32()?;
    if n_fleet > MAX_FLEET {
        return Err(CodecError::Invalid("fleet size"));
    }
    let mut fleet = Vec::with_capacity(n_fleet as usize);
    for _ in 0..n_fleet {
        fleet.push(get_motion(&mut r)?);
    }
    if !r.is_empty() {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(WorldConfig {
        seed,
        phy,
        radio,
        sites,
        motion,
        spider,
        tcp,
        duration,
        backhaul_latency,
        bytes_per_connection,
        plan,
        fleet,
    })
}

// ---- scalar helpers --------------------------------------------------------

fn put_f64(w: &mut Writer, v: f64) {
    w.put_u64(v.to_bits());
}

fn get_f64(r: &mut Reader) -> Result<f64, CodecError> {
    Ok(f64::from_bits(r.get_u64()?))
}

fn put_duration(w: &mut Writer, d: Duration) {
    w.put_u64(d.as_nanos());
}

fn get_duration(r: &mut Reader) -> Result<Duration, CodecError> {
    Ok(Duration::from_nanos(r.get_u64()?))
}

fn put_bool(w: &mut Writer, b: bool) {
    w.put_u8(b as u8);
}

fn get_bool(r: &mut Reader) -> Result<bool, CodecError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::Invalid("bool byte")),
    }
}

fn put_channel(w: &mut Writer, c: Channel) {
    w.put_u8(c.number());
}

fn get_channel(r: &mut Reader) -> Result<Channel, CodecError> {
    Channel::new(r.get_u8()?).ok_or(CodecError::Invalid("channel number"))
}

fn put_point(w: &mut Writer, p: Point) {
    put_f64(w, p.x);
    put_f64(w, p.y);
}

fn get_point(r: &mut Reader) -> Result<Point, CodecError> {
    let x = get_f64(r)?;
    let y = get_f64(r)?;
    Ok(Point { x, y })
}

// ---- composite sections ----------------------------------------------------

fn put_phy(w: &mut Writer, phy: &PhyConfig) {
    put_f64(w, phy.tx_power_dbm);
    put_f64(w, phy.ref_loss_db);
    put_f64(w, phy.path_loss_exponent);
    put_f64(w, phy.noise_floor_dbm);
    put_f64(w, phy.per_midpoint_snr_db);
    put_f64(w, phy.per_slope_db);
    w.put_u64(phy.reference_frame_len as u64);
    w.put_u64(phy.bitrate_bps);
    put_duration(w, phy.preamble);
    put_duration(w, phy.difs);
    put_duration(w, phy.mean_backoff);
    w.put_u32(phy.data_retries);
}

fn get_phy(r: &mut Reader) -> Result<PhyConfig, CodecError> {
    Ok(PhyConfig {
        tx_power_dbm: get_f64(r)?,
        ref_loss_db: get_f64(r)?,
        path_loss_exponent: get_f64(r)?,
        noise_floor_dbm: get_f64(r)?,
        per_midpoint_snr_db: get_f64(r)?,
        per_slope_db: get_f64(r)?,
        reference_frame_len: get_usize(r)?,
        bitrate_bps: r.get_u64()?,
        preamble: get_duration(r)?,
        difs: get_duration(r)?,
        mean_backoff: get_duration(r)?,
        data_retries: r.get_u32()?,
    })
}

fn get_usize(r: &mut Reader) -> Result<usize, CodecError> {
    usize::try_from(r.get_u64()?).map_err(|_| CodecError::Invalid("usize field"))
}

fn put_radio(w: &mut Writer, radio: &RadioConfig) {
    put_duration(w, radio.reset);
    put_duration(w, radio.reset_jitter);
    put_duration(w, radio.per_iface);
    put_duration(w, radio.per_iface_jitter);
}

fn get_radio(r: &mut Reader) -> Result<RadioConfig, CodecError> {
    Ok(RadioConfig {
        reset: get_duration(r)?,
        reset_jitter: get_duration(r)?,
        per_iface: get_duration(r)?,
        per_iface_jitter: get_duration(r)?,
    })
}

fn put_site(w: &mut Writer, site: &ApSite) {
    w.put_u32(site.id);
    put_point(w, site.position);
    put_channel(w, site.channel);
    w.put_u64(site.backhaul_bps);
    put_duration(w, site.dhcp_delay_min);
    put_duration(w, site.dhcp_delay_max);
}

fn get_site(r: &mut Reader) -> Result<ApSite, CodecError> {
    Ok(ApSite {
        id: r.get_u32()?,
        position: get_point(r)?,
        channel: get_channel(r)?,
        backhaul_bps: r.get_u64()?,
        dhcp_delay_min: get_duration(r)?,
        dhcp_delay_max: get_duration(r)?,
    })
}

fn put_motion(w: &mut Writer, motion: &ClientMotion) {
    match motion {
        ClientMotion::Fixed(p) => {
            w.put_u8(0);
            put_point(w, *p);
        }
        ClientMotion::Route(vehicle) => {
            w.put_u8(1);
            let route = vehicle.route();
            let vertices = route.vertices();
            w.put_u32(vertices.len() as u32);
            for p in vertices {
                put_point(w, *p);
            }
            put_bool(w, route.is_loop());
            put_profile(w, vehicle.profile());
            w.put_u64(vehicle.departed().as_nanos());
        }
    }
}

fn get_motion(r: &mut Reader) -> Result<ClientMotion, CodecError> {
    match r.get_u8()? {
        0 => Ok(ClientMotion::Fixed(get_point(r)?)),
        1 => {
            let n = r.get_u32()?;
            if n > MAX_VERTICES {
                return Err(CodecError::Invalid("vertex count"));
            }
            let mut points = Vec::with_capacity(n as usize);
            for _ in 0..n {
                points.push(get_point(r)?);
            }
            let looped = get_bool(r)?;
            let profile = get_profile(r)?;
            let departed = Instant::from_nanos(r.get_u64()?);
            // Pre-validate everything Route::new / Vehicle::with_profile
            // would otherwise assert on: the decoder must never panic.
            if points.len() < 2 {
                return Err(CodecError::Invalid("route vertex count"));
            }
            let mut total = 0.0;
            for pair in points.windows(2) {
                total += pair[0].distance(pair[1]);
            }
            if looped {
                total += points[points.len() - 1].distance(points[0]);
            }
            if total.is_nan() || total <= 0.0 {
                return Err(CodecError::Invalid("route length"));
            }
            let route = Route::new(points, looped);
            Ok(ClientMotion::Route(Vehicle::with_profile(
                route, profile, departed,
            )))
        }
        _ => Err(CodecError::Invalid("motion tag")),
    }
}

fn put_profile(w: &mut Writer, profile: &SpeedProfile) {
    match *profile {
        SpeedProfile::Constant(v) => {
            w.put_u8(0);
            put_f64(w, v);
        }
        SpeedProfile::StopAndGo {
            cruise,
            stop_every,
            stop_for,
        } => {
            w.put_u8(1);
            put_f64(w, cruise);
            put_f64(w, stop_every);
            put_f64(w, stop_for);
        }
    }
}

fn get_profile(r: &mut Reader) -> Result<SpeedProfile, CodecError> {
    match r.get_u8()? {
        0 => {
            let v = get_f64(r)?;
            if !(v > 0.0 && v.is_finite()) {
                return Err(CodecError::Invalid("constant speed"));
            }
            Ok(SpeedProfile::Constant(v))
        }
        1 => {
            let cruise = get_f64(r)?;
            let stop_every = get_f64(r)?;
            let stop_for = get_f64(r)?;
            if !(cruise > 0.0 && cruise.is_finite()) {
                return Err(CodecError::Invalid("cruise speed"));
            }
            if stop_every.is_nan() || stop_every <= 0.0 {
                return Err(CodecError::Invalid("stop spacing"));
            }
            if stop_for.is_nan() || stop_for < 0.0 {
                return Err(CodecError::Invalid("stop dwell"));
            }
            Ok(SpeedProfile::StopAndGo {
                cruise,
                stop_every,
                stop_for,
            })
        }
        _ => Err(CodecError::Invalid("speed profile tag")),
    }
}

fn put_spider(w: &mut Writer, spider: &SpiderConfig) {
    put_schedule(w, &spider.schedule);
    w.put_u64(spider.max_ifaces as u64);
    put_bool(w, spider.single_ap);
    put_bool(w, spider.join.use_probe);
    put_duration(w, spider.join.link_layer_timeout);
    w.put_u32(spider.join.attempts_per_phase);
    put_duration(w, spider.dhcp.retx_timeout);
    put_duration(w, spider.dhcp.attempt_budget);
    put_duration(w, spider.dhcp.idle_after_fail);
    w.put_u8(match spider.selection {
        SelectionPolicy::JoinHistory => 0,
        SelectionPolicy::BestRssi => 1,
    });
    put_bool(w, spider.lease_cache);
    put_duration(w, spider.ap_loss_timeout);
    put_duration(w, spider.evaluate_every);
    put_duration(w, spider.retry_backoff);
    put_f64(w, spider.min_join_rssi_dbm);
    put_duration(w, spider.join_setup_delay);
}

fn get_spider(r: &mut Reader) -> Result<SpiderConfig, CodecError> {
    let schedule = get_schedule(r)?;
    let max_ifaces = get_usize(r)?;
    let single_ap = get_bool(r)?;
    let join = JoinConfig {
        use_probe: get_bool(r)?,
        link_layer_timeout: get_duration(r)?,
        attempts_per_phase: r.get_u32()?,
    };
    let dhcp = DhcpClientConfig {
        retx_timeout: get_duration(r)?,
        attempt_budget: get_duration(r)?,
        idle_after_fail: get_duration(r)?,
    };
    let selection = match r.get_u8()? {
        0 => SelectionPolicy::JoinHistory,
        1 => SelectionPolicy::BestRssi,
        _ => return Err(CodecError::Invalid("selection tag")),
    };
    Ok(SpiderConfig {
        schedule,
        max_ifaces,
        single_ap,
        join,
        dhcp,
        selection,
        lease_cache: get_bool(r)?,
        ap_loss_timeout: get_duration(r)?,
        evaluate_every: get_duration(r)?,
        retry_backoff: get_duration(r)?,
        min_join_rssi_dbm: get_f64(r)?,
        join_setup_delay: get_duration(r)?,
    })
}

fn put_schedule(w: &mut Writer, schedule: &SchedulePolicy) {
    match schedule {
        SchedulePolicy::SingleChannel(c) => {
            w.put_u8(0);
            put_channel(w, *c);
        }
        SchedulePolicy::MultiChannel { slices } => {
            w.put_u8(1);
            w.put_u32(slices.len() as u32);
            for (c, d) in slices {
                put_channel(w, *c);
                put_duration(w, *d);
            }
        }
        SchedulePolicy::ScanWhenIdle { dwell } => {
            w.put_u8(2);
            put_duration(w, *dwell);
        }
        SchedulePolicy::AdaptiveChannel {
            reconsider,
            scan_dwell,
        } => {
            w.put_u8(3);
            put_duration(w, *reconsider);
            put_duration(w, *scan_dwell);
        }
    }
}

fn get_schedule(r: &mut Reader) -> Result<SchedulePolicy, CodecError> {
    match r.get_u8()? {
        0 => Ok(SchedulePolicy::SingleChannel(get_channel(r)?)),
        1 => {
            let n = r.get_u32()?;
            if n > MAX_SLICES {
                return Err(CodecError::Invalid("slice count"));
            }
            let mut slices = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let c = get_channel(r)?;
                let d = get_duration(r)?;
                slices.push((c, d));
            }
            Ok(SchedulePolicy::MultiChannel { slices })
        }
        2 => Ok(SchedulePolicy::ScanWhenIdle {
            dwell: get_duration(r)?,
        }),
        3 => Ok(SchedulePolicy::AdaptiveChannel {
            reconsider: get_duration(r)?,
            scan_dwell: get_duration(r)?,
        }),
        _ => Err(CodecError::Invalid("schedule tag")),
    }
}

fn put_tcp(w: &mut Writer, tcp: &TcpConfig) {
    w.put_u32(tcp.mss);
    w.put_u64(tcp.rwnd);
    put_duration(w, tcp.min_rto);
    put_duration(w, tcp.max_rto);
    w.put_u32(tcp.max_timeouts);
}

fn get_tcp(r: &mut Reader) -> Result<TcpConfig, CodecError> {
    Ok(TcpConfig {
        mss: r.get_u32()?,
        rwnd: r.get_u64()?,
        min_rto: get_duration(r)?,
        max_rto: get_duration(r)?,
        max_timeouts: r.get_u32()?,
    })
}

fn put_plan(w: &mut Writer, plan: &DownloadPlan) {
    match *plan {
        DownloadPlan::Saturating => w.put_u8(0),
        DownloadPlan::Segmented {
            object_bytes,
            think,
        } => {
            w.put_u8(1);
            w.put_u64(object_bytes);
            put_duration(w, think);
        }
        DownloadPlan::WebMix { think } => {
            w.put_u8(2);
            put_duration(w, think);
        }
    }
}

fn get_plan(r: &mut Reader) -> Result<DownloadPlan, CodecError> {
    match r.get_u8()? {
        0 => Ok(DownloadPlan::Saturating),
        1 => {
            let object_bytes = r.get_u64()?;
            let think = get_duration(r)?;
            Ok(DownloadPlan::Segmented {
                object_bytes,
                think,
            })
        }
        2 => Ok(DownloadPlan::WebMix {
            think: get_duration(r)?,
        }),
        _ => Err(CodecError::Invalid("plan tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sites() -> Vec<ApSite> {
        vec![
            ApSite {
                id: 3,
                position: Point::new(10.0, -4.5),
                channel: Channel::CH6,
                backhaul_bps: 1_500_000,
                dhcp_delay_min: Duration::from_millis(20),
                dhcp_delay_max: Duration::from_millis(60),
            },
            ApSite {
                id: 9,
                position: Point::new(-120.25, 33.0),
                channel: Channel::CH11,
                backhaul_bps: 800_000,
                dhcp_delay_min: Duration::from_millis(5),
                dhcp_delay_max: Duration::from_millis(40),
            },
        ]
    }

    /// A vehicular world exercising the non-default variants: rectangle
    /// route, stop-and-go profile, multi-channel schedule, segmented plan.
    fn vehicular_sample(seed: u64) -> WorldConfig {
        let vehicle = Vehicle::with_profile(
            Route::rectangle(400.0, 250.0),
            SpeedProfile::StopAndGo {
                cruise: 12.0,
                stop_every: 180.0,
                stop_for: 8.0,
            },
            Instant::from_nanos(5),
        );
        let mut world = WorldConfig::new(
            seed,
            sample_sites(),
            ClientMotion::Route(vehicle),
            SpiderConfig::multi_channel_multi_ap(Duration::from_millis(200)),
            Duration::from_secs(30),
        );
        world.plan = DownloadPlan::Segmented {
            object_bytes: 1 << 20,
            think: Duration::from_millis(750),
        };
        world
    }

    fn fixed_sample(seed: u64) -> WorldConfig {
        WorldConfig::new(
            seed,
            sample_sites(),
            ClientMotion::Fixed(Point::new(0.0, 35.0)),
            SpiderConfig::stock_madwifi(),
            Duration::from_secs(10),
        )
    }

    fn debug_of(w: &WorldConfig) -> String {
        format!("{w:?}")
    }

    #[test]
    fn vehicular_world_round_trips() {
        let world = vehicular_sample(7);
        let back = decode_world(&encode_world(&world)).expect("decode");
        assert_eq!(debug_of(&world), debug_of(&back));
    }

    #[test]
    fn fixed_world_round_trips() {
        let world = fixed_sample(11);
        let back = decode_world(&encode_world(&world)).expect("decode");
        assert_eq!(debug_of(&world), debug_of(&back));
    }

    #[test]
    fn decoded_world_hashes_identically() {
        // The Debug rendering is the campaign shard-hash preimage; equal
        // renderings mean a decoded shard maps to the same cache entry.
        let world = vehicular_sample(42);
        let back = decode_world(&encode_world(&world)).expect("decode");
        assert_eq!(debug_of(&world), debug_of(&back));
    }

    #[test]
    fn fleet_world_round_trips() {
        // A fleet mixing both motion kinds plus the WebMix plan — every
        // v2 codec addition in one buffer.
        let mut world = vehicular_sample(3);
        world.plan = DownloadPlan::WebMix {
            think: Duration::from_millis(900),
        };
        world.fleet = vec![
            ClientMotion::Fixed(Point::new(55.0, -2.0)),
            ClientMotion::Route(Vehicle::with_profile(
                Route::rectangle(300.0, 150.0),
                SpeedProfile::Constant(9.0),
                Instant::from_nanos(7_000_000_000),
            )),
        ];
        let back = decode_world(&encode_world(&world)).expect("decode");
        assert_eq!(debug_of(&world), debug_of(&back));
    }

    #[test]
    fn oversized_fleet_rejected() {
        let world = fixed_sample(5);
        let mut bytes = encode_world(&world);
        // The fleet count is the last four bytes of an empty-fleet buffer.
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&(MAX_FLEET + 1).to_be_bytes());
        assert!(matches!(
            decode_world(&bytes),
            Err(CodecError::Invalid("fleet size"))
        ));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = encode_world(&fixed_sample(1));
        bytes[1] ^= 0xff;
        assert!(matches!(
            decode_world(&bytes),
            Err(CodecError::Invalid("codec version"))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_world(&fixed_sample(1));
        bytes.push(0);
        assert!(matches!(
            decode_world(&bytes),
            Err(CodecError::Invalid("trailing bytes"))
        ));
    }

    #[test]
    fn every_strict_prefix_rejected() {
        let bytes = encode_world(&vehicular_sample(2));
        for cut in 0..bytes.len() {
            assert!(
                decode_world(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn bad_channel_rejected_not_panicked() {
        let world = fixed_sample(1);
        let bytes = encode_world(&world);
        // The first site's channel byte: version(2) + seed(8) + phy(6*8 +
        // 8 + 8 + 3*8 + 4) + radio(4*8) + site count(4) + id(4) + point(16).
        let off = 2 + 8 + (6 * 8 + 8 + 8 + 3 * 8 + 4) + 32 + 4 + 4 + 16;
        assert_eq!(bytes[off], 6, "offset arithmetic drifted");
        let mut bad = bytes.clone();
        bad[off] = 0;
        assert!(matches!(
            decode_world(&bad),
            Err(CodecError::Invalid("channel number"))
        ));
    }
}
