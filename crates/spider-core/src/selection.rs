//! Multi-AP selection.
//!
//! # Why a heuristic (the NP-hardness argument)
//!
//! The tech report's Appendix A proves that selecting the utility-optimal
//! *set* of APs is NP-hard. The essence of the reduction: each candidate
//! AP `i` contributes utility `uᵢ` (expected bytes, a function of its
//! backhaul and join probability) and costs `cᵢ` of a shared budget (the
//! schedule time its joins and traffic consume within the encounter
//! window); maximizing `Σ uᵢ` subject to `Σ cᵢ ≤ C` over subsets *is* the
//! 0/1 knapsack problem, so any instance of knapsack can be encoded as an
//! AP-selection instance. Spider therefore uses a greedy heuristic driven
//! by the observation of §2 that **join time is the dominant factor** in
//! mobile encounters: rank candidates by join history (success rate and
//! join-latency EWMA, from [`crate::history::ApHistory`]) and fill the
//! available interfaces in rank order.

use sim_engine::time::{Duration, Instant};
use wifi_mac::addr::MacAddr;
use wifi_mac::channel::Channel;

use crate::config::SelectionPolicy;
use crate::history::ApHistory;

/// A candidate AP observed by opportunistic scanning.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The AP's BSSID.
    pub bssid: MacAddr,
    /// Operating channel (from the beacon's DS parameter set).
    pub channel: Channel,
    /// Last-heard signal strength, dBm.
    pub rssi_dbm: f64,
    /// When the AP was last heard.
    pub last_heard: Instant,
}

/// Rank `candidates` and return up to `limit` BSSIDs to join, best first.
///
/// Filters: only APs on `channel`, heard within `freshness`, above
/// `min_rssi_dbm` (no point joining an AP the encounter is already
/// leaving), and not in failure backoff.
#[allow(clippy::too_many_arguments)]
pub fn select_aps(
    candidates: &[Candidate],
    channel: Channel,
    policy: SelectionPolicy,
    history: &ApHistory,
    now: Instant,
    freshness: Duration,
    backoff: Duration,
    min_rssi_dbm: f64,
    limit: usize,
) -> Vec<MacAddr> {
    if limit == 0 {
        return Vec::new();
    }
    let mut eligible: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| c.channel == channel)
        .filter(|c| now.saturating_since(c.last_heard) <= freshness)
        .filter(|c| c.rssi_dbm >= min_rssi_dbm)
        .filter(|c| !history.in_backoff(c.bssid, now, backoff))
        .collect();
    match policy {
        SelectionPolicy::JoinHistory => {
            eligible.sort_by(|a, b| {
                let sa = history.score(a.bssid, now);
                let sb = history.score(b.bssid, now);
                sb.total_cmp(&sa)
                    // Deterministic tie-break: stronger signal, then BSSID.
                    .then(b.rssi_dbm.total_cmp(&a.rssi_dbm))
                    .then(a.bssid.cmp(&b.bssid))
            });
        }
        SelectionPolicy::BestRssi => {
            eligible.sort_by(|a, b| {
                b.rssi_dbm
                    .total_cmp(&a.rssi_dbm)
                    .then(a.bssid.cmp(&b.bssid))
            });
        }
    }
    eligible.into_iter().take(limit).map(|c| c.bssid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, channel: Channel, rssi: f64, heard: Instant) -> Candidate {
        Candidate {
            bssid: MacAddr::ap(id),
            channel,
            rssi_dbm: rssi,
            last_heard: heard,
        }
    }

    fn fresh(id: u32, rssi: f64) -> Candidate {
        cand(id, Channel::CH1, rssi, Instant::from_secs(10))
    }

    const NOW: Instant = Instant::from_secs(10);
    const FRESHNESS: Duration = Duration::from_secs(2);
    const BACKOFF: Duration = Duration::from_secs(5);

    #[test]
    fn filters_other_channels() {
        let cands = [fresh(1, -60.0), cand(2, Channel::CH6, -50.0, NOW)];
        let h = ApHistory::new();
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            5,
        );
        assert_eq!(picked, vec![MacAddr::ap(1)]);
    }

    #[test]
    fn filters_stale_candidates() {
        let cands = [
            fresh(1, -60.0),
            cand(2, Channel::CH1, -50.0, Instant::from_secs(5)), // 5 s old
        ];
        let h = ApHistory::new();
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            5,
        );
        assert_eq!(picked, vec![MacAddr::ap(1)]);
    }

    #[test]
    fn filters_backoff_aps() {
        let cands = [fresh(1, -60.0), fresh(2, -50.0)];
        let mut h = ApHistory::new();
        h.record_failure(MacAddr::ap(2), Instant::from_secs(8));
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            5,
        );
        assert_eq!(picked, vec![MacAddr::ap(1)]);
    }

    #[test]
    fn history_policy_prefers_proven_joiner_over_stronger_signal() {
        let cands = [fresh(1, -80.0), fresh(2, -40.0)];
        let mut h = ApHistory::new();
        h.record_success(MacAddr::ap(1), Duration::from_millis(500));
        h.record_failure(MacAddr::ap(2), Instant::ZERO); // long ago, not in backoff
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            2,
        );
        assert_eq!(picked[0], MacAddr::ap(1));
    }

    #[test]
    fn rssi_policy_prefers_stronger_signal_regardless_of_history() {
        let cands = [fresh(1, -80.0), fresh(2, -40.0)];
        let mut h = ApHistory::new();
        h.record_success(MacAddr::ap(1), Duration::from_millis(500));
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::BestRssi,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            2,
        );
        assert_eq!(picked[0], MacAddr::ap(2));
    }

    #[test]
    fn limit_is_respected() {
        let cands: Vec<Candidate> = (0..10).map(|i| fresh(i, -50.0 - i as f64)).collect();
        let h = ApHistory::new();
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            3,
        );
        assert_eq!(picked.len(), 3);
        let none = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            0,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn rssi_floor_filters_weak_candidates() {
        let cands = [fresh(1, -85.0), fresh(2, -60.0)];
        let h = ApHistory::new();
        let picked = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -80.0,
            5,
        );
        assert_eq!(picked, vec![MacAddr::ap(2)]);
    }

    #[test]
    fn ties_break_deterministically() {
        // Identical candidates except BSSID: order must be stable.
        let cands = [fresh(5, -50.0), fresh(3, -50.0), fresh(4, -50.0)];
        let h = ApHistory::new();
        let a = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            3,
        );
        let b = select_aps(
            &cands,
            Channel::CH1,
            SelectionPolicy::JoinHistory,
            &h,
            NOW,
            FRESHNESS,
            BACKOFF,
            -200.0,
            3,
        );
        assert_eq!(a, b);
        assert_eq!(a, vec![MacAddr::ap(3), MacAddr::ap(4), MacAddr::ap(5)]);
    }
}
