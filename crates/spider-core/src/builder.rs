//! A fluent builder over [`WorldConfig`].
//!
//! [`WorldConfig::new`] covers the common case; experiments that tweak the
//! PHY, TCP, plan, or backhaul read better through [`WorldBuilder`]:
//!
//! ```
//! use spider_core::builder::WorldBuilder;
//! use spider_core::config::SpiderConfig;
//! use mobility::deployment::ApSite;
//! use mobility::geometry::Point;
//! use sim_engine::time::Duration;
//! use wifi_mac::channel::Channel;
//!
//! let site = ApSite {
//!     id: 1,
//!     position: Point::new(0.0, 0.0),
//!     channel: Channel::CH1,
//!     backhaul_bps: 2_000_000,
//!     dhcp_delay_min: Duration::from_millis(100),
//!     dhcp_delay_max: Duration::from_millis(400),
//! };
//! let result = WorldBuilder::new(42)
//!     .sites(vec![site])
//!     .fixed_client(Point::new(0.0, 10.0))
//!     .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
//!     .duration(Duration::from_secs(10))
//!     .run();
//! assert!(result.total_bytes > 0);
//! ```

use mobility::deployment::ApSite;
use mobility::geometry::Point;
use mobility::route::Vehicle;
use sim_engine::time::Duration;
use tcp_lite::TcpConfig;
use wifi_mac::phy::PhyConfig;
use wifi_mac::radio::RadioConfig;
use workload::downloads::DownloadPlan;

use crate::config::SpiderConfig;
use crate::world::{run, ClientMotion, RunResult, WorldConfig};

/// Builder state; every field has a sensible default except the sites,
/// the client motion, and the driver, which [`WorldBuilder::build`]
/// requires.
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    seed: u64,
    sites: Option<Vec<ApSite>>,
    motion: Option<ClientMotion>,
    driver: Option<SpiderConfig>,
    duration: Duration,
    phy: Option<PhyConfig>,
    radio: Option<RadioConfig>,
    tcp: Option<TcpConfig>,
    backhaul_latency: Option<Duration>,
    plan: Option<DownloadPlan>,
    fleet: Vec<ClientMotion>,
}

impl WorldBuilder {
    /// Start a builder with the master `seed`.
    pub fn new(seed: u64) -> WorldBuilder {
        WorldBuilder {
            seed,
            sites: None,
            motion: None,
            driver: None,
            duration: Duration::from_secs(60),
            phy: None,
            radio: None,
            tcp: None,
            backhaul_latency: None,
            plan: None,
            fleet: Vec::new(),
        }
    }

    /// The deployed APs (required).
    pub fn sites(mut self, sites: Vec<ApSite>) -> Self {
        self.sites = Some(sites);
        self
    }

    /// A stationary client (required: this or [`WorldBuilder::vehicle`]).
    pub fn fixed_client(mut self, at: Point) -> Self {
        self.motion = Some(ClientMotion::Fixed(at));
        self
    }

    /// A moving client.
    pub fn vehicle(mut self, vehicle: Vehicle) -> Self {
        self.motion = Some(ClientMotion::Route(vehicle));
        self
    }

    /// The driver under test (required).
    pub fn driver(mut self, spider: SpiderConfig) -> Self {
        self.driver = Some(spider);
        self
    }

    /// Experiment length (default 60 s).
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Override the PHY model.
    pub fn phy(mut self, phy: PhyConfig) -> Self {
        self.phy = Some(phy);
        self
    }

    /// Override the radio switch-cost model.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = Some(radio);
        self
    }

    /// Override TCP parameters.
    pub fn tcp(mut self, tcp: TcpConfig) -> Self {
        self.tcp = Some(tcp);
        self
    }

    /// Override the one-way wired latency behind each AP.
    pub fn backhaul_latency(mut self, latency: Duration) -> Self {
        self.backhaul_latency = Some(latency);
        self
    }

    /// Override the download plan (default: saturating bulk).
    pub fn plan(mut self, plan: DownloadPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Extra clients beyond the primary one (default: none). Each runs
    /// its own Spider instance against the same deployment; see
    /// [`crate::fleet`] for the determinism contract.
    pub fn fleet(mut self, fleet: Vec<ClientMotion>) -> Self {
        self.fleet = fleet;
        self
    }

    /// Materialize the [`WorldConfig`].
    ///
    /// # Panics
    /// Panics if sites, motion, or driver were never provided.
    pub fn build(self) -> WorldConfig {
        // simlint: allow(panic-path) — documented builder contract: build() panics on missing required fields (see the # Panics section)
        let sites = self.sites.expect("WorldBuilder: sites(…) is required");
        let motion = self
            .motion
            // simlint: allow(panic-path) — documented builder contract: build() panics on missing required fields (see the # Panics section)
            .expect("WorldBuilder: fixed_client(…) or vehicle(…) is required");
        // simlint: allow(panic-path) — documented builder contract: build() panics on missing required fields (see the # Panics section)
        let driver = self.driver.expect("WorldBuilder: driver(…) is required");
        let mut cfg = WorldConfig::new(self.seed, sites, motion, driver, self.duration);
        if let Some(phy) = self.phy {
            cfg.phy = phy;
        }
        if let Some(radio) = self.radio {
            cfg.radio = radio;
        }
        if let Some(tcp) = self.tcp {
            cfg.tcp = tcp;
        }
        if let Some(l) = self.backhaul_latency {
            cfg.backhaul_latency = l;
        }
        if let Some(p) = self.plan {
            cfg.plan = p;
        }
        cfg.fleet = self.fleet;
        cfg
    }

    /// Build and run in one step.
    pub fn run(self) -> RunResult {
        run(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifi_mac::channel::Channel;

    fn a_site() -> ApSite {
        ApSite {
            id: 1,
            position: Point::new(0.0, 0.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(100),
            dhcp_delay_max: Duration::from_millis(300),
        }
    }

    #[test]
    fn builder_matches_direct_construction() {
        let direct = WorldConfig::new(
            7,
            vec![a_site()],
            ClientMotion::Fixed(Point::new(0.0, 10.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(12),
        );
        let built = WorldBuilder::new(7)
            .sites(vec![a_site()])
            .fixed_client(Point::new(0.0, 10.0))
            .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
            .duration(Duration::from_secs(12))
            .build();
        // Same world ⇒ same deterministic outcome.
        let a = run(direct);
        let b = run(built);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.dhcp_attempts, b.dhcp_attempts);
    }

    #[test]
    fn overrides_take_effect() {
        let slow = WorldBuilder::new(7)
            .sites(vec![a_site()])
            .fixed_client(Point::new(0.0, 10.0))
            .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
            .duration(Duration::from_secs(12))
            .backhaul_latency(Duration::from_millis(500))
            .run();
        let fast = WorldBuilder::new(7)
            .sites(vec![a_site()])
            .fixed_client(Point::new(0.0, 10.0))
            .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
            .duration(Duration::from_secs(12))
            .backhaul_latency(Duration::from_millis(5))
            .run();
        assert!(
            fast.total_bytes > slow.total_bytes,
            "half-second RTTs must hurt: {} vs {}",
            fast.total_bytes,
            slow.total_bytes
        );
    }

    #[test]
    fn fleet_setter_populates_extra_clients() {
        let built = WorldBuilder::new(7)
            .sites(vec![a_site()])
            .fixed_client(Point::new(0.0, 10.0))
            .driver(SpiderConfig::single_channel_multi_ap(Channel::CH1))
            .duration(Duration::from_secs(12))
            .fleet(vec![ClientMotion::Fixed(Point::new(0.0, 12.0))])
            .build();
        assert_eq!(built.fleet.len(), 1);
        let result = run(built);
        assert_eq!(result.per_client.len(), 2, "one slot per client");
    }

    #[test]
    #[should_panic(expected = "driver(…) is required")]
    fn missing_driver_panics() {
        let _ = WorldBuilder::new(1)
            .sites(vec![a_site()])
            .fixed_client(Point::ORIGIN)
            .build();
    }
}
