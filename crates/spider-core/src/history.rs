//! Per-AP join history: the knowledge base behind Spider's AP selection.
//!
//! §3: "instead of choosing APs with maximum end-to-end bandwidth, we
//! select APs that have the best history of successful joins." §2.1.2 adds
//! that "techniques such as caching dhcp leases, maintaining a history of
//! APs with short join times … are essential for multi-AP systems." The
//! [`ApHistory`] table records both: join outcomes with an EWMA of join
//! latency, and the last DHCP lease per AP for INIT-REBOOT rejoins.

use dhcp::client::Lease;
use sim_engine::time::{Duration, Instant};
use wifi_mac::addr::MacAddr;

/// The record kept for one AP.
#[derive(Debug, Clone)]
pub struct ApRecord {
    /// Successful joins (association + DHCP).
    pub successes: u32,
    /// Failed join attempts.
    pub failures: u32,
    /// EWMA of successful join latency.
    pub join_time_ewma: Option<Duration>,
    /// Most recent lease, for the cache shortcut.
    pub lease: Option<Lease>,
    /// Most recent failure (for retry backoff).
    pub last_failure: Option<Instant>,
}

impl ApRecord {
    fn new() -> ApRecord {
        ApRecord {
            successes: 0,
            failures: 0,
            join_time_ewma: None,
            lease: None,
            last_failure: None,
        }
    }

    /// Total attempts recorded.
    pub fn attempts(&self) -> u32 {
        self.successes + self.failures
    }
}

/// EWMA weight for new join-time samples.
const EWMA_ALPHA: f64 = 0.3;

/// The driver's per-AP knowledge base.
///
/// Storage follows the workspace's dense-index pattern (`MacIntern`):
/// a sorted `(bssid, slot)` table resolves an address with one binary
/// search, and the records themselves live in a flat slot-indexed `Vec` —
/// no per-node pointer chasing on the scoring hot path. Slots are
/// allocated lazily, on the first **mutating** touch of a bssid: an AP
/// the driver never attempted stays unslotted and scores the neutral
/// prior, exactly as the map-backed history did.
#[derive(Debug, Clone, Default)]
pub struct ApHistory {
    /// `(bssid, slot)` pairs sorted by bssid.
    index: Vec<(MacAddr, u32)>,
    /// Slot-indexed records, in first-touch order.
    records: Vec<ApRecord>,
}

impl ApHistory {
    /// Empty history.
    pub fn new() -> ApHistory {
        ApHistory {
            index: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The dense slot for `bssid`, if it has one.
    fn slot(&self, bssid: MacAddr) -> Option<usize> {
        self.index
            .binary_search_by(|&(a, _)| a.cmp(&bssid))
            .ok()
            .map(|pos| self.index[pos].1 as usize)
    }

    /// The slot for `bssid`, allocating one on first mutating touch.
    fn ensure_slot(&mut self, bssid: MacAddr) -> usize {
        match self.index.binary_search_by(|&(a, _)| a.cmp(&bssid)) {
            Ok(pos) => self.index[pos].1 as usize,
            Err(pos) => {
                let slot = self.records.len();
                self.index.insert(pos, (bssid, slot as u32));
                self.records.push(ApRecord::new());
                slot
            }
        }
    }

    /// The record for `bssid`, if any joins were attempted.
    pub fn record(&self, bssid: MacAddr) -> Option<&ApRecord> {
        self.slot(bssid).map(|s| &self.records[s])
    }

    /// Number of APs with any history.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no AP has history yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record a successful join that took `join_time`.
    pub fn record_success(&mut self, bssid: MacAddr, join_time: Duration) {
        let slot = self.ensure_slot(bssid);
        let rec = &mut self.records[slot];
        rec.successes += 1;
        rec.join_time_ewma = Some(match rec.join_time_ewma {
            None => join_time,
            Some(prev) => {
                let blended =
                    prev.as_secs_f64() * (1.0 - EWMA_ALPHA) + join_time.as_secs_f64() * EWMA_ALPHA;
                Duration::from_secs_f64(blended)
            }
        });
    }

    /// Record a failed join attempt at `now`.
    pub fn record_failure(&mut self, bssid: MacAddr, now: Instant) {
        let slot = self.ensure_slot(bssid);
        let rec = &mut self.records[slot];
        rec.failures += 1;
        rec.last_failure = Some(now);
    }

    /// Store a granted lease for the cache.
    pub fn store_lease(&mut self, bssid: MacAddr, lease: Lease) {
        let slot = self.ensure_slot(bssid);
        self.records[slot].lease = Some(lease);
    }

    /// A still-valid cached lease for `bssid`, if any.
    pub fn cached_lease(&self, bssid: MacAddr, now: Instant) -> Option<Lease> {
        self.record(bssid)
            .and_then(|r| r.lease)
            .filter(|l| l.is_valid(now))
    }

    /// True while `bssid` is inside its retry backoff after a failure.
    pub fn in_backoff(&self, bssid: MacAddr, now: Instant, backoff: Duration) -> bool {
        self.record(bssid)
            .and_then(|r| r.last_failure)
            .is_some_and(|t| now.saturating_since(t) < backoff)
    }

    /// Spider's selection score for `bssid`: higher is better.
    ///
    /// The score blends (a) the smoothed join success rate — with a prior
    /// of one success and one failure so unknown APs rank mid-field and
    /// still get explored — and (b) the inverse of the join-time EWMA,
    /// because §2.1.2 shows short `β` is what makes a join land inside a
    /// short encounter. A cached valid lease adds a bonus: the rejoin
    /// skips half the DHCP exchange.
    pub fn score(&self, bssid: MacAddr, now: Instant) -> f64 {
        let Some(rec) = self.record(bssid) else {
            // Unknown AP: the neutral prior.
            return 0.5;
        };
        let success_rate = (rec.successes as f64 + 1.0) / (rec.attempts() as f64 + 2.0);
        let speed_bonus = match rec.join_time_ewma {
            // 1/(1+t): 0 s → 1, 1 s → 0.5, 4 s → 0.2.
            Some(t) => 1.0 / (1.0 + t.as_secs_f64()),
            None => 0.3,
        };
        let lease_bonus = if self.cached_lease(bssid, now).is_some() {
            0.25
        } else {
            0.0
        };
        success_rate * (1.0 + speed_bonus) + lease_bonus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ap(i: u32) -> MacAddr {
        MacAddr::ap(i)
    }

    #[test]
    fn unknown_ap_gets_neutral_score() {
        let h = ApHistory::new();
        assert_eq!(h.score(ap(1), Instant::ZERO), 0.5);
    }

    #[test]
    fn successes_beat_failures() {
        let mut h = ApHistory::new();
        h.record_success(ap(1), Duration::from_millis(800));
        h.record_success(ap(1), Duration::from_millis(900));
        h.record_failure(ap(2), Instant::ZERO);
        h.record_failure(ap(2), Instant::ZERO);
        let now = Instant::from_secs(100);
        assert!(h.score(ap(1), now) > h.score(ap(2), now));
        // And a proven AP beats an unknown one.
        assert!(h.score(ap(1), now) > h.score(ap(3), now));
        // An unknown AP beats a proven failure.
        assert!(h.score(ap(3), now) > h.score(ap(2), now));
    }

    #[test]
    fn faster_joins_score_higher() {
        let mut h = ApHistory::new();
        h.record_success(ap(1), Duration::from_millis(500));
        h.record_success(ap(2), Duration::from_secs(5));
        let now = Instant::ZERO;
        assert!(h.score(ap(1), now) > h.score(ap(2), now));
    }

    #[test]
    fn ewma_blends_join_times() {
        let mut h = ApHistory::new();
        h.record_success(ap(1), Duration::from_secs(1));
        h.record_success(ap(1), Duration::from_secs(3));
        let ewma = h.record(ap(1)).unwrap().join_time_ewma.unwrap();
        // 1·0.7 + 3·0.3 = 1.6 s.
        assert!((ewma.as_secs_f64() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn lease_cache_roundtrip_and_expiry() {
        let mut h = ApHistory::new();
        let lease = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 5),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: Instant::from_secs(100),
        };
        h.store_lease(ap(1), lease);
        assert_eq!(h.cached_lease(ap(1), Instant::from_secs(50)), Some(lease));
        assert_eq!(h.cached_lease(ap(1), Instant::from_secs(150)), None);
        assert_eq!(h.cached_lease(ap(2), Instant::ZERO), None);
    }

    #[test]
    fn cached_lease_raises_score() {
        let mut h = ApHistory::new();
        h.record_success(ap(1), Duration::from_secs(1));
        h.record_success(ap(2), Duration::from_secs(1));
        let lease = Lease {
            ip: Ipv4Addr::new(10, 0, 0, 5),
            server: Ipv4Addr::new(10, 0, 0, 1),
            expires: Instant::from_secs(1_000),
        };
        h.store_lease(ap(1), lease);
        let now = Instant::from_secs(10);
        assert!(h.score(ap(1), now) > h.score(ap(2), now));
    }

    #[test]
    fn dense_slots_survive_interleaved_first_touches() {
        // First-touch order deliberately scrambled relative to MacAddr
        // order: the sorted index must keep resolving every bssid to its
        // own record.
        let mut h = ApHistory::new();
        h.record_success(ap(9), Duration::from_secs(1));
        h.record_failure(ap(2), Instant::ZERO);
        h.record_success(ap(5), Duration::from_secs(2));
        h.record_success(ap(9), Duration::from_secs(1));
        assert_eq!(h.len(), 3);
        assert_eq!(h.record(ap(9)).unwrap().successes, 2);
        assert_eq!(h.record(ap(2)).unwrap().failures, 1);
        assert_eq!(h.record(ap(5)).unwrap().successes, 1);
        assert!(h.record(ap(7)).is_none());
    }

    #[test]
    fn backoff_window() {
        let mut h = ApHistory::new();
        h.record_failure(ap(1), Instant::from_secs(10));
        let backoff = Duration::from_secs(5);
        assert!(h.in_backoff(ap(1), Instant::from_secs(12), backoff));
        assert!(!h.in_backoff(ap(1), Instant::from_secs(16), backoff));
        assert!(!h.in_backoff(ap(2), Instant::from_secs(12), backoff));
    }
}
