//! End-to-end scheduler tests against real worker processes.
//!
//! `harness = false`: this binary is both the test driver and — when
//! `FLEET_E2E_WORKER` is set — the worker child, so stdout stays clean for
//! the protocol (libtest would otherwise print to it before `Hello`).
//! The same pattern as `spider-core/tests/determinism.rs`.

use fleet::fault::{FAULT_EXIT_CODE, FLEET_FAULT_ENV};
use fleet::scheduler::{run_shards, FleetConfig, FleetError, FleetEvent, ShardJob};
use mobility::deployment::ApSite;
use mobility::geometry::Point;
use sim_engine::par::CancelToken;
use sim_engine::time::Duration;
use spider_core::config::SpiderConfig;
use spider_core::{run_with_diagnostics, ClientMotion, RunRecord, WorldConfig};
use std::path::PathBuf;
use std::time::Duration as StdDuration;
use wifi_mac::channel::Channel;

const WORKER_ENV: &str = "FLEET_E2E_WORKER";
const GOOD_FINGERPRINT: &str = "fleet-e2e/fp-good";

fn tiny_world(seed: u64) -> WorldConfig {
    WorldConfig::new(
        seed,
        vec![ApSite {
            id: 1,
            position: Point::new(0.0, 15.0),
            channel: Channel::CH1,
            backhaul_bps: 2_000_000,
            dhcp_delay_min: Duration::from_millis(10),
            dhcp_delay_max: Duration::from_millis(30),
        }],
        ClientMotion::Fixed(Point::new(0.0, 0.0)),
        SpiderConfig::single_channel_multi_ap(Channel::CH1),
        Duration::from_secs(2),
    )
}

fn jobs(n: u64) -> Vec<ShardJob> {
    (0..n)
        .map(|i| ShardJob {
            name: format!("shard-{i}"),
            world: tiny_world(100 + i),
        })
        .collect()
}

fn expected_json(seed: u64) -> String {
    let (result, _) = run_with_diagnostics(tiny_world(seed));
    RunRecord::to_json(&result).expect("record json")
}

fn fleet_config(workers: usize) -> FleetConfig {
    let program = std::env::current_exe().expect("current_exe");
    let mut cfg = FleetConfig::new(program, workers, GOOD_FINGERPRINT.to_string());
    cfg.respawn_backoff = StdDuration::from_millis(10);
    cfg
}

fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fleet-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn worker_main() -> ! {
    let fingerprint =
        std::env::var("FLEET_E2E_FINGERPRINT").unwrap_or_else(|_| GOOD_FINGERPRINT.to_string());
    let result = fleet::worker::serve(std::io::stdin(), std::io::stdout(), &fingerprint);
    std::process::exit(if result.is_ok() { 0 } else { 1 });
}

fn all_shards_complete_and_match_in_process() {
    let cancel = CancelToken::new();
    let run = run_shards(&fleet_config(3), &jobs(5), &cancel, |_| Ok(())).expect("fleet run");
    assert!(!run.cancelled);
    assert_eq!(run.done.len(), 5);
    for done in &run.done {
        assert_eq!(done.attempts, 1);
        assert_eq!(
            done.record_json,
            expected_json(100 + done.index as u64),
            "shard {} record diverged from in-process run",
            done.index
        );
        assert!(done.events_delivered > 0);
    }
}

fn injected_exit_is_retried(action: &str, check_status: bool) {
    let marker = scratch(&format!("marker-{action}"));
    std::env::set_var(
        FLEET_FAULT_ENV,
        format!("{action}:shard-2:{}", marker.display()),
    );
    let mut cfg = fleet_config(2);
    if action == "stall" {
        // Far above a tiny shard's wall time, far below the default.
        cfg.shard_deadline = StdDuration::from_secs(2);
    }
    let cancel = CancelToken::new();
    let mut died = Vec::new();
    let mut requeued = Vec::new();
    let run = run_shards(&cfg, &jobs(4), &cancel, |ev| {
        match ev {
            FleetEvent::WorkerDied { shard, reason, .. } => {
                died.push((shard.clone(), reason.clone()));
            }
            FleetEvent::Requeued { shard, attempt } => requeued.push((shard.clone(), *attempt)),
            _ => {}
        }
        Ok(())
    })
    .expect("fleet run survives one injected crash");
    std::env::remove_var(FLEET_FAULT_ENV);

    assert!(marker.exists(), "fault never fired");
    let _ = std::fs::remove_file(&marker);
    assert_eq!(run.done.len(), 4);
    assert_eq!(
        died.iter()
            .filter(|(s, _)| s.as_deref() == Some("shard-2"))
            .count(),
        1,
        "exactly one death on the target shard: {died:?}"
    );
    if check_status {
        assert!(
            died.iter()
                .any(|(_, r)| r.contains(&FAULT_EXIT_CODE.to_string())),
            "death reason should carry the exit status: {died:?}"
        );
    }
    assert_eq!(requeued, vec![("shard-2".to_string(), 2)]);
    let retried = run
        .done
        .iter()
        .find(|d| d.index == 2)
        .expect("shard-2 completed");
    assert_eq!(retried.attempts, 2);
    assert_eq!(retried.record_json, expected_json(102));
}

fn stale_fingerprint_aborts_the_run() {
    std::env::set_var("FLEET_E2E_FINGERPRINT", "fleet-e2e/fp-stale");
    let cancel = CancelToken::new();
    let err = run_shards(&fleet_config(2), &jobs(2), &cancel, |_| Ok(()))
        .expect_err("stale worker binary must be rejected");
    std::env::remove_var("FLEET_E2E_FINGERPRINT");
    match err {
        FleetError::Handshake { detail, .. } => {
            assert!(detail.contains("fingerprint mismatch"), "{detail}");
        }
        other => panic!("expected Handshake error, got {other}"),
    }
}

fn cancellation_returns_partial() {
    let cancel = CancelToken::new();
    cancel.cancel();
    let run = run_shards(&fleet_config(2), &jobs(3), &cancel, |_| Ok(())).expect("fleet run");
    assert!(run.cancelled);
    assert!(run.done.is_empty());
}

fn main() {
    if std::env::var(WORKER_ENV).is_ok() {
        worker_main();
    }
    // The children must take the worker branch; faults are targeted via
    // FLEET_FAULT, which only child processes act on (serve() reads it).
    std::env::set_var(WORKER_ENV, "1");

    let tests: &[(&str, fn())] = &[
        ("all_shards_complete_and_match_in_process", || {
            all_shards_complete_and_match_in_process()
        }),
        ("injected_exit_is_retried", || {
            injected_exit_is_retried("exit", true)
        }),
        ("injected_panic_is_retried", || {
            injected_exit_is_retried("panic", false)
        }),
        ("injected_stall_hits_deadline_and_is_retried", || {
            injected_exit_is_retried("stall", false)
        }),
        (
            "stale_fingerprint_aborts_the_run",
            stale_fingerprint_aborts_the_run,
        ),
        ("cancellation_returns_partial", cancellation_returns_partial),
    ];
    for (name, test) in tests {
        eprintln!("scheduler_e2e: {name} ...");
        test();
        eprintln!("scheduler_e2e: {name} ok");
    }
    println!("scheduler_e2e: {} tests passed", tests.len());
}
