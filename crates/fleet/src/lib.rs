//! Multi-process campaign shard execution.
//!
//! A campaign that outgrows one process's cores — or must survive a worker
//! crash — runs its cache-miss shards on a fleet of OS worker processes.
//! The pieces:
//!
//! * [`proto`] — the length-prefixed, versioned binary message protocol the
//!   scheduler and workers speak over stdin/stdout, built on
//!   [`sim_engine::wire`] and the [`spider_core::codec`] `WorldConfig`
//!   round-trip codec.
//! * [`worker`] — the worker side: handshake, run assigned shards through
//!   [`spider_core::run_with_diagnostics`], stream back `RunRecord` JSON.
//! * [`scheduler`] — the fleet side: spawn N workers, validate handshakes
//!   (protocol version **and** code fingerprint, so a stale binary can
//!   never poison the shared cache), assign shards, detect death by EOF /
//!   non-zero exit / per-shard deadline, requeue orphans under a bounded
//!   retry budget, and respawn workers with exponential backoff.
//! * [`fault`] — the `FLEET_FAULT` env hook that makes a worker
//!   deterministically panic, exit, or stall on a chosen shard exactly
//!   once, so crash recovery is testable.
//!
//! The crate deliberately depends only on `sim-engine` and `spider-core`:
//! `campaign` layers its content-addressed cache and manifest on top, not
//! the other way around.

pub mod fault;
pub mod proto;
pub mod scheduler;
pub mod worker;
