//! Deterministic worker fault injection.
//!
//! `FLEET_FAULT=<action>:<shard-substring>:<marker-path>` makes a worker
//! fail on the first shard whose label contains the substring — exactly
//! once across the whole fleet. "Once" is enforced by atomically creating
//! the marker file (`create_new`): the first worker to claim it fires the
//! fault, every later attempt at the same shard — on this worker or a
//! respawned one — runs normally. That is precisely the shape the
//! crash-retry tests need: one injected death, then a clean retry.
//!
//! Actions:
//! * `panic` — the worker panics mid-shard (abrupt protocol EOF).
//! * `exit` — the worker exits with a non-zero status mid-shard.
//! * `stall` — the worker sleeps forever, tripping the scheduler's
//!   per-shard deadline.

use std::fs::OpenOptions;
use std::path::PathBuf;
use std::time::Duration;

/// The environment variable the worker consults.
pub const FLEET_FAULT_ENV: &str = "FLEET_FAULT";

/// Exit status used by the `exit` action; distinctive enough to spot in
/// scheduler crash reports.
pub const FAULT_EXIT_CODE: i32 = 86;

/// What the fault does to the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic mid-shard.
    Panic,
    /// `process::exit(FAULT_EXIT_CODE)` mid-shard.
    Exit,
    /// Sleep forever mid-shard (deadline-kill path).
    Stall,
}

/// A parsed `FLEET_FAULT` specification.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// What to do.
    pub action: FaultAction,
    /// Fire on the first shard whose label contains this substring.
    pub shard_substring: String,
    /// Atomically-created claim file bounding the fault to one firing.
    pub marker: PathBuf,
}

impl FaultSpec {
    /// Parse `"<action>:<substring>:<marker-path>"`. Returns `None` on any
    /// malformed input — a worker must never die because of a typo in a
    /// test harness variable.
    pub fn parse(spec: &str) -> Option<FaultSpec> {
        let mut parts = spec.splitn(3, ':');
        let action = match parts.next()? {
            "panic" => FaultAction::Panic,
            "exit" => FaultAction::Exit,
            "stall" => FaultAction::Stall,
            _ => return None,
        };
        let shard_substring = parts.next()?.to_string();
        let marker = parts.next()?;
        if shard_substring.is_empty() || marker.is_empty() {
            return None;
        }
        Some(FaultSpec {
            action,
            shard_substring,
            marker: PathBuf::from(marker),
        })
    }

    /// Read and parse [`FLEET_FAULT_ENV`].
    pub fn from_env() -> Option<FaultSpec> {
        std::env::var(FLEET_FAULT_ENV)
            .ok()
            .and_then(|s| FaultSpec::parse(&s))
    }

    /// Whether this spec targets `shard`.
    pub fn matches(&self, shard: &str) -> bool {
        shard.contains(&self.shard_substring)
    }

    /// Try to claim the single firing. True exactly once per marker path,
    /// no matter how many workers race for it.
    pub fn claim(&self) -> bool {
        OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&self.marker)
            .is_ok()
    }

    /// Fire the fault. Never returns for `Panic`/`Exit`; `Stall` sleeps
    /// until the scheduler kills the process.
    pub fn fire(&self, shard: &str) -> ! {
        match self.action {
            FaultAction::Panic => {
                // simlint: allow(panic-path) — the entire point of this function is a deliberate, test-harness-requested panic
                panic!("FLEET_FAULT: injected panic on shard {shard:?}")
            }
            FaultAction::Exit => std::process::exit(FAULT_EXIT_CODE),
            FaultAction::Stall => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_actions() {
        for (text, action) in [
            ("panic", FaultAction::Panic),
            ("exit", FaultAction::Exit),
            ("stall", FaultAction::Stall),
        ] {
            let spec = FaultSpec::parse(&format!("{text}:50%:/tmp/marker")).expect("parse");
            assert_eq!(spec.action, action);
            assert_eq!(spec.shard_substring, "50%");
            assert_eq!(spec.marker, PathBuf::from("/tmp/marker"));
        }
    }

    #[test]
    fn marker_may_contain_colons() {
        let spec = FaultSpec::parse("exit:s:/tmp/a:b:c").expect("parse");
        assert_eq!(spec.marker, PathBuf::from("/tmp/a:b:c"));
    }

    #[test]
    fn malformed_specs_rejected() {
        for bad in [
            "",
            "panic",
            "panic:s",
            "boom:s:/tmp/m",
            "exit::/tmp/m",
            "exit:s:",
        ] {
            assert!(FaultSpec::parse(bad).is_none(), "{bad:?} parsed");
        }
    }

    #[test]
    fn matches_is_substring() {
        let spec = FaultSpec::parse("exit:50%:/tmp/m").expect("parse");
        assert!(spec.matches("f6 = 50%"));
        assert!(!spec.matches("f6 = 25%"));
    }

    #[test]
    fn claim_fires_exactly_once() {
        let dir = std::env::temp_dir();
        let marker = dir.join(format!("fleet-fault-claim-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let spec = FaultSpec::parse(&format!("exit:s:{}", marker.display())).expect("parse");
        assert!(spec.claim());
        assert!(!spec.claim());
        let _ = std::fs::remove_file(&marker);
    }
}
