//! The worker side of the fleet protocol.
//!
//! A worker process is the `experiments` binary in `--worker` mode: it
//! speaks [`crate::proto`] over stdin/stdout and runs one shard at a time.
//! Everything else (argument parsing, the banner, figures) is bypassed —
//! stdout belongs to the protocol.

use crate::fault::FaultSpec;
use crate::proto::{read_msg, write_msg, Msg, PROTOCOL_VERSION};
use spider_core::{run_with_diagnostics, RunRecord, WorldConfig};
use std::io::{self, BufReader, BufWriter, Read, Write};

/// Serve the worker protocol until `Shutdown` or clean EOF.
///
/// Sends `Hello{PROTOCOL_VERSION, code_fingerprint}` first, then answers
/// each `Assign` with `Done` (the shard's lossless `RunRecord` JSON plus
/// diagnostics) or `Error` (the shard failed but the worker survives).
/// A `FLEET_FAULT` spec naming an assigned shard fires here, after the
/// assignment is read and before the simulation runs — mid-shard from the
/// scheduler's point of view.
pub fn serve<R: Read, W: Write>(input: R, output: W, code_fingerprint: &str) -> io::Result<()> {
    let mut input = BufReader::new(input);
    let mut output = BufWriter::new(output);
    write_msg(
        &mut output,
        &Msg::Hello {
            protocol_version: PROTOCOL_VERSION,
            code_fingerprint: code_fingerprint.to_string(),
        },
    )?;
    let fault = FaultSpec::from_env();
    loop {
        match read_msg(&mut input)? {
            None | Some(Msg::Shutdown) => return Ok(()),
            Some(Msg::Assign { shard, world }) => {
                if let Some(spec) = &fault {
                    if spec.matches(&shard) && spec.claim() {
                        spec.fire(&shard);
                    }
                }
                let reply = run_shard(&shard, *world);
                write_msg(&mut output, &reply)?;
            }
            Some(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "fleet worker: unexpected message (only Assign/Shutdown are valid)",
                ))
            }
        }
    }
}

fn run_shard(shard: &str, world: WorldConfig) -> Msg {
    let started = std::time::Instant::now();
    let (result, diagnostics) = run_with_diagnostics(world);
    match RunRecord::to_json(&result) {
        Ok(record_json) => Msg::Done {
            shard: shard.to_string(),
            record_json,
            events_delivered: diagnostics.events_delivered,
            peak_queue_depth: diagnostics.peak_queue_depth as u64,
            wall_ms: started.elapsed().as_millis() as u64,
        },
        Err(e) => Msg::Error {
            shard: shard.to_string(),
            reason: format!("run record not serializable: {e}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use spider_core::config::SpiderConfig;
    use spider_core::ClientMotion;
    use wifi_mac::channel::Channel;

    fn tiny_world(seed: u64) -> WorldConfig {
        WorldConfig::new(
            seed,
            vec![ApSite {
                id: 1,
                position: Point::new(0.0, 15.0),
                channel: Channel::CH1,
                backhaul_bps: 2_000_000,
                dhcp_delay_min: Duration::from_millis(10),
                dhcp_delay_max: Duration::from_millis(30),
            }],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(2),
        )
    }

    fn feed(msgs: &[Msg]) -> Vec<u8> {
        let mut buf = Vec::new();
        for m in msgs {
            write_msg(&mut buf, m).expect("write");
        }
        buf
    }

    fn replies(output: &[u8]) -> Vec<Msg> {
        let mut cursor = io::Cursor::new(output);
        let mut out = Vec::new();
        while let Some(m) = read_msg(&mut cursor).expect("read") {
            out.push(m);
        }
        out
    }

    #[test]
    fn serve_answers_assign_with_done_and_record_matches_in_process() {
        let input = feed(&[
            Msg::Assign {
                shard: "tiny".into(),
                world: Box::new(tiny_world(4)),
            },
            Msg::Shutdown,
        ]);
        let mut output = Vec::new();
        serve(input.as_slice(), &mut output, "fp-test").expect("serve");
        let msgs = replies(&output);
        assert_eq!(msgs.len(), 2);
        match &msgs[0] {
            Msg::Hello {
                protocol_version,
                code_fingerprint,
            } => {
                assert_eq!(*protocol_version, PROTOCOL_VERSION);
                assert_eq!(code_fingerprint, "fp-test");
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        match &msgs[1] {
            Msg::Done {
                shard, record_json, ..
            } => {
                assert_eq!(shard, "tiny");
                let (in_process, _) = run_with_diagnostics(tiny_world(4));
                let expected = RunRecord::to_json(&in_process).expect("json");
                assert_eq!(record_json, &expected, "worker record diverged");
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn serve_exits_cleanly_on_eof() {
        let mut output = Vec::new();
        serve(&[][..], &mut output, "fp").expect("serve");
        let msgs = replies(&output);
        assert_eq!(msgs.len(), 1, "only the Hello should have been sent");
    }

    #[test]
    fn serve_rejects_protocol_confusion() {
        // A scheduler must never receive `Done` — a worker receiving one
        // indicates crossed streams; it bails rather than guessing.
        let input = feed(&[Msg::Done {
            shard: "x".into(),
            record_json: "{}".into(),
            events_delivered: 0,
            peak_queue_depth: 0,
            wall_ms: 0,
        }]);
        let mut output = Vec::new();
        assert!(serve(input.as_slice(), &mut output, "fp").is_err());
    }
}
