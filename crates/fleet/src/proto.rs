//! The scheduler ↔ worker message protocol.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by the payload, whose first byte is the message tag. Payloads are built
//! on [`sim_engine::wire`]; `WorldConfig` crosses the boundary through
//! [`spider_core::codec`]. Strings are u32-length-prefixed UTF-8.
//!
//! The protocol is versioned twice over: [`PROTOCOL_VERSION`] covers the
//! frame layout, and the `Hello.code_fingerprint` (the campaign cache
//! fingerprint of the worker binary) covers the *semantics* — two binaries
//! that would hash shards differently must never share a fleet, or the
//! content-addressed cache would mix records from different code.

use sim_engine::wire::{Reader, WireError, Writer};
use spider_core::codec::{self, CodecError};
use spider_core::WorldConfig;
use std::io::{self, Read, Write};

/// Frame-layout version carried in every `Hello`. Bump on any change to
/// the message encoding.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame. A `Done` frame carries one `RunRecord`
/// JSON (tens of kilobytes); anything near this limit is corruption.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// One protocol message.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Worker → scheduler, once, immediately after spawn.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol_version: u32,
        /// The worker binary's campaign code fingerprint.
        code_fingerprint: String,
    },
    /// Scheduler → worker: run this shard.
    Assign {
        /// Shard label, echoed back in `Done`/`Error`.
        shard: String,
        /// The full configuration to simulate (boxed: a `WorldConfig`
        /// is hundreds of bytes, the other variants a few words).
        world: Box<WorldConfig>,
    },
    /// Worker → scheduler: shard finished.
    Done {
        /// The label from `Assign`.
        shard: String,
        /// Lossless `RunRecord` JSON, byte-identical to what an
        /// in-process run would have produced.
        record_json: String,
        /// Diagnostics: events delivered by the DES.
        events_delivered: u64,
        /// Diagnostics: peak live event-queue depth.
        peak_queue_depth: u64,
        /// Worker-side wall time for the shard, ms.
        wall_ms: u64,
    },
    /// Worker → scheduler: shard failed in a way the worker survived.
    Error {
        /// The label from `Assign`.
        shard: String,
        /// Human-readable cause.
        reason: String,
    },
    /// Scheduler → worker: drain and exit cleanly.
    Shutdown,
}

/// Why a payload failed to decode.
#[derive(Debug)]
pub enum ProtoError {
    /// Payload ended before the message did.
    Truncated(WireError),
    /// Bad tag, bad bool, non-UTF-8 string, trailing bytes, …
    Invalid(&'static str),
    /// The embedded `WorldConfig` failed to decode.
    World(CodecError),
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtoError::Truncated(e) => write!(f, "fleet proto: {e}"),
            ProtoError::Invalid(what) => write!(f, "fleet proto: invalid {what}"),
            ProtoError::World(e) => write!(f, "fleet proto: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> ProtoError {
        ProtoError::Truncated(e)
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> ProtoError {
        ProtoError::World(e)
    }
}

const TAG_HELLO: u8 = 0;
const TAG_ASSIGN: u8 = 1;
const TAG_DONE: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;

fn put_string(w: &mut Writer, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_slice(s.as_bytes());
}

fn get_string(r: &mut Reader) -> Result<String, ProtoError> {
    let len = r.get_u32()? as usize;
    let raw = r.take(len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::Invalid("utf-8 string"))
}

impl Msg {
    /// Encode to a payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            Msg::Hello {
                protocol_version,
                code_fingerprint,
            } => {
                w.put_u8(TAG_HELLO);
                w.put_u32(*protocol_version);
                put_string(&mut w, code_fingerprint);
            }
            Msg::Assign { shard, world } => {
                w.put_u8(TAG_ASSIGN);
                put_string(&mut w, shard);
                codec::encode_world_into(world, &mut w);
            }
            Msg::Done {
                shard,
                record_json,
                events_delivered,
                peak_queue_depth,
                wall_ms,
            } => {
                w.put_u8(TAG_DONE);
                put_string(&mut w, shard);
                put_string(&mut w, record_json);
                w.put_u64(*events_delivered);
                w.put_u64(*peak_queue_depth);
                w.put_u64(*wall_ms);
            }
            Msg::Error { shard, reason } => {
                w.put_u8(TAG_ERROR);
                put_string(&mut w, shard);
                put_string(&mut w, reason);
            }
            Msg::Shutdown => w.put_u8(TAG_SHUTDOWN),
        }
        w.into_vec()
    }

    /// Decode a payload produced by [`Msg::encode`]. The whole payload
    /// must be consumed.
    pub fn decode(buf: &[u8]) -> Result<Msg, ProtoError> {
        let mut r = Reader::new(buf);
        let msg = match r.get_u8()? {
            TAG_HELLO => Msg::Hello {
                protocol_version: r.get_u32()?,
                code_fingerprint: get_string(&mut r)?,
            },
            TAG_ASSIGN => {
                let shard = get_string(&mut r)?;
                let world = Box::new(codec::decode_world(r.rest())?);
                return Ok(Msg::Assign { shard, world });
            }
            TAG_DONE => Msg::Done {
                shard: get_string(&mut r)?,
                record_json: get_string(&mut r)?,
                events_delivered: r.get_u64()?,
                peak_queue_depth: r.get_u64()?,
                wall_ms: r.get_u64()?,
            },
            TAG_ERROR => Msg::Error {
                shard: get_string(&mut r)?,
                reason: get_string(&mut r)?,
            },
            TAG_SHUTDOWN => Msg::Shutdown,
            _ => return Err(ProtoError::Invalid("message tag")),
        };
        if !r.is_empty() {
            return Err(ProtoError::Invalid("trailing bytes"));
        }
        Ok(msg)
    }
}

/// Write one framed message and flush it.
pub fn write_msg<W: Write>(out: &mut W, msg: &Msg) -> io::Result<()> {
    let payload = msg.encode();
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "fleet proto: frame exceeds MAX_FRAME_LEN",
        ));
    }
    out.write_all(&(payload.len() as u32).to_be_bytes())?;
    out.write_all(&payload)?;
    out.flush()
}

/// Read one framed message. `Ok(None)` means the stream ended cleanly at
/// a frame boundary; EOF inside a frame is an error.
pub fn read_msg<R: Read>(input: &mut R) -> io::Result<Option<Msg>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = input.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "fleet proto: EOF inside frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "fleet proto: frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    input.read_exact(&mut payload)?;
    Msg::decode(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::deployment::ApSite;
    use mobility::geometry::Point;
    use sim_engine::time::Duration;
    use spider_core::config::SpiderConfig;
    use spider_core::ClientMotion;
    use wifi_mac::channel::Channel;

    fn sample_world() -> WorldConfig {
        WorldConfig::new(
            99,
            vec![ApSite {
                id: 1,
                position: Point::new(0.0, 20.0),
                channel: Channel::CH1,
                backhaul_bps: 2_000_000,
                dhcp_delay_min: Duration::from_millis(10),
                dhcp_delay_max: Duration::from_millis(30),
            }],
            ClientMotion::Fixed(Point::new(0.0, 0.0)),
            SpiderConfig::single_channel_multi_ap(Channel::CH1),
            Duration::from_secs(5),
        )
    }

    fn round_trip(msg: &Msg) -> Msg {
        Msg::decode(&msg.encode()).expect("decode")
    }

    #[test]
    fn every_message_round_trips() {
        let msgs = vec![
            Msg::Hello {
                protocol_version: PROTOCOL_VERSION,
                code_fingerprint: "spider-campaign/0.1.0/record-v1/rev-1".into(),
            },
            Msg::Assign {
                shard: "25%".into(),
                world: Box::new(sample_world()),
            },
            Msg::Done {
                shard: "25%".into(),
                record_json: "{\"v\":1}".into(),
                events_delivered: 123_456,
                peak_queue_depth: 789,
                wall_ms: 42,
            },
            Msg::Error {
                shard: "50%".into(),
                reason: "non-finite field".into(),
            },
            Msg::Shutdown,
        ];
        for msg in &msgs {
            let back = round_trip(msg);
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        let msg = Msg::Assign {
            shard: "x".into(),
            world: Box::new(sample_world()),
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(Msg::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Msg::decode(&[200]),
            Err(ProtoError::Invalid("message tag"))
        ));
    }

    #[test]
    fn framing_round_trips_and_clean_eof_is_none() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Shutdown).expect("write");
        write_msg(
            &mut buf,
            &Msg::Error {
                shard: "s".into(),
                reason: "r".into(),
            },
        )
        .expect("write");
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_msg(&mut cursor), Ok(Some(Msg::Shutdown))));
        assert!(matches!(read_msg(&mut cursor), Ok(Some(Msg::Error { .. }))));
        assert!(matches!(read_msg(&mut cursor), Ok(None)));
    }

    #[test]
    fn eof_inside_frame_is_an_error() {
        let mut whole = Vec::new();
        write_msg(
            &mut whole,
            &Msg::Hello {
                protocol_version: 1,
                code_fingerprint: "f".into(),
            },
        )
        .expect("write");
        for cut in 1..whole.len() {
            let mut cursor = io::Cursor::new(&whole[..cut]);
            assert!(read_msg(&mut cursor).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn oversize_frame_header_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_msg(&mut cursor).is_err());
    }
}
